"""Time model shared by the whole package.

The paper studies one week of traffic starting on Saturday, September 24,
2016 (Fig. 4 x-axis runs Sat..Fri).  Everything in this package uses the
same convention:

- a week is ``WEEK_HOURS`` = 168 hours, hour 0 = Saturday 00:00;
- days 0 and 1 (Saturday, Sunday) are the weekend, days 2..6 are working
  days;
- time series may be sampled at sub-hourly resolution; the number of bins
  per hour is carried explicitly by :class:`TimeAxis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7
WEEK_HOURS = HOURS_PER_DAY * DAYS_PER_WEEK

#: Day names in dataset order (the measurement week starts on a Saturday).
DAY_NAMES = ("Sat", "Sun", "Mon", "Tue", "Wed", "Thu", "Fri")

#: Indices of weekend days within the week (Saturday, Sunday).
WEEKEND_DAYS = (0, 1)

#: Indices of working days within the week (Monday..Friday).
WORKING_DAYS = (2, 3, 4, 5, 6)


@dataclass(frozen=True)
class TimeAxis:
    """A uniform sampling of the measurement week.

    Parameters
    ----------
    bins_per_hour:
        Sampling resolution.  The paper works at an (implicit) sub-hourly
        resolution; the default of 1 bin/hour keeps the nationwide tensors
        small while finer axes are used by the peak-detection analyses.
    """

    bins_per_hour: int = 1

    def __post_init__(self) -> None:
        if self.bins_per_hour < 1:
            raise ValueError(
                f"bins_per_hour must be >= 1, got {self.bins_per_hour}"
            )

    @property
    def n_bins(self) -> int:
        """Total number of bins covering the week."""
        return WEEK_HOURS * self.bins_per_hour

    @property
    def bin_hours(self) -> float:
        """Duration of one bin, in hours."""
        return 1.0 / self.bins_per_hour

    def hours(self) -> np.ndarray:
        """Return the fractional hour-of-week at the start of each bin."""
        return np.arange(self.n_bins) / self.bins_per_hour

    def bin_of(self, day: int, hour: float) -> int:
        """Return the bin index containing ``hour`` o'clock on ``day``.

        ``day`` is an index into :data:`DAY_NAMES` (0 = Saturday).
        """
        if not 0 <= day < DAYS_PER_WEEK:
            raise ValueError(f"day must be in [0, 7), got {day}")
        if not 0 <= hour < HOURS_PER_DAY:
            raise ValueError(f"hour must be in [0, 24), got {hour}")
        return int((day * HOURS_PER_DAY + hour) * self.bins_per_hour)

    def day_of_bin(self, bin_index: int) -> int:
        """Return the day index (0 = Saturday) of a bin."""
        if not 0 <= bin_index < self.n_bins:
            raise ValueError(
                f"bin_index must be in [0, {self.n_bins}), got {bin_index}"
            )
        return bin_index // (HOURS_PER_DAY * self.bins_per_hour)

    def hour_of_bin(self, bin_index: int) -> float:
        """Return the fractional hour of day at the start of a bin."""
        day = self.day_of_bin(bin_index)
        return bin_index / self.bins_per_hour - day * HOURS_PER_DAY

    def is_weekend_bin(self, bin_index: int) -> bool:
        """True when a bin falls on Saturday or Sunday."""
        return self.day_of_bin(bin_index) in WEEKEND_DAYS

    def resample_to(self, series: np.ndarray, other: "TimeAxis") -> np.ndarray:
        """Resample a week-long series from this axis onto ``other``.

        Downsampling sums bins (traffic volumes are extensive quantities);
        upsampling splits each bin evenly.  The total volume is preserved
        exactly in both directions.
        """
        series = np.asarray(series, dtype=float)
        if series.shape[-1] != self.n_bins:
            raise ValueError(
                f"series has {series.shape[-1]} bins, axis expects {self.n_bins}"
            )
        if other.bins_per_hour == self.bins_per_hour:
            return series.copy()
        if other.bins_per_hour < self.bins_per_hour:
            factor, rem = divmod(self.bins_per_hour, other.bins_per_hour)
            if rem:
                raise ValueError(
                    "can only downsample by an integer factor: "
                    f"{self.bins_per_hour} -> {other.bins_per_hour}"
                )
            shape = series.shape[:-1] + (other.n_bins, factor)
            return series.reshape(shape).sum(axis=-1)
        factor, rem = divmod(other.bins_per_hour, self.bins_per_hour)
        if rem:
            raise ValueError(
                "can only upsample by an integer factor: "
                f"{self.bins_per_hour} -> {other.bins_per_hour}"
            )
        return np.repeat(series / factor, factor, axis=-1)


def hour_of_week(day: int, hour: float) -> float:
    """Return the fractional hour-of-week for ``hour`` o'clock on ``day``."""
    if not 0 <= day < DAYS_PER_WEEK:
        raise ValueError(f"day must be in [0, 7), got {day}")
    if not 0 <= hour < HOURS_PER_DAY:
        raise ValueError(f"hour must be in [0, 24), got {hour}")
    return day * HOURS_PER_DAY + hour
