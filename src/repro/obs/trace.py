"""Chrome-trace (Perfetto) export of a span tree.

Converts the ``spans`` section of a ``repro-obs`` dump into the Chrome
Trace Event JSON format — an object with a ``traceEvents`` array of
complete (``"ph": "X"``) events — loadable in ``ui.perfetto.dev`` or
``chrome://tracing``.

The span tree stores *accumulated* durations per stage (re-entries
merge into one node), not individual begin/end timestamps, so the
timeline is a deterministic synthetic layout: each node starts at its
parent's start plus the summed durations of its earlier (name-ordered)
siblings.  Relative widths are exact; absolute positions are layout.
Under multi-process execution children can overlap their parent's
slice — shards genuinely ran concurrently — which Perfetto renders
fine on separate tracks.

All quantities here are timing-class (non-deterministic); traces are an
artifact for humans, never an input to comparisons.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro._units import MICROS_PER_SECOND
from repro.obs.spans import SpanNode

#: Synthetic process/thread ids — the trace describes one logical
#: pipeline, not OS-level concurrency.
PID = 1
TID = 1


def to_chrome_trace(dump: Dict[str, Any]) -> Dict[str, Any]:
    """Build a Chrome Trace Event object from a ``repro-obs`` dump."""
    spans = dump.get("spans")
    if not spans:
        raise ValueError("dump has no 'spans' section — nothing to trace")
    root = SpanNode.from_dict(spans)
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": TID,
            "args": {"name": "repro measurement pipeline"},
        }
    ]
    _emit(root, 0.0, trace_events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": dump.get("schema", ""),
            "meta": dump.get("meta", {}),
        },
    }


def _emit(
    node: SpanNode, start_us: float, out: List[Dict[str, Any]]
) -> None:
    out.append(
        {
            "name": node.name,
            "cat": "stage",
            "ph": "X",
            "ts": start_us,
            "dur": node.elapsed_s * MICROS_PER_SECOND,
            "pid": PID,
            "tid": TID,
            "args": {
                "count": node.count,
                "self_s": node.self_s(),
                "peak_rss_bytes": node.peak_rss_bytes,
            },
        }
    )
    cursor = start_us
    for name in sorted(node.children):
        child = node.children[name]
        _emit(child, cursor, out)
        cursor += child.elapsed_s * MICROS_PER_SECOND


def render_trace_json(trace: Dict[str, Any]) -> str:
    """Serialize a trace object (stable key order)."""
    return json.dumps(trace, indent=2, sort_keys=True) + "\n"


__all__ = ["PID", "TID", "render_trace_json", "to_chrome_trace"]
