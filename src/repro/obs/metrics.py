"""Typed metrics and the process-local registry.

Every metric the pipeline can emit is declared up front in
:data:`SPECS` — name, kind, unit, pipeline stage, determinism class,
and a one-line description.  The table *is* the metrics contract:
``docs/observability.md`` documents exactly these names, the CI docs
job cross-checks the two, and :meth:`MetricsRegistry.add` rejects
names that were never declared, so an undocumented metric cannot ship.

Determinism classes
-------------------

``events``
    Counts of simulation events (sessions, flows, GTP messages, DPI
    lookups, aggregated rows).  For a fixed ``(seed, n_shards)`` these
    are byte-identical across runs, worker counts and platforms; the
    determinism tests and ``repro-obs diff`` compare them exactly.
``derived``
    Deterministic floats derived from event data (byte totals,
    coverage fractions).  Reproducible for a fixed ``(seed,
    n_shards)`` — shard partials merge in index order — but compared
    approximately where float summation order may differ.
``timing``
    Wall-clock and memory readings from :mod:`repro.obs.clock`.
    Never compared; excluded from snapshots and diffs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.hist import LatencyHistogram

Number = Union[int, float]


class MetricKind(enum.Enum):
    """What kind of instrument a metric is."""

    COUNTER = "counter"  # monotone, merged by summation
    GAUGE = "gauge"  # point-in-time value, merged by last-write
    HISTOGRAM = "histogram"  # log-linear buckets, merged by count sums


class Determinism(enum.Enum):
    """How reproducible a metric's value is (see module docstring)."""

    EVENTS = "events"
    DERIVED = "derived"
    TIMING = "timing"


#: Comparison tolerance applied to a derived-class gauge whose spec
#: does not override it: shard merge order is fixed, so same-shape runs
#: agree far tighter than this.
DEFAULT_GAUGE_REL_TOL = 1e-9


@dataclass(frozen=True)
class MetricSpec:
    """The declared contract of one metric."""

    name: str
    kind: MetricKind
    unit: str
    stage: str
    determinism: Determinism
    description: str
    #: Relative tolerance ``repro-obs diff`` compares this metric under.
    #: Only meaningful for gauges (counters compare exactly); ``None``
    #: falls back to :data:`DEFAULT_GAUGE_REL_TOL`.
    rel_tol: Optional[float] = None

    @property
    def effective_rel_tol(self) -> float:
        """The tolerance ``diff`` actually applies to this gauge."""
        return (
            DEFAULT_GAUGE_REL_TOL if self.rel_tol is None else self.rel_tol
        )


def _spec_table(specs: Iterable[MetricSpec]) -> Dict[str, MetricSpec]:
    table: Dict[str, MetricSpec] = {}
    for spec in specs:
        if spec.name in table:
            raise ValueError(f"duplicate metric spec {spec.name!r}")
        table[spec.name] = spec
    return table


_C, _G, _H = MetricKind.COUNTER, MetricKind.GAUGE, MetricKind.HISTOGRAM
_EV, _DE, _TI = Determinism.EVENTS, Determinism.DERIVED, Determinism.TIMING

#: The serving health ladder, worst-last; the ``serve.health.state``
#: gauge carries the index, and :mod:`repro.obs.prom` renders the same
#: order as a labeled state set.  Declared here (not in
#: ``repro.serve.health``, which re-exports it) so the exposition layer
#: never imports upward into the serving layer.
SERVE_HEALTH_STATES = ("ok", "degraded", "shedding")

#: The full metrics contract: every name the pipeline may emit.
SPECS: Dict[str, MetricSpec] = _spec_table(
    [
        # --- traffic generation -------------------------------------
        MetricSpec(
            "generator.sessions", _C, "sessions", "generation", _EV,
            "data sessions generated (PDP contexts / EPS bearers)",
        ),
        MetricSpec(
            "generator.flows", _C, "flows", "generation", _EV,
            "IP flows generated inside sessions",
        ),
        MetricSpec(
            "generator.subscribers", _C, "subscribers", "generation", _EV,
            "subscriber weeks driven through the generator",
        ),
        # --- GTP signalling / user plane ----------------------------
        MetricSpec(
            "gtp.control_messages", _C, "messages", "gtp", _EV,
            "GTP-C messages emitted (bulk creates count the "
            "request/response pair)",
        ),
        MetricSpec(
            "gtp.user_flow_records", _C, "records", "gtp", _EV,
            "GTP-U flow accounting records emitted",
        ),
        MetricSpec(
            "gtp.teids_allocated", _C, "teids", "gtp", _EV,
            "tunnel endpoint identifiers allocated",
        ),
        # --- DPI classification -------------------------------------
        MetricSpec(
            "dpi.cache_hits", _C, "lookups", "dpi", _EV,
            "flow-feature lookups answered by the classification memo",
        ),
        MetricSpec(
            "dpi.cache_misses", _C, "lookups", "dpi", _EV,
            "flow-feature lookups that ran the full match cascade",
        ),
        MetricSpec(
            "dpi.flows_classified", _C, "flows", "dpi", _EV,
            "flows attributed to a catalog service",
        ),
        MetricSpec(
            "dpi.flows_unclassified", _C, "flows", "dpi", _EV,
            "flows no fingerprinting technique matched",
        ),
        # --- aggregation --------------------------------------------
        MetricSpec(
            "aggregation.rows", _C, "rows", "aggregation", _EV,
            "probe records folded into the commune-level tensors",
        ),
        MetricSpec(
            "aggregation.batches", _C, "batches", "aggregation", _EV,
            "columnar probe batches ingested",
        ),
        MetricSpec(
            "aggregation.total_bytes", _G, "bytes", "aggregation", _DE,
            "total traffic volume ingested by the aggregator",
            rel_tol=1e-9,
        ),
        MetricSpec(
            "aggregation.unclassified_bytes", _G, "bytes", "aggregation", _DE,
            "ingested volume left unattributed by DPI",
            rel_tol=1e-9,
        ),
        # --- sharded execution --------------------------------------
        MetricSpec(
            "shard.fan_out", _C, "shards", "parallel", _EV,
            "shards executed by sharded builds",
        ),
        MetricSpec(
            "shard.results_merged", _C, "shards", "parallel", _EV,
            "shard partials folded back into the parent aggregator",
        ),
        # --- resilient execution ------------------------------------
        MetricSpec(
            "resilience.attempts", _C, "attempts", "resilience", _EV,
            "shard attempts executed by the supervised executor",
        ),
        MetricSpec(
            "resilience.retries", _C, "attempts", "resilience", _EV,
            "shard attempts beyond each shard's first try",
        ),
        MetricSpec(
            "resilience.failures", _C, "failures", "resilience", _EV,
            "typed shard-attempt failures recorded by the supervisor",
        ),
        MetricSpec(
            "resilience.quarantined_shards", _C, "shards", "resilience", _EV,
            "shards quarantined after retry exhaustion",
        ),
        MetricSpec(
            "resilience.checkpoint_hits", _C, "shards", "resilience", _EV,
            "shards restored from on-disk checkpoints on resume",
        ),
        MetricSpec(
            "resilience.checkpoint_writes", _C, "shards", "resilience", _EV,
            "shard partials persisted to the checkpoint directory",
        ),
        MetricSpec(
            "resilience.checkpoint_discards", _C, "shards", "resilience", _EV,
            "checkpoint files rejected as damaged or mismatched",
        ),
        MetricSpec(
            "resilience.faults_injected", _C, "faults", "resilience", _EV,
            "fault-plan faults addressed to executed shard attempts",
        ),
        MetricSpec(
            "resilience.records_dropped", _C, "records", "resilience", _EV,
            "probe records lost inside accepted shards (outage model)",
        ),
        MetricSpec(
            "resilience.coverage_fraction", _G, "fraction", "resilience", _DE,
            "surviving fraction of the subscriber panel after degradation",
            rel_tol=1e-12,
        ),
        # --- streaming / out-of-core builds -------------------------
        MetricSpec(
            "stream.chunks", _C, "chunks", "streaming", _EV,
            "columnar probe chunks flushed to a streaming sink",
        ),
        MetricSpec(
            "stream.spills", _C, "spills", "streaming", _EV,
            "shard partials spilled to disk under the resident budget",
        ),
        MetricSpec(
            "stream.merge_passes", _C, "passes", "streaming", _EV,
            "merge passes folding shard partials into the aggregator",
        ),
        # --- dataset builds -----------------------------------------
        MetricSpec(
            "builder.session_datasets", _C, "datasets", "builder", _EV,
            "session-level dataset builds completed",
        ),
        MetricSpec(
            "builder.volume_datasets", _C, "datasets", "builder", _EV,
            "volume-level dataset builds completed",
        ),
        MetricSpec(
            "build.peak_rss_bytes", _G, "bytes", "builder", _TI,
            "peak resident set size observed at the end of a build",
        ),
        # --- experiments --------------------------------------------
        MetricSpec(
            "experiments.runs", _C, "experiments", "experiments", _EV,
            "figure experiments executed",
        ),
        MetricSpec(
            "experiments.checks_total", _C, "checks", "experiments", _EV,
            "paper-expectation checks evaluated",
        ),
        MetricSpec(
            "experiments.checks_failed", _C, "checks", "experiments", _EV,
            "paper-expectation checks that did not hold",
        ),
        # --- fidelity scorecard -------------------------------------
        MetricSpec(
            "fidelity.findings_pass", _C, "findings", "fidelity", _EV,
            "scorecard findings inside their accept band",
        ),
        MetricSpec(
            "fidelity.findings_warn", _C, "findings", "fidelity", _EV,
            "scorecard findings in the warn band (outside accept)",
        ),
        MetricSpec(
            "fidelity.findings_fail", _C, "findings", "fidelity", _EV,
            "scorecard findings outside both bands",
        ),
        MetricSpec(
            "fidelity.score", _G, "fraction", "fidelity", _DE,
            "fraction of scorecard findings inside their accept band",
            rel_tol=1e-12,
        ),
        # --- serving layer -------------------------------------------
        MetricSpec(
            "serve.queries", _C, "queries", "serve", _EV,
            "queries accepted and answered by the serving engine",
        ),
        MetricSpec(
            "serve.errors", _C, "queries", "serve", _EV,
            "queries rejected as malformed or out of range",
        ),
        MetricSpec(
            "serve.index_builds", _C, "indexes", "serve", _EV,
            "index constructions (eager at load plus each materialized "
            "similarity view)",
        ),
        MetricSpec(
            "serve.cache_hits", _C, "queries", "serve", _EV,
            "queries answered from the result cache (LRU-replayed, "
            "worker-count independent)",
        ),
        MetricSpec(
            "serve.cache_misses", _C, "queries", "serve", _EV,
            "queries that missed the result cache and were computed",
        ),
        MetricSpec(
            "serve.load_requests", _C, "requests", "serve", _EV,
            "scheduled requests executed by the load harness",
        ),
        MetricSpec(
            "serve.load_windows", _C, "windows", "serve", _EV,
            "Poisson sampling windows realized by the workload generator",
        ),
        MetricSpec(
            "serve.cache_hit_rate", _G, "fraction", "serve", _DE,
            "fraction of harness queries answered from the result cache",
            rel_tol=1e-12,
        ),
        MetricSpec(
            "serve.latency_p50_s", _G, "seconds", "serve", _TI,
            "median simulated open-loop request latency",
        ),
        MetricSpec(
            "serve.latency_p95_s", _G, "seconds", "serve", _TI,
            "95th-percentile simulated open-loop request latency",
        ),
        MetricSpec(
            "serve.latency_p99_s", _G, "seconds", "serve", _TI,
            "99th-percentile simulated open-loop request latency",
        ),
        MetricSpec(
            "serve.throughput_rps", _G, "requests/s", "serve", _TI,
            "requests completed per second at the native schedule",
        ),
        MetricSpec(
            "serve.saturation_rps", _G, "requests/s", "serve", _TI,
            "highest offered rate whose simulated p99 met the bound",
        ),
        MetricSpec(
            "serve.trace_sampled", _C, "requests", "serve", _EV,
            "requests selected for phase-level tracing by the pure "
            "(seed, request_id) sampler",
        ),
        MetricSpec(
            "serve.latency.seconds", _H, "seconds", "serve", _TI,
            "log-linear histogram of simulated open-loop request "
            "latencies (merged across workers)",
        ),
        MetricSpec(
            "serve.latency.service_seconds", _H, "seconds", "serve", _TI,
            "log-linear histogram of measured per-request service times",
        ),
        # --- serving under overload ----------------------------------
        # Timing class throughout: shed and deadline outcomes depend on
        # measured service times, so under a real clock they are
        # run-dependent (under the harness's fake clock they are a pure
        # function of (seed, schedule, fault_plan) and pinned by tests).
        MetricSpec(
            "serve.deadline_exceeded", _C, "requests", "serve", _TI,
            "requests whose latency budget expired at a phase boundary "
            "and were answered with a typed deadline_exceeded payload",
        ),
        MetricSpec(
            "serve.shed.requests", _C, "requests", "serve", _TI,
            "requests shed by admission control (rate limiter plus "
            "queue-pressure shedding), never executed",
        ),
        MetricSpec(
            "serve.shed.rate_limited", _C, "requests", "serve", _TI,
            "requests shed because the token-bucket rate limiter was "
            "empty on arrival",
        ),
        MetricSpec(
            "serve.shed.queue_full", _C, "requests", "serve", _TI,
            "requests shed by the queue-pressure hash (priority-aware, "
            "batch and low-priority shed first)",
        ),
        MetricSpec(
            "serve.shed.stale_answers", _C, "requests", "serve", _TI,
            "shed or degraded requests answered from the result cache "
            "as explicitly stale=true responses",
        ),
        MetricSpec(
            "serve.shed.rate", _G, "fraction", "serve", _TI,
            "fraction of offered requests shed by admission control",
        ),
        MetricSpec(
            "serve.health.state", _G, "state", "serve", _TI,
            "serving health state (0 ok, 1 degraded, 2 shedding)",
        ),
        MetricSpec(
            "serve.health.transitions", _C, "transitions", "serve", _TI,
            "health state-machine transitions over one harness run",
        ),
        MetricSpec(
            "serve.cache.corrupt_detected", _C, "entries", "serve", _TI,
            "cache entries whose stored digest failed verification on "
            "read (detected, evicted, and recomputed — never served)",
        ),
        MetricSpec(
            "serve.overload.goodput_rps", _G, "requests/s", "serve", _TI,
            "admitted requests completing within deadline per second "
            "under the overload schedule",
        ),
        MetricSpec(
            "serve.overload.admitted_p99_s", _G, "seconds", "serve", _TI,
            "99th-percentile simulated latency over admitted requests "
            "under the overload schedule",
        ),
        # --- benchmark observatory -----------------------------------
        MetricSpec(
            "bench.legs", _C, "legs", "bench", _EV,
            "micro benchmark legs executed by repro-bench",
        ),
        MetricSpec(
            "bench.history_appends", _C, "records", "bench", _EV,
            "run records appended to the benchmark history store",
        ),
        MetricSpec(
            "bench.gate_regressions", _C, "indicators", "bench", _EV,
            "gate indicators found outside their declared noise band",
        ),
    ]
)


def spec_names() -> List[str]:
    """All declared metric names, sorted."""
    return sorted(SPECS)


class MetricsRegistry:
    """Process-local store of counter/gauge values.

    Only *declared* metrics (present in :data:`SPECS`) may be written;
    undeclared names raise ``KeyError`` so the metrics contract in
    ``docs/observability.md`` can never silently drift.  Values start
    absent — a metric appears in exports only once touched — which is
    what makes the no-op/"never enabled" path exactly empty.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        spec = SPECS.get(name)
        if spec is None or spec.kind is not MetricKind.COUNTER:
            raise KeyError(
                f"{name!r} is not a declared counter — add a MetricSpec "
                "to repro.obs.metrics.SPECS and document it in "
                "docs/observability.md"
            )
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        spec = SPECS.get(name)
        if spec is None or spec.kind is not MetricKind.GAUGE:
            raise KeyError(
                f"{name!r} is not a declared gauge — add a MetricSpec "
                "to repro.obs.metrics.SPECS and document it in "
                "docs/observability.md"
            )
        self.gauges[name] = value

    def _histogram_for(self, name: str) -> LatencyHistogram:
        spec = SPECS.get(name)
        if spec is None or spec.kind is not MetricKind.HISTOGRAM:
            raise KeyError(
                f"{name!r} is not a declared histogram — add a MetricSpec "
                "to repro.obs.metrics.SPECS and document it in "
                "docs/observability.md"
            )
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self._histogram_for(name).observe(value)

    def merge_histogram(self, name: str, hist: LatencyHistogram) -> None:
        """Fold an externally built histogram into histogram ``name``."""
        self._histogram_for(name).merge(hist)

    def get(self, name: str) -> Optional[Number]:
        """Current value of a metric, or None if never touched."""
        if name in self.counters:
            return self.counters[name]
        return self.gauges.get(name)

    def merge_counters(self, counters: Dict[str, Number]) -> None:
        """Fold another registry's counter map in (summation)."""
        for name in sorted(counters):
            self.add(name, counters[name])

    def export_counters(self) -> Dict[str, Number]:
        """Counter name -> value, sorted by name (byte-stable)."""
        return {name: self.counters[name] for name in sorted(self.counters)}

    def export_gauges(self) -> Dict[str, Number]:
        """Gauge name -> value, sorted by name."""
        return {name: self.gauges[name] for name in sorted(self.gauges)}

    def export_histograms(self) -> Dict[str, Dict[str, object]]:
        """Histogram name -> encoded dict, sorted by name."""
        return {
            name: self.histograms[name].to_dict()
            for name in sorted(self.histograms)
        }

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


def validate_export(
    counters: Dict[str, Number],
    gauges: Dict[str, Number],
    histograms: Optional[Dict[str, Dict[str, object]]] = None,
) -> Tuple[bool, List[str]]:
    """Check an exported metric map against the contract.

    Returns ``(ok, problems)``; used by ``repro-obs diff`` to refuse
    dumps that carry names outside the declared contract.
    """
    problems: List[str] = []
    for name in sorted(counters):
        spec = SPECS.get(name)
        if spec is None:
            problems.append(f"undeclared counter {name!r}")
        elif spec.kind is not MetricKind.COUNTER:
            problems.append(
                f"{name!r} exported as counter but declared "
                f"{spec.kind.value}"
            )
    for name in sorted(gauges):
        spec = SPECS.get(name)
        if spec is None:
            problems.append(f"undeclared gauge {name!r}")
        elif spec.kind is not MetricKind.GAUGE:
            problems.append(
                f"{name!r} exported as gauge but declared {spec.kind.value}"
            )
    for name in sorted(histograms or {}):
        spec = SPECS.get(name)
        if spec is None:
            problems.append(f"undeclared histogram {name!r}")
        elif spec.kind is not MetricKind.HISTOGRAM:
            problems.append(
                f"{name!r} exported as histogram but declared "
                f"{spec.kind.value}"
            )
    return not problems, problems


__all__ = [
    "DEFAULT_GAUGE_REL_TOL",
    "Determinism",
    "MetricKind",
    "MetricSpec",
    "MetricsRegistry",
    "Number",
    "SERVE_HEALTH_STATES",
    "SPECS",
    "spec_names",
    "validate_export",
]
