"""Span trees: nested wall-clock / peak-RSS accounting per stage.

A :class:`SpanNode` is one named stage in the trace tree.  Re-entering
the same name under the same parent *accumulates* into the existing
node (``count`` increments, ``elapsed_s`` adds up) instead of growing a
new child, so per-subscriber or per-batch stages stay one line in the
tree no matter how often they run — the tree describes the pipeline's
shape, not its event log.

All quantities here are ``timing``-class (non-deterministic): they are
excluded from determinism tests and from ``repro-obs diff``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class SpanNode:
    """One named stage of the trace tree."""

    __slots__ = (
        "name", "count", "elapsed_s", "peak_rss_bytes", "attrs", "children"
    )

    def __init__(self, name: str):
        self.name = name
        #: Times this stage ran under its parent.
        self.count = 0
        #: Total wall-clock across all runs, seconds.
        self.elapsed_s = 0.0
        #: Process peak RSS observed at the last exit of this span.
        self.peak_rss_bytes = 0
        #: Numeric attributes summed across runs — e.g. a chunked span
        #: records how many ``subscribers`` each chunk covered, so the
        #: one-line node still accounts for the population it served.
        self.attrs: Dict[str, float] = {}
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """The child span called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def record(
        self,
        elapsed_s: float,
        peak_rss: int,
        attrs: Optional[Dict[str, float]] = None,
    ) -> None:
        """Account one completed run of this stage."""
        self.count += 1
        self.elapsed_s += elapsed_s
        if peak_rss > self.peak_rss_bytes:
            self.peak_rss_bytes = peak_rss
        if attrs:
            mine = self.attrs
            for key, value in attrs.items():
                mine[key] = mine.get(key, 0) + value

    def self_s(self) -> float:
        """Wall-clock not attributed to any child span."""
        return self.elapsed_s - sum(
            child.elapsed_s for child in self.children.values()
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready); children sorted by name."""
        payload = {
            "name": self.name,
            "count": self.count,
            "elapsed_s": self.elapsed_s,
            "peak_rss_bytes": self.peak_rss_bytes,
            "children": [
                self.children[name].to_dict()
                for name in sorted(self.children)
            ],
        }
        if self.attrs:
            payload["attrs"] = {
                key: self.attrs[key] for key in sorted(self.attrs)
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanNode":
        """Rebuild a tree from :meth:`to_dict` output."""
        node = cls(str(payload["name"]))
        node.count = int(payload.get("count", 0))
        node.elapsed_s = float(payload.get("elapsed_s", 0.0))
        node.peak_rss_bytes = int(payload.get("peak_rss_bytes", 0))
        node.attrs = dict(payload.get("attrs", ()))
        for child in payload.get("children", []):
            rebuilt = cls.from_dict(child)
            node.children[rebuilt.name] = rebuilt
        return node

    def graft(self, subtree: "SpanNode") -> None:
        """Attach ``subtree`` under this node, merging on name collision."""
        existing = self.children.get(subtree.name)
        if existing is None:
            self.children[subtree.name] = subtree
            return
        existing.count += subtree.count
        existing.elapsed_s += subtree.elapsed_s
        if subtree.peak_rss_bytes > existing.peak_rss_bytes:
            existing.peak_rss_bytes = subtree.peak_rss_bytes
        for key, value in subtree.attrs.items():
            existing.attrs[key] = existing.attrs.get(key, 0) + value
        for child in subtree.children.values():
            existing.graft(child)

    def walk(self, depth: int = 0):
        """Yield ``(depth, node)`` pairs, children in name order."""
        yield depth, self
        for name in sorted(self.children):
            yield from self.children[name].walk(depth + 1)


def flatten(root: SpanNode) -> List[Dict[str, Any]]:
    """Depth-annotated row list of a tree (for tabular rendering)."""
    rows: List[Dict[str, Any]] = []
    for depth, node in root.walk():
        rows.append(
            {
                "depth": depth,
                "name": node.name,
                "count": node.count,
                "elapsed_s": node.elapsed_s,
                "self_s": node.self_s(),
                "peak_rss_bytes": node.peak_rss_bytes,
            }
        )
    return rows


def find(root: SpanNode, name: str) -> Optional[SpanNode]:
    """First node called ``name`` in depth-first name order, or None."""
    for _, node in root.walk():
        if node.name == name:
            return node
    return None


__all__ = ["SpanNode", "find", "flatten"]
