"""Structured event log: a deterministic JSONL record of one session.

While the span tree answers *where the time went* (timing-class,
never compared), the event log answers *what happened, in what order* —
and is built so the answer is reproducible.  An event is a plain
``(kind, name, value)`` tuple appended to the active
:class:`~repro.obs.runtime.ObsSession` when it was enabled with
``log_events=True``:

``span_begin`` / ``span_end``
    One pair per stage entry (``with obs.span(...)``), carrying no
    wall-clock — only the structure of the run.
``counter`` / ``gauge``
    One per metric write, carrying the delta/value (deterministic for a
    fixed ``(seed, n_shards)`` like the counters themselves).
``snapshot``
    A full counter snapshot at a labelled point — each shard capture
    emits one on exit, and :meth:`ObsSession.export_events` appends a
    final one.
``verdict``
    A fidelity-scorecard verdict (``repro.fidelity``): finding name plus
    ``{"verdict", "value"}``.
``retry`` / ``quarantine`` / ``checkpoint``
    Supervised-execution history (``repro.resilience``): one ``retry``
    per charged shard failure (``{"attempt", "kind"}``), one
    ``quarantine`` per shard dropped after exhaustion, one
    ``checkpoint`` per shard restored on resume.  Emitted on the parent
    in shard-index order after execution settles, so they inherit the
    worker-count-independence of the rest of the log.
``schedule`` / ``request``
    Serving-layer workload history (``repro.serve``): one ``schedule``
    per Poisson sampling window (``{"active_users", "requests"}``) and
    one ``request`` per executed scheduled request (``{"family",
    "mode", "priority"}``), emitted in schedule order.  Both carry only
    seed-derived data — never latencies — so the log stays a
    deterministic trace.
``trace``
    One per request selected for phase-level tracing by the pure
    ``(seed, request_id)`` sampler (``repro.serve.load``): request id
    plus ``{"family", "mode", "cache"}`` where ``cache`` is the
    replayed would-be outcome (traced requests bypass the live result
    cache so their span structure is cache-state independent).  Emitted
    on the parent in schedule order — seed-derived only, no timings.

Determinism contract: events carry **no timestamps**, shard events are
captured inside the shard's private session and spliced into the parent
log in shard-index order (the same guarantee the counters have), so the
rendered JSONL is byte-identical across worker counts for a fixed
``(seed, n_shards)`` — asserted in
``tests/integration/test_obs_pipeline.py``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Tuple

#: One logged event: (kind, name, value-or-None).
Event = Tuple[str, str, Any]

#: The event kinds the runtime emits (a closed set: renderers and
#: consumers may rely on it).
KINDS = (
    "span_begin",
    "span_end",
    "counter",
    "gauge",
    "snapshot",
    "verdict",
    "retry",
    "quarantine",
    "checkpoint",
    "schedule",
    "request",
    "trace",
)


def render_jsonl(events: Iterable[Event]) -> str:
    """Serialize events as JSON Lines, one object per line.

    Keys are sorted and separators fixed, so equal event sequences
    render to byte-identical text; ``i`` is the 0-based sequence number.
    """
    lines: List[str] = []
    for index, (kind, name, value) in enumerate(events):
        obj = {"i": index, "e": kind, "name": name}
        if value is not None:
            obj["v"] = value
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n" if lines else ""


def parse_jsonl(text: str) -> List[Event]:
    """Rebuild the event list from :func:`render_jsonl` output.

    Sequence numbers are validated — a spliced or truncated log fails
    loudly instead of silently reordering history.
    """
    events: List[Event] = []
    for lineno, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        obj = json.loads(line)
        if obj.get("i") != len(events):
            raise ValueError(
                f"line {lineno + 1}: sequence number {obj.get('i')!r}, "
                f"expected {len(events)} — log is reordered or truncated"
            )
        events.append((str(obj["e"]), str(obj["name"]), obj.get("v")))
    return events


def load_jsonl(path: str) -> List[Event]:
    """Read one JSONL event-log file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())


def write_jsonl(path: str, events: Iterable[Event]) -> None:
    """Write events to ``path`` in the JSONL format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_jsonl(events))


__all__ = [
    "Event",
    "KINDS",
    "load_jsonl",
    "parse_jsonl",
    "render_jsonl",
    "write_jsonl",
]
