"""Prometheus text exposition for obs dumps (stdlib-only).

Renders the counter/gauge/histogram registry of one exported session in
the Prometheus text format (version 0.0.4), the snapshot surface a
future resident server would serve at ``/metrics``:

- metric names are mangled ``repro_`` + dots→underscores; counters get
  the conventional ``_total`` suffix;
- every series carries ``# HELP`` / ``# TYPE`` headers sourced from the
  declared contract (:data:`repro.obs.metrics.SPECS`), so the
  exposition can never show an undocumented metric;
- histograms render as cumulative ``_bucket{le="..."}`` series over the
  log-linear bucket upper bounds, plus ``_sum`` (the deterministic
  representative sum) and ``_count``;
- enumerated state gauges (``serve.health.state``) additionally render
  as a labeled state set — one 0/1 series per state, exactly one set —
  the conventional shape for alerting on ``state="shedding"`` without
  decoding rung numbers.

Output is byte-stable: series are emitted in sorted metric-name order
and bucket order, with no timestamps.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.hist import LatencyHistogram
from repro.obs.metrics import SERVE_HEALTH_STATES, SPECS

PROM_PREFIX = "repro"

#: Enumerated gauges rendered as labeled state sets: name → state order.
STATE_SETS = {"serve.health.state": SERVE_HEALTH_STATES}


def _mangle(name: str) -> str:
    return f"{PROM_PREFIX}_{name.replace('.', '_').replace('/', '_')}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
        # bool before int: True is an int in python
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _help_line(prom_name: str, metric_name: str) -> List[str]:
    spec = SPECS.get(metric_name)
    if spec is None:
        return []
    return [f"# HELP {prom_name} {spec.description} [{spec.unit}]"]


def _render_scalar(
    lines: List[str], metric_name: str, value: Any, prom_type: str
) -> None:
    prom_name = _mangle(metric_name)
    if prom_type == "counter":
        prom_name += "_total"
    lines.extend(_help_line(prom_name, metric_name))
    lines.append(f"# TYPE {prom_name} {prom_type}")
    states = STATE_SETS.get(metric_name)
    if states is not None:
        # State set: one 0/1 series per state, exactly one set. Out-of-
        # range values render all-zero rather than inventing a state.
        current = value if isinstance(value, int) else int(value)
        for index, state in enumerate(states):
            flag = 1 if index == current else 0
            lines.append(f'{prom_name}{{state="{state}"}} {flag}')
        return
    lines.append(f"{prom_name} {_format_value(value)}")


def _render_histogram(
    lines: List[str], metric_name: str, payload: Dict[str, Any]
) -> None:
    hist = LatencyHistogram.from_dict(payload)
    prom_name = _mangle(metric_name)
    lines.extend(_help_line(prom_name, metric_name))
    lines.append(f"# TYPE {prom_name} histogram")
    cumulative = 0
    for index, count in hist.bucket_counts():
        cumulative += count
        upper = hist.layout.representative(index)
        lines.append(
            f'{prom_name}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
        )
    lines.append(f'{prom_name}_bucket{{le="+Inf"}} {hist.n}')
    lines.append(f"{prom_name}_sum {_format_value(hist.upper_sum())}")
    lines.append(f"{prom_name}_count {hist.n}")


def render_prom(dump: Dict[str, Any]) -> str:
    """One obs dump (``ObsSession.export()`` shape) as exposition text."""
    lines: List[str] = []
    for name in sorted(dump.get("counters", {})):
        _render_scalar(lines, name, dump["counters"][name], "counter")
    for name in sorted(dump.get("gauges", {})):
        _render_scalar(lines, name, dump["gauges"][name], "gauge")
    for name in sorted(dump.get("histograms", {})):
        _render_histogram(lines, name, dump["histograms"][name])
    return "\n".join(lines) + "\n" if lines else ""


__all__ = ["PROM_PREFIX", "STATE_SETS", "render_prom"]
