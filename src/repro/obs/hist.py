"""Deterministic, mergeable log-linear latency histograms.

The serving load harness measures hundreds of thousands of per-request
wall-clock latencies; keeping them as raw lists is unbounded memory and
makes multi-worker percentile aggregation depend on how requests were
partitioned.  This module provides the bounded-memory alternative: a
**log-linear histogram** with a fixed, declared bucket layout whose
merge is exact integer addition — associative, commutative, and
byte-identical regardless of how observations were sharded.

Bucket layout
-------------

Each power-of-two *binade* ``[2^(e-1), 2^e)`` is split into
``subbuckets`` equal-width linear buckets (``subbuckets`` must be a
power of two).  Bucketing a value uses only exact float64 operations:

- ``m, e = math.frexp(v)`` gives ``v = m * 2^e`` with ``m`` in
  ``[0.5, 1)`` — exact by construction;
- ``m - 0.5`` is exact by the Sterbenz lemma (``0.5 <= m < 1``);
- multiplying by ``2 * subbuckets`` (a power of two) is exact, so
  ``int((m - 0.5) * 2 * subbuckets)`` is a true floor.

Bucket 0 collects zero and negative observations.  Values below the
smallest finite bucket clamp up into it; values at or above the top of
the largest binade clamp down into it (both documented as out-of-range,
with the error bound below holding only for in-range values).

Error bound
-----------

For a bucket covering ``[lo, hi)`` at sub-position ``sub`` the relative
width is ``(hi - lo) / lo = 1 / (subbuckets + sub) <= 1 / subbuckets``.
Every bucket reports its **upper bound** as the representative value, so
for any in-range observation ``v``::

    v <= representative(bucket_index(v)) <= v * (1 + 1/subbuckets)

Percentiles use the nearest-rank method (rank ``ceil(q/100 * n)``).
Bucketing is monotone non-decreasing, so the rank-``k`` observation
falls in the first bucket whose cumulative count reaches ``k``; the
reported percentile is that bucket's upper bound and therefore never
under-reports and overshoots by at most a factor ``1 + 1/subbuckets``
relative to the exact nearest-rank percentile.

Merging histograms with identical layouts sums integer bucket counts —
exact in any order and any grouping — and the canonical JSON encoding
(sorted keys, fixed separators) is byte-identical for equal contents,
so a merged histogram encodes identically no matter how many workers
contributed.  This module is stdlib-only by design: it sits in
``repro.obs`` which must not depend on numpy.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

SCHEMA = "repro-hist/1"

DEFAULT_SUBBUCKETS = 64
DEFAULT_MIN_EXP = -30
DEFAULT_MAX_EXP = 33

ZERO_BUCKET = 0


@dataclass(frozen=True)
class HistogramLayout:
    """Declared bucket geometry; two histograms merge iff equal.

    ``subbuckets`` linear buckets per binade; finite binades cover
    ``[2^(min_exp - 1), 2^max_exp)``.  The defaults span ~4.7e-10 s to
    ~8.6e9 s with a relative error bound of 1/64 ≈ 1.6%.
    """

    subbuckets: int = DEFAULT_SUBBUCKETS
    min_exp: int = DEFAULT_MIN_EXP
    max_exp: int = DEFAULT_MAX_EXP

    def __post_init__(self) -> None:
        if self.subbuckets < 1 or (
            self.subbuckets & (self.subbuckets - 1)
        ) != 0:
            raise ValueError(
                "subbuckets must be a positive power of two, got "
                f"{self.subbuckets}"
            )
        if self.min_exp >= self.max_exp:
            raise ValueError(
                f"min_exp {self.min_exp} must be < max_exp {self.max_exp}"
            )

    @property
    def n_buckets(self) -> int:
        """Zero bucket plus every finite bucket."""
        return 1 + (self.max_exp - self.min_exp + 1) * self.subbuckets

    @property
    def relative_error_bound(self) -> float:
        """Max relative percentile overshoot for in-range values."""
        return 1.0 / self.subbuckets

    def bucket_index(self, value: float) -> int:
        """Exact float64 bucketing; see the module docstring."""
        if value != value:
            raise ValueError("cannot bucket NaN")
        if value <= 0.0:
            return ZERO_BUCKET
        if math.isinf(value):
            return self.n_buckets - 1
        mantissa, exponent = math.frexp(value)
        if exponent < self.min_exp:
            return 1
        if exponent > self.max_exp:
            return self.n_buckets - 1
        sub = int((mantissa - 0.5) * 2.0 * self.subbuckets)
        return 1 + (exponent - self.min_exp) * self.subbuckets + sub

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` covered by a bucket; ``(0.0, 0.0)`` for bucket 0."""
        self._check_index(index)
        if index == ZERO_BUCKET:
            return (0.0, 0.0)
        position = index - 1
        exponent = self.min_exp + position // self.subbuckets
        sub = position % self.subbuckets
        lo = math.ldexp(1.0 + sub / self.subbuckets, exponent - 1)
        hi = math.ldexp(1.0 + (sub + 1) / self.subbuckets, exponent - 1)
        return (lo, hi)

    def representative(self, index: int) -> float:
        """Upper bucket bound — the value a bucket reports."""
        if index == ZERO_BUCKET:
            return 0.0
        return self.bucket_bounds(index)[1]

    def _check_index(self, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"bucket index must be an int, got {index!r}")
        if not 0 <= index < self.n_buckets:
            raise ValueError(
                f"bucket index {index} out of range [0, {self.n_buckets})"
            )

    def to_dict(self) -> Dict[str, int]:
        return {
            "max_exp": self.max_exp,
            "min_exp": self.min_exp,
            "subbuckets": self.subbuckets,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "HistogramLayout":
        return cls(
            subbuckets=payload["subbuckets"],
            min_exp=payload["min_exp"],
            max_exp=payload["max_exp"],
        )


DEFAULT_LAYOUT = HistogramLayout()


class LatencyHistogram:
    """Sparse bucket counts over one :class:`HistogramLayout`."""

    __slots__ = ("layout", "_counts", "_n")

    def __init__(self, layout: HistogramLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout
        self._counts: Dict[int, int] = {}
        self._n = 0

    @property
    def n(self) -> int:
        """Total observations."""
        return self._n

    def observe(self, value: float) -> int:
        """Record one value; returns the bucket index it landed in."""
        index = self.layout.bucket_index(value)
        self.observe_bucket(index)
        return index

    def observe_bucket(self, index: int, count: int = 1) -> None:
        """Record ``count`` observations directly into one bucket."""
        self.layout._check_index(index)
        if not isinstance(count, int) or isinstance(count, bool):
            raise TypeError(f"count must be an int, got {count!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._counts[index] = self._counts.get(index, 0) + count
        self._n += count

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (exact integer sums)."""
        if other.layout != self.layout:
            raise ValueError(
                "cannot merge histograms with different layouts: "
                f"{self.layout} vs {other.layout}"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._n += other._n

    def bucket_counts(self) -> List[Tuple[int, int]]:
        """``(index, count)`` pairs in ascending bucket order."""
        return sorted(self._counts.items())

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; upper bound of the rank bucket.

        Returns 0.0 for an empty histogram.  For in-range data the
        result ``p`` satisfies ``exact <= p <= exact * (1 +
        layout.relative_error_bound)`` where ``exact`` is the
        nearest-rank percentile of the raw observations.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._n == 0:
            return 0.0
        rank = max(1, math.ceil(q * self._n / 100.0))
        cumulative = 0
        index = ZERO_BUCKET
        for index, count in self.bucket_counts():
            cumulative += count
            if cumulative >= rank:
                break
        return self.layout.representative(index)

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        return [self.percentile(q) for q in qs]

    def upper_sum(self) -> float:
        """Sum of representatives — a deterministic upper bound on the
        true sum of observations (within the relative error bound)."""
        return sum(
            count * self.layout.representative(index)
            for index, count in self.bucket_counts()
        )

    def mean_upper_bound(self) -> float:
        """Deterministic mean estimate from bucket representatives."""
        if self._n == 0:
            return 0.0
        return self.upper_sum() / self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.layout == other.layout and self._counts == other._counts

    def __len__(self) -> int:
        return len(self._counts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "layout": self.layout.to_dict(),
            "counts": {
                str(index): count for index, count in self.bucket_counts()
            },
            "n": self._n,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LatencyHistogram":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"expected schema {SCHEMA!r}, got {payload.get('schema')!r}"
            )
        layout = HistogramLayout.from_dict(payload["layout"])  # type: ignore[arg-type]
        hist = cls(layout)
        counts = payload["counts"]
        if not isinstance(counts, dict):
            raise ValueError("counts must be an object")
        for key, count in counts.items():
            hist.observe_bucket(int(key), count)
        if hist.n != payload.get("n"):
            raise ValueError(
                f"count total {hist.n} disagrees with declared n "
                f"{payload.get('n')}"
            )
        return hist

    def encode(self) -> str:
        """Canonical JSON — byte-identical for equal histograms."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def decode(cls, text: str) -> "LatencyHistogram":
        return cls.from_dict(json.loads(text))


def merge_all(
    histograms: Iterable[LatencyHistogram],
    layout: HistogramLayout = DEFAULT_LAYOUT,
) -> LatencyHistogram:
    """Merge any number of histograms into a fresh one."""
    merged = LatencyHistogram(layout)
    for histogram in histograms:
        merged.merge(histogram)
    return merged
