"""Dump rendering and diffing for the observability layer.

A *dump* is the JSON-ready dict produced by
:meth:`repro.obs.runtime.ObsSession.export`::

    {
      "schema": "repro-obs/1",
      "counters": {name: value, ...},   # sorted, events-class
      "gauges":   {name: value, ...},   # sorted, derived-class
      "spans":    {span tree},          # timing-class
      "meta":     {...}
    }

:func:`render_json` / :func:`render_text` serialize it; :func:`diff_dumps`
compares two dumps under the determinism contract: **counters must match
exactly, gauges approximately, timings are never compared** (they are
shown side by side for information only).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.obs.hist import LatencyHistogram
from repro.obs.metrics import (
    DEFAULT_GAUGE_REL_TOL,
    SPECS,
    Determinism,
    Number,
    validate_export,
)
from repro.obs.runtime import SCHEMA
from repro.obs.spans import SpanNode, flatten

#: Fallback relative tolerance for gauge comparisons; each gauge's
#: :class:`~repro.obs.metrics.MetricSpec` may declare a tighter or
#: looser ``rel_tol`` that takes precedence in :func:`diff_dumps`.
GAUGE_REL_TOL = DEFAULT_GAUGE_REL_TOL


def render_json(dump: Dict[str, Any]) -> str:
    """Canonical JSON form (stable key order — dumps diff bytewise)."""
    return json.dumps(dump, indent=2, sort_keys=True) + "\n"


def _format_rss(n_bytes: int) -> str:
    from repro._units import format_bytes

    return format_bytes(float(n_bytes)) if n_bytes else "-"


def render_text(dump: Dict[str, Any], top: int = 0) -> str:
    """Human-readable report: span tree, then counters, then gauges.

    ``top`` truncates the counter table to the N largest values
    (0 = all), for quick profiling summaries.
    """
    lines: List[str] = []
    spans = dump.get("spans")
    if spans:
        root = SpanNode.from_dict(spans)
        lines.append("span tree (wall-clock, peak RSS — non-deterministic):")
        for row in flatten(root):
            indent = "  " * row["depth"]
            count = f"x{row['count']}" if row["count"] > 1 else ""
            lines.append(
                f"  {indent}{row['name']:<{max(4, 34 - 2 * row['depth'])}s}"
                f" {row['elapsed_s']:>9.3f}s"
                f" (self {row['self_s']:>8.3f}s)"
                f" {_format_rss(row['peak_rss_bytes']):>9s}"
                f" {count}"
            )
    counters = dump.get("counters", {})
    if counters:
        lines.append("counters (events — deterministic):")
        items = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        if top:
            items = items[:top]
        for name, value in items:
            unit = SPECS[name].unit if name in SPECS else "?"
            lines.append(f"  {name:<32s} {value:>14,} {unit}")
    gauges = dump.get("gauges", {})
    if gauges:
        lines.append("gauges (derived — deterministic, float):")
        for name in sorted(gauges):
            unit = SPECS[name].unit if name in SPECS else "?"
            lines.append(f"  {name:<32s} {gauges[name]:>14,.1f} {unit}")
    histograms = dump.get("histograms", {})
    if histograms:
        lines.append("histograms (timing — never compared):")
        for name in sorted(histograms):
            hist = LatencyHistogram.from_dict(histograms[name])
            unit = SPECS[name].unit if name in SPECS else "?"
            p50, p95, p99 = hist.percentiles((50.0, 95.0, 99.0))
            lines.append(
                f"  {name:<32s} n={hist.n:<10,d} p50={p50:.3g} "
                f"p95={p95:.3g} p99={p99:.3g} {unit}"
            )
    if not lines:
        lines.append("(empty dump — nothing was recorded)")
    return "\n".join(lines)


@dataclass
class DiffResult:
    """Outcome of comparing two dumps under the determinism contract."""

    #: (name, value_a, value_b) for counters with unequal values.
    counter_diffs: List[Tuple[str, Number, Number]] = field(
        default_factory=list
    )
    #: (name, value_a, value_b) for gauges outside the per-metric
    #: relative tolerance (``MetricSpec.rel_tol``, default
    #: ``GAUGE_REL_TOL``).
    gauge_diffs: List[Tuple[str, Number, Number]] = field(default_factory=list)
    #: Metric names present in exactly one dump.
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    #: Contract violations (undeclared names) found in either dump.
    contract_problems: List[str] = field(default_factory=list)
    #: (name, elapsed_a, elapsed_b) per span — informational only.
    timing_rows: List[Tuple[str, float, float]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when the deterministic content of both dumps matches."""
        return not (
            self.counter_diffs
            or self.gauge_diffs
            or self.only_in_a
            or self.only_in_b
            or self.contract_problems
        )

    def render(self) -> str:
        lines: List[str] = []
        for name in self.contract_problems:
            lines.append(f"CONTRACT {name}")
        for name in self.only_in_a:
            lines.append(f"ONLY-IN-A {name}")
        for name in self.only_in_b:
            lines.append(f"ONLY-IN-B {name}")
        for name, a, b in self.counter_diffs:
            lines.append(f"COUNTER {name}: {a!r} != {b!r} (delta {b - a:+})")
        for name, a, b in self.gauge_diffs:
            lines.append(f"GAUGE {name}: {a!r} != {b!r}")
        if self.timing_rows:
            lines.append("timings (informational, never compared):")
            for name, a, b in self.timing_rows:
                ratio = b / a if a else math.inf
                lines.append(f"  {name:<34s} {a:>9.3f}s -> {b:>9.3f}s ({ratio:.2f}x)")
        status = (
            "deterministic content identical"
            if self.identical
            else "deterministic content DIFFERS"
        )
        lines.append(status)
        return "\n".join(lines)


def _timing(name: str) -> bool:
    """True for timing-class metrics — never part of a diff verdict."""
    spec = SPECS.get(name)
    return spec is not None and spec.determinism is Determinism.TIMING


def _check_schema(dump: Dict[str, Any], label: str) -> List[str]:
    schema = dump.get("schema")
    if schema != SCHEMA:
        return [f"dump {label} has schema {schema!r}, expected {SCHEMA!r}"]
    return []


def diff_dumps(a: Dict[str, Any], b: Dict[str, Any]) -> DiffResult:
    """Compare two dumps: exact on counters, approximate on gauges.

    Span trees contribute informational timing rows only — wall-clock
    is timing-class and never part of the verdict.  Histograms carry
    bucketed wall-clock latencies, so they are validated against the
    contract but likewise never compared.
    """
    result = DiffResult()
    result.contract_problems.extend(_check_schema(a, "A"))
    result.contract_problems.extend(_check_schema(b, "B"))
    for label, dump in (("A", a), ("B", b)):
        ok, problems = validate_export(
            dump.get("counters", {}),
            dump.get("gauges", {}),
            dump.get("histograms", {}),
        )
        if not ok:
            result.contract_problems.extend(
                f"dump {label}: {p}" for p in problems
            )

    counters_a = a.get("counters", {})
    counters_b = b.get("counters", {})
    gauges_a, gauges_b = a.get("gauges", {}), b.get("gauges", {})
    names_a = set(counters_a) | set(gauges_a)
    names_b = set(counters_b) | set(gauges_b)
    result.only_in_a = sorted(n for n in names_a - names_b if not _timing(n))
    result.only_in_b = sorted(n for n in names_b - names_a if not _timing(n))

    for name in sorted(set(counters_a) & set(counters_b)):
        if counters_a[name] != counters_b[name]:
            result.counter_diffs.append(
                (name, counters_a[name], counters_b[name])
            )
    for name in sorted(set(gauges_a) & set(gauges_b)):
        if _timing(name):
            continue
        va, vb = gauges_a[name], gauges_b[name]
        spec = SPECS.get(name)
        rel_tol = spec.effective_rel_tol if spec else GAUGE_REL_TOL
        if not math.isclose(va, vb, rel_tol=rel_tol, abs_tol=0.0):
            result.gauge_diffs.append((name, va, vb))

    spans_a, spans_b = a.get("spans"), b.get("spans")
    if spans_a and spans_b:
        # Same-named spans can recur at several tree positions (one per
        # shard); sum them so each stage gets one side-by-side row.
        totals_a = _elapsed_by_name(spans_a)
        totals_b = _elapsed_by_name(spans_b)
        for name in sorted(set(totals_a) & set(totals_b)):
            result.timing_rows.append((name, totals_a[name], totals_b[name]))
    return result


def _elapsed_by_name(spans: Dict[str, Any]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for row in flatten(SpanNode.from_dict(spans)):
        totals[row["name"]] = totals.get(row["name"], 0.0) + row["elapsed_s"]
    return totals


def load_dump(path: str) -> Dict[str, Any]:
    """Read one dump file (the ``repro-obs`` JSON format)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a repro-obs dump (expected an object)")
    return payload


__all__ = [
    "DiffResult",
    "GAUGE_REL_TOL",
    "diff_dumps",
    "load_dump",
    "render_json",
    "render_text",
]
