"""The sanctioned wall-clock shim of the observability layer.

Simulation code never reads the wall clock — that is the ``RPL103``
contract (``docs/determinism.md``).  Observability is the one sanctioned
exception: span timings *measure* the pipeline, they never feed it, so
this module is the single place in ``src/repro`` allowed to call
:func:`time.perf_counter`.  ``repro-lint`` exempts exactly this file
(and its contract test); everything else keeps importing simulation
time from :mod:`repro._time`.

Everything exported here is explicitly **non-deterministic**: exporters
tag the derived quantities with the ``timing`` determinism class and
``repro-obs diff`` never compares them (see ``docs/observability.md``).
"""

from __future__ import annotations

import sys
import time

from repro._units import KIB


def now_s() -> float:
    """Monotonic wall-clock reading in seconds (span timing only)."""
    return time.perf_counter()


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes (0 if unknown).

    Read from :func:`resource.getrusage`; ``ru_maxrss`` is kibibytes on
    Linux and bytes on macOS.  The value is monotone over the process
    lifetime, so a span records the high-water mark reached *by* its
    end, not the memory attributable to the span alone.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * KIB


__all__ = ["now_s", "peak_rss_bytes"]
