"""``repro-obs`` command-line interface.

Examples::

    repro-obs build --subscribers 2000 --communes 400 --seed 7 \\
        --out run_a.json
    repro-obs build --seed 7 --workers 4 --shards 4 --out run_b.json
    repro-obs build --seed 7 --events-out run_a.events.jsonl
    repro-obs show run_a.json --top 5
    repro-obs diff run_a.json run_b.json
    repro-obs trace run_a.json --out run_a.trace.json
    repro-obs export run_a.json --format prom
    repro-obs list-metrics

Exit codes follow the shared contract in :mod:`repro._exit`: ``0``
success (for ``diff``: deterministic content identical), ``1`` dumps
differ, ``2`` usage error or unreadable input, ``3`` internal failure.
Everything except ``build`` is stdlib-only; ``build`` imports the
numpy pipeline lazily.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._exit import EXIT_INTERNAL, EXIT_USAGE
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import prom as obs_prom
from repro.obs import runtime
from repro.obs import trace as obs_trace
from repro.obs.metrics import SPECS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Profile the measurement pipeline and diff metric dumps: "
            "per-stage span trees plus the typed counters documented in "
            "docs/observability.md."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build",
        help="run build_session_level_dataset with observability enabled",
    )
    build.add_argument("--subscribers", type=int, default=2_000)
    build.add_argument("--communes", type=int, default=400)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--workers", type=int, default=1)
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: derived from --workers)",
    )
    build.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON dump here"
    )
    build.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="also record and write the structured JSONL event log",
    )
    build.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write a Chrome-trace JSON of the span tree (Perfetto)",
    )
    build.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text report on stdout",
    )

    show = sub.add_parser("show", help="render a JSON dump as text")
    show.add_argument("dump", metavar="PATH")
    show.add_argument(
        "--top",
        type=int,
        default=0,
        help="show only the N largest counters (0 = all)",
    )

    diff = sub.add_parser(
        "diff",
        help=(
            "compare two dumps (exact on counters, per-metric relative "
            "tolerance on gauges, never on timings)"
        ),
    )
    diff.add_argument("dump_a", metavar="A")
    diff.add_argument("dump_b", metavar="B")

    trace = sub.add_parser(
        "trace",
        help="export a dump's span tree as Chrome-trace JSON (Perfetto)",
    )
    trace.add_argument("dump", metavar="PATH")
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the trace here (default: stdout)",
    )

    export = sub.add_parser(
        "export",
        help="render a dump's metric registry in an exposition format",
    )
    export.add_argument("dump", metavar="PATH")
    export.add_argument(
        "--format",
        choices=("prom",),
        default="prom",
        help="exposition format (Prometheus text 0.0.4)",
    )
    export.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the exposition here (default: stdout)",
    )

    sub.add_parser("list-metrics", help="print the metrics contract table")
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.dataset.builder import build_session_level_dataset
    from repro.geo.country import CountryConfig

    with runtime.observed(log_events=args.events_out is not None) as session:
        build_session_level_dataset(
            n_subscribers=args.subscribers,
            country_config=CountryConfig(n_communes=args.communes),
            n_workers=args.workers,
            n_shards=args.shards,
            seed=args.seed,
        )
        dump = session.export(
            meta={
                "command": "build",
                "subscribers": args.subscribers,
                "communes": args.communes,
                "seed": args.seed,
                "workers": args.workers,
                "shards": args.shards,
            }
        )
        events = session.export_events()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(obs_export.render_json(dump))
        print(f"dump written to {args.out}", file=sys.stderr)
    if args.events_out:
        obs_events.write_jsonl(args.events_out, events)
        print(f"event log written to {args.events_out}", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(
                obs_trace.render_trace_json(obs_trace.to_chrome_trace(dump))
            )
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if not args.quiet:
        print(obs_export.render_text(dump))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    dump = obs_export.load_dump(args.dump)
    print(obs_export.render_text(dump, top=args.top))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    result = obs_export.diff_dumps(
        obs_export.load_dump(args.dump_a), obs_export.load_dump(args.dump_b)
    )
    print(result.render())
    return 0 if result.identical else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    dump = obs_export.load_dump(args.dump)
    rendered = obs_trace.render_trace_json(obs_trace.to_chrome_trace(dump))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"trace written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    dump = obs_export.load_dump(args.dump)
    rendered = obs_prom.render_prom(dump)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"exposition written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _cmd_list_metrics(args: argparse.Namespace) -> int:
    for name in sorted(SPECS):
        spec = SPECS[name]
        print(
            f"{spec.name:<30s} {spec.kind.value:<8s} {spec.unit:<12s} "
            f"{spec.stage:<12s} {spec.determinism.value:<8s} "
            f"{spec.description}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "build":
            return _cmd_build(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "list-metrics":
            return _cmd_list_metrics(args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-obs: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
