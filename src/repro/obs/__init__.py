"""Pipeline observability: spans, typed metrics, exporters (zero-dep).

The measurement chain (generation → GTP → probe → DPI → aggregation) is
instrumented with two primitives:

- ``with obs.span("stage"):`` — nested wall-clock / peak-RSS timing,
  accumulated into a trace tree (:mod:`repro.obs.spans`);
- ``obs.add("metric", n)`` / ``obs.set_gauge("metric", v)`` — typed
  counters and gauges from the declared contract
  (:data:`repro.obs.metrics.SPECS`, documented name-by-name in
  ``docs/observability.md``).

Disabled by default: every call is a global load plus a ``None`` check.
Enable around a block with :func:`observed`, export with
:meth:`ObsSession.export`, render/diff with :mod:`repro.obs.export` or
the ``repro-obs`` CLI.  Event counters are deterministic for a fixed
``(seed, n_shards)`` regardless of worker count; timings are
explicitly non-deterministic and never compared.

This package is stdlib-only (no numpy) so tooling — the docs
cross-checker, the CLI's ``diff``/``show``/``list-metrics`` — can load
the contract without the simulation stack.
"""

from repro.obs.events import (
    load_jsonl,
    parse_jsonl,
    render_jsonl,
    write_jsonl,
)
from repro.obs.export import (
    DiffResult,
    diff_dumps,
    load_dump,
    render_json,
    render_text,
)
from repro.obs.hist import (
    DEFAULT_LAYOUT,
    HistogramLayout,
    LatencyHistogram,
    merge_all,
)
from repro.obs.metrics import (
    SPECS,
    Determinism,
    MetricKind,
    MetricSpec,
    MetricsRegistry,
    spec_names,
)
from repro.obs.prom import render_prom
from repro.obs.runtime import (
    ObsSession,
    SCHEMA,
    absorb_shard,
    add,
    current,
    disable,
    enable,
    is_enabled,
    log_event,
    merge_histogram,
    observe,
    observed,
    set_gauge,
    shard_capture,
    span,
)
from repro.obs.spans import SpanNode, find, flatten
from repro.obs.trace import render_trace_json, to_chrome_trace

__all__ = [
    "DEFAULT_LAYOUT",
    "DiffResult",
    "Determinism",
    "HistogramLayout",
    "LatencyHistogram",
    "MetricKind",
    "MetricSpec",
    "MetricsRegistry",
    "ObsSession",
    "SCHEMA",
    "SPECS",
    "SpanNode",
    "absorb_shard",
    "add",
    "current",
    "diff_dumps",
    "disable",
    "enable",
    "find",
    "flatten",
    "is_enabled",
    "load_dump",
    "load_jsonl",
    "log_event",
    "merge_all",
    "merge_histogram",
    "observe",
    "observed",
    "parse_jsonl",
    "render_json",
    "render_jsonl",
    "render_prom",
    "render_text",
    "render_trace_json",
    "set_gauge",
    "shard_capture",
    "span",
    "spec_names",
    "to_chrome_trace",
    "write_jsonl",
]
