"""Process-local observability runtime.

The instrumented pipeline calls three functions — :func:`add`,
:func:`set_gauge` and :func:`span` — at every interesting stage.  By
default nothing is active and each call is a single global load plus a
``None`` check (the disabled path allocates nothing and touches no
dict), so instrumentation stays in place permanently at negligible
cost.  :func:`enable` activates a fresh :class:`ObsSession` (metrics
registry + span tree); :func:`observed` scopes one around a block::

    from repro import obs

    with obs.observed() as session:
        build_session_level_dataset(seed=7)
    print(obs.render_text(session.export()))

Sharded builds capture each shard's metrics in the worker process with
:func:`shard_capture` and fold them back into the parent session with
:func:`absorb_shard` — counter totals are therefore identical whether
shards run in-process or across workers (``docs/observability.md``).

The runtime is process-local and single-threaded by design, matching
the pipeline it instruments; worker *processes* get their own copy via
fork and report back through their ``ShardResult``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.obs import clock
from repro.obs.events import Event
from repro.obs.hist import LatencyHistogram
from repro.obs.metrics import SPECS, Determinism, MetricsRegistry, Number
from repro.obs.spans import SpanNode

#: Schema tag written into every dump, bumped on breaking layout change.
SCHEMA = "repro-obs/1"

ROOT_SPAN = "total"


class ObsSession:
    """One enabled observation window: a registry plus a span tree."""

    __slots__ = (
        "registry",
        "root",
        "stack",
        "api_events",
        "events",
        "log_events",
        "_t0",
    )

    def __init__(self, root_name: str = ROOT_SPAN, log_events: bool = False):
        self.registry = MetricsRegistry()
        self.root = SpanNode(root_name)
        #: Innermost-active-last stack of open spans; the root is always
        #: open so top-level spans have a parent.
        self.stack = [self.root]
        #: Instrumentation API invocations observed (add/gauge/span
        #: completions) — the call-site count the disabled-overhead
        #: estimate in ``benchmarks/test_perf_pipeline.py`` scales by.
        self.api_events = 0
        #: Structured event log (``repro.obs.events``); only populated
        #: when ``log_events`` is True.
        self.events: List[Event] = []
        self.log_events = log_events
        self._t0 = clock.now_s()

    def export(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The session as a JSON-ready dump (the ``repro-obs`` format)."""
        self.root.count = 1
        self.root.elapsed_s = clock.now_s() - self._t0
        self.root.peak_rss_bytes = clock.peak_rss_bytes()
        return {
            "schema": SCHEMA,
            "counters": self.registry.export_counters(),
            "gauges": self.registry.export_gauges(),
            "histograms": self.registry.export_histograms(),
            "spans": self.root.to_dict(),
            "meta": dict(meta or {}),
        }

    def export_events(self) -> List[Event]:
        """The event log plus a final counter snapshot (non-mutating).

        Empty unless the session was enabled with ``log_events=True``;
        the trailing ``snapshot`` event makes every exported log end on
        the session's merged counter totals.
        """
        if not self.log_events:
            return []
        return list(self.events) + [
            ("snapshot", "final", self.registry.export_counters())
        ]


_ACTIVE: Optional[ObsSession] = None


def is_enabled() -> bool:
    """Whether an observation session is currently active."""
    return _ACTIVE is not None


def current() -> Optional[ObsSession]:
    """The active session, or None."""
    return _ACTIVE


def enable(log_events: bool = False) -> ObsSession:
    """Activate a fresh session; error if one is already active."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "observability already enabled — disable() the active "
            "session first (the runtime is process-local, not reentrant)"
        )
    _ACTIVE = ObsSession(log_events=log_events)
    return _ACTIVE


def disable() -> Optional[ObsSession]:
    """Deactivate and return the session (None if none was active)."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


class _Observed:
    """Context manager produced by :func:`observed`."""

    __slots__ = ("session", "_log_events")

    def __init__(self, log_events: bool = False):
        self._log_events = log_events

    def __enter__(self) -> ObsSession:
        self.session = enable(log_events=self._log_events)
        return self.session

    def __exit__(self, *exc_info) -> None:
        disable()


def observed(log_events: bool = False) -> _Observed:
    """Scope an observation session around a ``with`` block."""
    return _Observed(log_events=log_events)


def add(name: str, value: Number = 1) -> None:
    """Increment counter ``name``; no-op unless enabled."""
    session = _ACTIVE
    if session is None:
        return
    session.api_events += 1
    session.registry.add(name, value)
    if session.log_events and SPECS[name].determinism is not Determinism.TIMING:
        # Timing-class counters (overload/shed outcomes under a real
        # clock) would make the event log run-dependent, exactly like
        # timing-class gauges below — the log stays a deterministic
        # trace.
        session.events.append(("counter", name, value))


def set_gauge(name: str, value: Number) -> None:
    """Set gauge ``name``; no-op unless enabled."""
    session = _ACTIVE
    if session is None:
        return
    session.api_events += 1
    session.registry.set_gauge(name, value)
    if session.log_events and SPECS[name].determinism is not Determinism.TIMING:
        # Timing-class gauges (RSS, wall-clock) would make the event
        # log run-dependent; the log stays a deterministic trace.
        session.events.append(("gauge", name, value))


def observe(name: str, value: float) -> None:
    """Record one value into histogram ``name``; no-op unless enabled.

    Histogram observations are timing-class by contract (they carry
    wall-clock latencies) and therefore never reach the structured
    event log — only the bucketed snapshot in the export does.
    """
    session = _ACTIVE
    if session is None:
        return
    session.api_events += 1
    session.registry.observe(name, value)


def merge_histogram(name: str, hist: LatencyHistogram) -> None:
    """Fold a pre-built histogram into ``name``; no-op unless enabled."""
    session = _ACTIVE
    if session is None:
        return
    session.api_events += 1
    session.registry.merge_histogram(name, hist)


def log_event(kind: str, name: str, value: Any = None) -> None:
    """Append one structured event; no-op unless event logging is on.

    Used by layers above the metric contract — the fidelity scorecard
    records its ``verdict`` events here — so anything that matters to
    "what happened" lands in the same deterministic log as the pipeline
    stages (``repro.obs.events``).
    """
    session = _ACTIVE
    if session is None or not session.log_events:
        return
    session.events.append((kind, name, value))


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _SpanTimer:
    """Times one stage run and accounts it into the session tree."""

    __slots__ = ("_session", "_name", "_attrs", "_node", "_t0")

    def __init__(
        self,
        session: ObsSession,
        name: str,
        attrs: Optional[Dict[str, Number]] = None,
    ):
        self._session = session
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanTimer":
        session = self._session
        self._node = session.stack[-1].child(self._name)
        session.stack.append(self._node)
        if session.log_events:
            session.events.append(("span_begin", self._name, None))
        self._t0 = clock.now_s()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = clock.now_s() - self._t0
        session = self._session
        self._node.record(elapsed, clock.peak_rss_bytes(), self._attrs)
        session.api_events += 1
        session.stack.pop()
        if session.log_events:
            session.events.append(("span_end", self._name, None))


def span(name: str, attrs: Optional[Dict[str, Number]] = None):
    """Context manager timing one pipeline stage; no-op unless enabled.

    Nested ``with obs.span(...)`` blocks build the trace tree; repeated
    same-name spans under one parent accumulate into a single node.
    Numeric ``attrs`` sum into the node across runs — a chunked stage
    passes e.g. ``{"subscribers": k}`` so one span line still accounts
    for how much work its runs covered.
    """
    session = _ACTIVE
    if session is None:
        return _NOOP_SPAN
    return _SpanTimer(session, name, attrs)


class _ShardCapture:
    """Swaps in a fresh session for one shard and snapshots its output.

    Used by :func:`repro.dataset.parallel.run_shard`: the shard's
    metrics and spans must travel back to the parent as plain data
    (fork-isolated workers share no memory), and the in-process
    fallback must produce the same totals — so both paths capture into
    a fresh session and the parent absorbs the snapshot exactly once.
    """

    __slots__ = ("label", "export", "_outer")

    def __init__(self, label: str):
        self.label = label
        self.export: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "_ShardCapture":
        global _ACTIVE
        self._outer = _ACTIVE
        if self._outer is not None:
            _ACTIVE = ObsSession(
                root_name=self.label, log_events=self._outer.log_events
            )
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        if self._outer is not None and _ACTIVE is not None:
            session = _ACTIVE
            counters = session.registry.export_counters()
            if session.log_events:
                session.events.append(("snapshot", self.label, counters))
            self.export = {
                "counters": counters,
                "histograms": session.registry.export_histograms(),
                "spans": session.export()["spans"],
                "api_events": session.api_events,
                "events": session.events,
            }
        _ACTIVE = self._outer


def shard_capture(label: str) -> _ShardCapture:
    """Capture one shard's metrics under ``label`` (no-op if disabled)."""
    return _ShardCapture(label)


def absorb_shard(export: Optional[Dict[str, Any]]) -> None:
    """Fold a shard capture back into the active session.

    Counters merge by summation; the shard's span tree is grafted under
    the currently open span.  Callers iterate shards in index order, so
    absorbed output is deterministic for a fixed ``(seed, n_shards)``.
    The shard's instrumentation-call count joins ``api_events`` so the
    disabled-overhead estimate sees every call site the build hit.
    """
    session = _ACTIVE
    if session is None or export is None:
        return
    session.registry.merge_counters(export["counters"])
    for name in sorted(export.get("histograms", {})):
        session.registry.merge_histogram(
            name, LatencyHistogram.from_dict(export["histograms"][name])
        )
    session.stack[-1].graft(SpanNode.from_dict(export["spans"]))
    session.api_events += int(export.get("api_events", 0))
    if session.log_events:
        session.events.extend(
            (str(kind), str(name), value)
            for kind, name, value in export.get("events", ())
        )


__all__ = [
    "ObsSession",
    "ROOT_SPAN",
    "SCHEMA",
    "absorb_shard",
    "add",
    "current",
    "disable",
    "enable",
    "is_enabled",
    "log_event",
    "merge_histogram",
    "observe",
    "observed",
    "set_gauge",
    "shard_capture",
    "span",
]
