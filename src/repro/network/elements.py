"""RAN and core network elements.

Mirrors the simplified architecture of the paper's Fig. 1: on the 3G side
NodeBs connect through RNCs and SGSNs to a GGSN; on the 4G side eNodeBs
connect through the MME (control) and S-GW to a P-GW.  The GGSN and P-GW
are co-located (as in the Orange deployment), which is where the passive
probes sit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.geo.coverage import Technology


class CoreNodeRole(enum.Enum):
    """Roles of packet-core elements."""

    RNC = "RNC"
    SGSN = "SGSN"
    GGSN = "GGSN"
    MME = "MME"
    SGW = "S-GW"
    PGW = "P-GW"


@dataclass(frozen=True)
class CoreNode:
    """One packet-core element."""

    node_id: int
    role: CoreNodeRole

    def __str__(self) -> str:
        return f"{self.role.value}-{self.node_id}"


@dataclass(frozen=True)
class BaseStation:
    """A NodeB (3G) or eNodeB (4G) serving one commune.

    Base stations are the anchors of geo-referencing: the ULI reported in
    GTP-C messages identifies the serving cell, and the dataset pipeline
    maps each base station to the commune where it is deployed (§2).
    """

    bs_id: int
    commune_id: int
    technology: Technology
    x_km: float
    y_km: float
    routing_area_id: int

    @property
    def kind(self) -> str:
        return "eNodeB" if self.technology is Technology.G4 else "NodeB"

    def __str__(self) -> str:
        return f"{self.kind}-{self.bs_id}@commune{self.commune_id}"


@dataclass
class RoutingArea:
    """A 3G Routing Area / 4G Tracking Area.

    ULI updates happen on RA/TA changes (and on session establishment and
    inter-RAT handover), which is what limits the paper's localization
    accuracy; the simulator reproduces that update behaviour.
    """

    area_id: int
    commune_ids: List[int] = field(default_factory=list)
    serving_sgsn: int = 0
    serving_mme: int = 0

    def contains(self, commune_id: int) -> bool:
        return commune_id in self._commune_set

    @property
    def _commune_set(self) -> set:
        # Computed lazily but cheaply; RAs hold tens of communes.
        return set(self.commune_ids)


__all__ = ["CoreNodeRole", "CoreNode", "BaseStation", "RoutingArea"]
