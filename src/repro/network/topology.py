"""Deployment of the mobile network over a synthetic country.

Base stations are deployed per commune in proportion to population (every
commune with coverage gets at least one 3G cell; 4G cells appear where
the coverage map says so).  Communes are grouped into routing/tracking
areas by spatial blocks, each served by an SGSN (3G) and an MME (4G);
a single co-located GGSN/P-GW site terminates all tunnels — which is the
property that makes the paper's single probe deployment possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.geo.country import Country
from repro.geo.coverage import Technology
from repro.network.elements import BaseStation, CoreNode, CoreNodeRole, RoutingArea


@dataclass
class NetworkTopology:
    """The deployed network: base stations, areas, and core nodes."""

    country: Country
    base_stations: List[BaseStation]
    routing_areas: Dict[int, RoutingArea]
    core_nodes: List[CoreNode]
    _bs_by_commune_tech: Dict[tuple, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._bs_by_commune_tech:
            for bs in self.base_stations:
                key = (bs.commune_id, bs.technology)
                self._bs_by_commune_tech.setdefault(key, []).append(bs.bs_id)

    @property
    def n_base_stations(self) -> int:
        return len(self.base_stations)

    def ggsn(self) -> CoreNode:
        """The (single) GGSN."""
        return self._single(CoreNodeRole.GGSN)

    def pgw(self) -> CoreNode:
        """The (single) P-GW, co-located with the GGSN."""
        return self._single(CoreNodeRole.PGW)

    def _single(self, role: CoreNodeRole) -> CoreNode:
        nodes = [n for n in self.core_nodes if n.role is role]
        if len(nodes) != 1:
            raise LookupError(f"expected exactly one {role.value}, got {len(nodes)}")
        return nodes[0]

    def serving_station(
        self,
        commune_id: int,
        technology: Technology,
        rng: np.random.Generator,
    ) -> BaseStation:
        """Pick the base station serving a user camped in a commune.

        Falls back to 3G when the commune has no cell of the requested
        technology; raises ``LookupError`` in (rare) white zones.
        """
        for tech in (technology, Technology.G3):
            ids = self._bs_by_commune_tech.get((commune_id, tech))
            if ids:
                return self.base_stations[ids[int(rng.integers(len(ids)))]]
        raise LookupError(f"commune {commune_id} is a white zone (no coverage)")

    def available_technology(self, commune_id: int, wants_4g: bool) -> Technology:
        """Best technology a user can get in a commune (3G fallback)."""
        if wants_4g and (commune_id, Technology.G4) in self._bs_by_commune_tech:
            return Technology.G4
        return Technology.G3

    # ------------------------------------------------------------------
    # vectorized lookups (the bulk session fast path)
    # ------------------------------------------------------------------
    @property
    def _vector_tables(self) -> dict:
        """CSR-style per-(technology, commune) station tables.

        Built lazily once; ``serving_station_codes`` then picks serving
        cells for whole batches of sessions with array arithmetic
        instead of per-session dict probes.
        """
        tables = getattr(self, "_vt_cache", None)
        if tables is None:
            from repro.network.gtp import TECH_CODES

            n_communes = self.country.n_communes
            counts = np.zeros((2, n_communes), dtype=np.int64)
            starts = np.zeros((2, n_communes), dtype=np.int64)
            flat: list = []
            for tech, code in TECH_CODES.items():
                for commune_id in range(n_communes):
                    ids = self._bs_by_commune_tech.get((commune_id, tech))
                    starts[code, commune_id] = len(flat)
                    if ids:
                        counts[code, commune_id] = len(ids)
                        flat.extend(ids)
            tables = {
                "counts": counts,
                "starts": starts,
                "flat": np.asarray(flat, dtype=np.int64),
                "bs_ra": np.asarray(
                    [bs.routing_area_id for bs in self.base_stations],
                    dtype=np.int64,
                ),
                "bs_commune": np.asarray(
                    [bs.commune_id for bs in self.base_stations], dtype=np.int64
                ),
            }
            self._vt_cache = tables
        return tables

    def available_technology_codes(
        self, commune_ids: np.ndarray, wants_4g
    ) -> np.ndarray:
        """Vectorized :meth:`available_technology` (TECH_3G/TECH_4G codes).

        ``wants_4g`` is a scalar bool or a per-session bool array (how
        the chunked emission path mixes subscribers with different
        handsets in one batch).
        """
        from repro.network.gtp import TECH_3G, TECH_4G

        if not np.any(wants_4g):
            return np.full(len(commune_ids), TECH_3G, dtype=np.uint8)
        has_4g = self._vector_tables["counts"][TECH_4G, commune_ids] > 0
        eligible = np.logical_and(wants_4g, has_4g)
        return np.where(eligible, TECH_4G, TECH_3G).astype(np.uint8)

    def serving_station_codes(
        self,
        commune_ids: np.ndarray,
        tech_codes: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple:
        """Pick serving cells for a batch of sessions.

        Returns ``(bs_ids, tech_codes, routing_area_ids, cell_communes)``
        with the same 3G fallback and white-zone behaviour as
        :meth:`serving_station`.
        """
        from repro.network.gtp import TECH_3G

        tables = self._vector_tables
        counts = tables["counts"][tech_codes, commune_ids]
        missing = counts == 0
        if missing.any():
            tech_codes = np.where(missing, TECH_3G, tech_codes).astype(np.uint8)
            counts = tables["counts"][tech_codes, commune_ids]
            if (counts == 0).any():
                bad = int(commune_ids[counts == 0][0])
                raise LookupError(
                    f"commune {bad} is a white zone (no coverage)"
                )
        offsets = (rng.random(len(commune_ids)) * counts).astype(np.int64)
        bs_ids = tables["flat"][
            tables["starts"][tech_codes, commune_ids] + offsets
        ]
        return (
            bs_ids,
            tech_codes,
            tables["bs_ra"][bs_ids],
            tables["bs_commune"][bs_ids],
        )

    def routing_area_of(self, commune_id: int) -> int:
        """Routing/tracking area id of a commune."""
        return self._ra_of_commune[commune_id]

    @property
    def _ra_of_commune(self) -> np.ndarray:
        if not hasattr(self, "_ra_cache"):
            cache = np.full(self.country.n_communes, -1, dtype=int)
            for area in self.routing_areas.values():
                cache[np.asarray(area.commune_ids, dtype=int)] = area.area_id
            object.__setattr__(self, "_ra_cache", cache)
        return self._ra_cache

    def stations_in_commune(self, commune_id: int) -> List[BaseStation]:
        """All base stations deployed in a commune."""
        out = []
        for tech in (Technology.G3, Technology.G4):
            for bs_id in self._bs_by_commune_tech.get((commune_id, tech), []):
                out.append(self.base_stations[bs_id])
        return out


def build_topology(
    country: Country,
    cells_per_10k_residents: float = 1.2,
    ra_block_communes: int = 64,
    n_sgsn: int = 4,
    n_mme: int = 2,
    seed: SeedLike = None,
) -> NetworkTopology:
    """Deploy the RAN and core over ``country``.

    Parameters
    ----------
    cells_per_10k_residents:
        Cell density driver: a commune with R residents gets
        ``ceil(R / 10_000 * cells_per_10k_residents)`` 3G cells (at least
        one whenever 3G covers it), and the same number of 4G cells where
        4G is deployed.
    ra_block_communes:
        Approximate number of communes per routing/tracking area; areas
        are square blocks of the commune grid, matching how operators
        dimension RAs around contiguous regions.
    """
    if cells_per_10k_residents <= 0:
        raise ValueError(
            f"cells_per_10k_residents must be > 0, got {cells_per_10k_residents}"
        )
    rng = as_generator(seed)
    grid = country.grid
    coverage = country.coverage
    residents = country.population.residents

    # Routing areas: square blocks of the commune grid.
    block = max(1, int(math.sqrt(ra_block_communes)))
    blocks_per_side = math.ceil(grid.cells_per_side / block)
    routing_areas: Dict[int, RoutingArea] = {}
    for commune_id in range(len(grid)):
        row, col = divmod(commune_id, grid.cells_per_side)
        area_id = (row // block) * blocks_per_side + (col // block)
        area = routing_areas.get(area_id)
        if area is None:
            area = RoutingArea(
                area_id=area_id,
                serving_sgsn=area_id % max(1, n_sgsn),
                serving_mme=area_id % max(1, n_mme),
            )
            routing_areas[area_id] = area
        area.commune_ids.append(commune_id)

    base_stations: List[BaseStation] = []
    for commune_id in range(len(grid)):
        commune = grid[commune_id]
        area_id = None
        row, col = divmod(commune_id, grid.cells_per_side)
        area_id = (row // block) * blocks_per_side + (col // block)
        n_cells = max(1, math.ceil(residents[commune_id] / 10_000 * cells_per_10k_residents))
        offsets = rng.uniform(-0.3, 0.3, size=(n_cells, 2)) * grid.cell_km
        if coverage.has_3g[commune_id]:
            for c in range(n_cells):
                base_stations.append(
                    BaseStation(
                        bs_id=len(base_stations),
                        commune_id=commune_id,
                        technology=Technology.G3,
                        x_km=commune.x_km + float(offsets[c, 0]),
                        y_km=commune.y_km + float(offsets[c, 1]),
                        routing_area_id=area_id,
                    )
                )
        if coverage.has_4g[commune_id]:
            for c in range(n_cells):
                base_stations.append(
                    BaseStation(
                        bs_id=len(base_stations),
                        commune_id=commune_id,
                        technology=Technology.G4,
                        x_km=commune.x_km - float(offsets[c, 0]),
                        y_km=commune.y_km - float(offsets[c, 1]),
                        routing_area_id=area_id,
                    )
                )

    core_nodes: List[CoreNode] = []
    node_id = 0
    for role, count in (
        (CoreNodeRole.RNC, max(1, n_sgsn * 2)),
        (CoreNodeRole.SGSN, n_sgsn),
        (CoreNodeRole.GGSN, 1),
        (CoreNodeRole.MME, n_mme),
        (CoreNodeRole.SGW, max(1, n_mme)),
        (CoreNodeRole.PGW, 1),
    ):
        for _ in range(count):
            core_nodes.append(CoreNode(node_id=node_id, role=role))
            node_id += 1

    return NetworkTopology(
        country=country,
        base_stations=base_stations,
        routing_areas=routing_areas,
        core_nodes=core_nodes,
    )


__all__ = ["NetworkTopology", "build_topology"]
