"""GPRS Tunneling Protocol structures.

The probes of the paper tap two planes at the Gn (3G) and S5/S8 (4G)
interfaces:

- **GTP-C** (control): PDP-context and EPS-bearer signalling, from which
  the User Location Information (ULI) is extracted to geo-reference each
  IP session;
- **GTP-U** (user): the tunneled IP traffic itself, from which per-flow
  byte counts and DPI fingerprint material are extracted.

This module models the message structures the probes parse.  Only the
fields the measurement pipeline needs are carried — the point is to
reproduce the probe's *information flow*, not the wire format.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.geo.coverage import Technology

#: Compact integer codes for :class:`~repro.geo.coverage.Technology`,
#: used by the columnar (bulk) message structures below.
TECH_3G, TECH_4G = 0, 1
TECH_BY_CODE = (Technology.G3, Technology.G4)
TECH_CODES = {Technology.G3: TECH_3G, Technology.G4: TECH_4G}


class GtpcMessageType(enum.Enum):
    """Control-plane messages relevant to the probes.

    The 3G names follow GTPv1-C (TS 29.060), the 4G names GTPv2-C
    (TS 29.274); both planes transit the probed interfaces.
    """

    # 3G / GTPv1-C
    CREATE_PDP_CONTEXT_REQUEST = "CreatePDPContextRequest"
    CREATE_PDP_CONTEXT_RESPONSE = "CreatePDPContextResponse"
    UPDATE_PDP_CONTEXT_REQUEST = "UpdatePDPContextRequest"
    DELETE_PDP_CONTEXT_REQUEST = "DeletePDPContextRequest"
    # 4G / GTPv2-C
    CREATE_SESSION_REQUEST = "CreateSessionRequest"
    CREATE_SESSION_RESPONSE = "CreateSessionResponse"
    MODIFY_BEARER_REQUEST = "ModifyBearerRequest"
    DELETE_SESSION_REQUEST = "DeleteSessionRequest"

    @property
    def is_3g(self) -> bool:
        return "PDP" in self.value

    @property
    def creates_tunnel(self) -> bool:
        return self in (
            GtpcMessageType.CREATE_PDP_CONTEXT_REQUEST,
            GtpcMessageType.CREATE_SESSION_REQUEST,
        )

    @property
    def updates_location(self) -> bool:
        return self in (
            GtpcMessageType.CREATE_PDP_CONTEXT_REQUEST,
            GtpcMessageType.UPDATE_PDP_CONTEXT_REQUEST,
            GtpcMessageType.CREATE_SESSION_REQUEST,
            GtpcMessageType.MODIFY_BEARER_REQUEST,
        )

    @property
    def deletes_tunnel(self) -> bool:
        return self in (
            GtpcMessageType.DELETE_PDP_CONTEXT_REQUEST,
            GtpcMessageType.DELETE_SESSION_REQUEST,
        )


@dataclass(frozen=True)
class UserLocationInformation:
    """The ULI information element (SAI/CGI on 3G, ECGI/TAI on 4G).

    ``cell_commune_id`` is the commune of the reporting cell — the
    simulator's stand-in for the cell identifier that the real pipeline
    resolves to a commune through the operator's cell database.
    """

    technology: Technology
    routing_area_id: int
    cell_id: int
    cell_commune_id: int

    def __str__(self) -> str:
        area = "TAI" if self.technology is Technology.G4 else "SAI"
        return f"ULI[{area}={self.routing_area_id} cell={self.cell_id}]"


@dataclass(frozen=True)
class GtpcMessage:
    """A control-plane message observed on Gn or S5/S8."""

    message_type: GtpcMessageType
    timestamp_s: float
    imsi_hash: int
    teid: int
    uli: Optional[UserLocationInformation] = None

    def __post_init__(self) -> None:
        if self.message_type.updates_location and self.uli is None:
            raise ValueError(
                f"{self.message_type.value} must carry a ULI information element"
            )

    @property
    def interface(self) -> str:
        """The probed interface this message transits."""
        return "Gn" if self.message_type.is_3g else "S5/S8"


@dataclass(frozen=True)
class FlowDescriptor:
    """DPI-relevant attributes of one IP flow.

    These are the features the operator's proprietary classifier uses:
    the TLS SNI (when present), the HTTP host (for clear-text flows),
    the server port, the transport protocol, and an opaque payload hint
    standing in for stateful protocol fingerprints.  They ride inside the
    GTP-U payload, which is where the probes extract them from.
    """

    flow_id: int
    sni: Optional[str]
    host: Optional[str]
    server_port: int
    protocol: str  # "tcp" / "udp"
    payload_hint: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.server_port < 65536:
            raise ValueError(f"invalid server port {self.server_port}")
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"protocol must be tcp or udp, got {self.protocol!r}")


@dataclass(frozen=True)
class GtpuPacket:
    """An accounting record of user-plane traffic within one tunnel.

    Rather than simulating individual IP packets, the simulator batches
    the traffic a flow exchanges within one reporting interval into one
    ``GtpuPacket`` carrying byte counters — the same granularity at which
    the real probes export flow records.
    """

    timestamp_s: float
    teid: int
    flow: FlowDescriptor
    dl_bytes: float
    ul_bytes: float

    def __post_init__(self) -> None:
        if self.dl_bytes < 0 or self.ul_bytes < 0:
            raise ValueError("byte counters must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.dl_bytes + self.ul_bytes


@dataclass
class GtpcCreateBulk:
    """A columnar batch of session-establishment signalling.

    One entry per session; each entry stands for the request/response
    *pair* the scalar :class:`GtpcMessage` path emits, so a probe
    observing a batch of ``n`` sessions accounts ``2 n`` control
    messages.  Carrying the ULI fields as parallel arrays lets the
    probes maintain their tunnel tables without materializing one
    message object per session — the bulk fast path of the measurement
    chain.
    """

    timestamps_s: np.ndarray
    imsi_hashes: np.ndarray
    teids: np.ndarray
    tech_codes: np.ndarray  # TECH_3G / TECH_4G per session
    routing_area_ids: np.ndarray
    cell_ids: np.ndarray
    cell_commune_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.teids)


@dataclass
class GtpcDeleteBulk:
    """A columnar batch of session-teardown signalling (one per session)."""

    timestamps_s: np.ndarray
    imsi_hashes: np.ndarray
    teids: np.ndarray
    tech_codes: np.ndarray

    def __len__(self) -> int:
        return len(self.teids)


@dataclass
class GtpuBulk:
    """A columnar batch of user-plane flow accounting records.

    Flows are grouped by session: ``session_teids[i]`` carried
    ``flows_per_session[i]`` consecutive flows of the flat per-flow
    arrays.  DPI features ride as plain Python lists (they are strings
    and Nones), numeric columns as numpy arrays.
    """

    session_teids: np.ndarray
    flows_per_session: np.ndarray
    timestamps_s: np.ndarray
    dl_bytes: np.ndarray
    ul_bytes: np.ndarray
    flow_ids: List[int]
    snis: List[Optional[str]]
    hosts: List[Optional[str]]
    payload_hints: List[Optional[str]]
    server_ports: List[int]
    protocols: List[str]

    def __len__(self) -> int:
        return len(self.timestamps_s)


class TeidAllocator:
    """Allocates unique Tunnel Endpoint IDs.

    Real GGSNs/P-GWs allocate 32-bit TEIDs per tunnel endpoint; the
    simulator only needs uniqueness, so a simple counter (wrapping within
    32 bits) suffices.
    """

    _MAX = 2**32

    def __init__(self, start: int = 1):
        if not 0 < start < self._MAX:
            raise ValueError(f"start must be in (0, 2^32), got {start}")
        self._counter = itertools.count(start)

    def allocate(self) -> int:
        """Return the next TEID."""
        teid = next(self._counter) % self._MAX
        if teid == 0:  # TEID 0 is reserved for signalling
            teid = next(self._counter) % self._MAX
        obs.add("gtp.teids_allocated")
        return teid

    def allocate_many(self, n: int) -> np.ndarray:
        """Return the next ``n`` TEIDs as an array."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        teids = np.fromiter(
            itertools.islice(self._counter, n), dtype=np.int64, count=n
        )
        teids %= self._MAX
        reserved = teids == 0
        if reserved.any():  # once per 2^32 sessions
            teids[reserved] = [self.allocate() for _ in range(int(reserved.sum()))]
        obs.add("gtp.teids_allocated", n)
        return teids


__all__ = [
    "GtpcMessageType",
    "UserLocationInformation",
    "GtpcMessage",
    "FlowDescriptor",
    "GtpuPacket",
    "GtpcCreateBulk",
    "GtpcDeleteBulk",
    "GtpuBulk",
    "TeidAllocator",
    "TECH_3G",
    "TECH_4G",
    "TECH_BY_CODE",
    "TECH_CODES",
]
