"""Passive probes on the Gn and S5/S8 interfaces.

A :class:`CoreProbe` reproduces the measurement apparatus of §2:

- it inspects **GTP-C** to maintain the tunnel state table — for each
  TEID, the subscriber (hashed identifier) and the current ULI, i.e. the
  commune of the last reporting cell;
- it inspects **GTP-U** to account per-flow traffic, joining each record
  with the tunnel state to geo-reference it;
- it emits :class:`ProbeRecord` objects, the raw input of the dataset
  pipeline (DPI classification and commune-level aggregation follow
  downstream).

The 3G (Gn) and 4G (S5/S8) gateways being co-located, one probe object
observes both planes of both technologies — exactly the deployment
convenience the paper mentions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro._rng import SeedLike, as_generator
from repro.geo.coverage import Technology
from repro.network.gtp import (
    TECH_BY_CODE,
    TECH_CODES,
    FlowDescriptor,
    GtpcCreateBulk,
    GtpcDeleteBulk,
    GtpcMessage,
    GtpuBulk,
    GtpuPacket,
    UserLocationInformation,
)
from repro.network.session import SessionManager


@dataclass(frozen=True)
class ProbeRecord:
    """One geo-referenced, DPI-ready flow accounting record."""

    timestamp_s: float
    imsi_hash: int
    commune_id: int
    technology: Technology
    flow: FlowDescriptor
    dl_bytes: float
    ul_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.dl_bytes + self.ul_bytes


@dataclass
class ProbeRecordBatch:
    """A columnar batch of geo-referenced flow accounting records.

    The bulk probe path emits these instead of one :class:`ProbeRecord`
    per flow; numeric columns are numpy arrays, DPI feature columns
    plain lists.  :meth:`to_records` expands back to scalar records for
    consumers of the legacy API.
    """

    timestamps_s: np.ndarray
    imsi_hashes: np.ndarray
    commune_ids: np.ndarray
    tech_codes: np.ndarray
    dl_bytes: np.ndarray
    ul_bytes: np.ndarray
    flow_ids: List[int]
    snis: List[Optional[str]]
    hosts: List[Optional[str]]
    payload_hints: List[Optional[str]]
    server_ports: List[int]
    protocols: List[str]

    def __len__(self) -> int:
        return len(self.timestamps_s)

    def to_records(self) -> List[ProbeRecord]:
        """Materialize the batch as scalar :class:`ProbeRecord` objects."""
        out: List[ProbeRecord] = []
        for i in range(len(self)):
            out.append(
                ProbeRecord(
                    timestamp_s=float(self.timestamps_s[i]),
                    imsi_hash=int(self.imsi_hashes[i]),
                    commune_id=int(self.commune_ids[i]),
                    technology=TECH_BY_CODE[int(self.tech_codes[i])],
                    flow=FlowDescriptor(
                        flow_id=self.flow_ids[i],
                        sni=self.snis[i],
                        host=self.hosts[i],
                        server_port=self.server_ports[i],
                        protocol=self.protocols[i],
                        payload_hint=self.payload_hints[i],
                    ),
                    dl_bytes=float(self.dl_bytes[i]),
                    ul_bytes=float(self.ul_bytes[i]),
                )
            )
        return out

    @classmethod
    def concat(cls, batches: List["ProbeRecordBatch"]) -> "ProbeRecordBatch":
        """Concatenate batches (order preserved) into one."""
        if not batches:
            raise ValueError("cannot concatenate zero batches")
        if len(batches) == 1:
            return batches[0]
        return cls(
            timestamps_s=np.concatenate([b.timestamps_s for b in batches]),
            imsi_hashes=np.concatenate([b.imsi_hashes for b in batches]),
            commune_ids=np.concatenate([b.commune_ids for b in batches]),
            tech_codes=np.concatenate([b.tech_codes for b in batches]),
            dl_bytes=np.concatenate([b.dl_bytes for b in batches]),
            ul_bytes=np.concatenate([b.ul_bytes for b in batches]),
            flow_ids=[x for b in batches for x in b.flow_ids],
            snis=[x for b in batches for x in b.snis],
            hosts=[x for b in batches for x in b.hosts],
            payload_hints=[x for b in batches for x in b.payload_hints],
            server_ports=[x for b in batches for x in b.server_ports],
            protocols=[x for b in batches for x in b.protocols],
        )

    @classmethod
    def from_records(cls, records: List[ProbeRecord]) -> "ProbeRecordBatch":
        """Pack scalar records into one columnar batch."""
        return cls(
            timestamps_s=np.asarray([r.timestamp_s for r in records]),
            imsi_hashes=np.asarray([r.imsi_hash for r in records], dtype=np.int64),
            commune_ids=np.asarray([r.commune_id for r in records], dtype=np.int64),
            tech_codes=np.asarray(
                [TECH_CODES[r.technology] for r in records], dtype=np.uint8
            ),
            dl_bytes=np.asarray([r.dl_bytes for r in records]),
            ul_bytes=np.asarray([r.ul_bytes for r in records]),
            flow_ids=[r.flow.flow_id for r in records],
            snis=[r.flow.sni for r in records],
            hosts=[r.flow.host for r in records],
            payload_hints=[r.flow.payload_hint for r in records],
            server_ports=[r.flow.server_port for r in records],
            protocols=[r.flow.protocol for r in records],
        )


@dataclass
class _TunnelState:
    """Probe-side state for one observed tunnel."""

    imsi_hash: int
    uli: UserLocationInformation


@dataclass
class ProbeStats:
    """Probe health counters, exposed for pipeline validation."""

    control_messages: int = 0
    user_packets: int = 0
    orphan_packets: int = 0  # GTP-U with no known tunnel (lost GTP-C)
    records: int = 0

    def merge(self, other: "ProbeStats") -> "ProbeStats":
        """Fold another probe's counters (e.g. a worker shard's) in."""
        self.control_messages += other.control_messages
        self.user_packets += other.user_packets
        self.orphan_packets += other.orphan_packets
        self.records += other.records
        return self


class CoreProbe:
    """The passive probe: correlates GTP-C and GTP-U into probe records."""

    def __init__(self, control_loss_rate: float = 0.0, seed: SeedLike = None):
        """``control_loss_rate`` drops a fraction of GTP-C messages, to
        model imperfect capture; orphaned user-plane traffic is counted
        but produces no record (as in the real pipeline, where it simply
        cannot be geo-referenced).  ``seed`` is any
        :data:`~repro._rng.SeedLike`, including an existing generator
        (how the builder hands the probe a spawned stream)."""
        if not 0 <= control_loss_rate < 1:
            raise ValueError(
                f"control_loss_rate must be in [0, 1), got {control_loss_rate}"
            )
        self._tunnels: Dict[int, _TunnelState] = {}
        # Bulk-path tunnel table: teid -> (imsi_hash, commune_id, tech_code).
        self._bulk_tunnels: Dict[int, Tuple[int, int, int]] = {}
        # Arrival-ordered store of ProbeRecord and ProbeRecordBatch items.
        self._records: List[Union[ProbeRecord, ProbeRecordBatch]] = []
        self._loss_rate = control_loss_rate
        self._rng = as_generator(seed)
        self.stats = ProbeStats()
        # Streaming mode (see stream_to): records flow to a sink in
        # bounded chunks instead of accumulating until drained.
        self._sink = None
        self._sink_chunk_rows = 0
        self._pending_rows = 0

    def attach_to(self, sessions: SessionManager) -> "CoreProbe":
        """Tap both planes of a session manager; returns self for chaining."""
        sessions.add_control_listener(self.on_control)
        sessions.add_user_plane_listener(self.on_user_plane)
        return self

    def attach_to_bulk(self, sessions: SessionManager) -> "CoreProbe":
        """Tap the columnar planes of a session manager (the fast path).

        A probe attached this way observes bulk batches only; use
        :meth:`attach_to` as well if the manager also drives scalar
        sessions.
        """
        sessions.add_bulk_control_listener(self.on_control_bulk)
        sessions.add_bulk_user_plane_listener(self.on_user_plane_bulk)
        return self

    def stream_to(self, sink, chunk_rows: int = 8192) -> "CoreProbe":
        """Stream records to ``sink`` in ~``chunk_rows``-record chunks.

        This is the bounded-memory path: instead of accumulating every
        record until :meth:`drain_batches`, the probe coalesces arrivals
        exactly as the drain would and hands each full chunk to
        ``sink(batch)`` immediately, so the working set never exceeds
        one chunk.  Call :meth:`flush_stream` after the generator run to
        push the partial tail chunk.  Returns self for chaining.
        """
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._sink = sink
        self._sink_chunk_rows = chunk_rows
        return self

    def flush_stream(self) -> None:
        """Emit whatever is buffered to the sink (streaming mode only)."""
        if self._sink is None or not self._records:
            return
        store, self._records = self._records, []
        self._pending_rows = 0
        batch = ProbeRecordBatch.concat(_pack_runs(store))
        obs.add("stream.chunks")
        self._sink(batch)

    def _store(self, item, rows: int) -> None:
        """Buffer one record/batch; flush a chunk in streaming mode."""
        self._records.append(item)
        if self._sink is not None:
            self._pending_rows += rows
            if self._pending_rows >= self._sink_chunk_rows:
                self.flush_stream()

    def on_control(self, message: GtpcMessage) -> None:
        """GTP-C inspection: maintain the TEID -> (user, ULI) table."""
        self.stats.control_messages += 1
        if self._loss_rate and self._rng.random() < self._loss_rate:
            return
        if message.message_type.deletes_tunnel:
            self._tunnels.pop(message.teid, None)
            return
        if message.uli is None:
            return
        state = self._tunnels.get(message.teid)
        if state is None:
            self._tunnels[message.teid] = _TunnelState(
                imsi_hash=message.imsi_hash, uli=message.uli
            )
        else:
            state.uli = message.uli

    def on_user_plane(self, packet: GtpuPacket) -> None:
        """GTP-U inspection: join with tunnel state, emit a record."""
        self.stats.user_packets += 1
        state = self._tunnels.get(packet.teid)
        if state is None:
            self.stats.orphan_packets += 1
            return
        self._store(
            ProbeRecord(
                timestamp_s=packet.timestamp_s,
                imsi_hash=state.imsi_hash,
                commune_id=state.uli.cell_commune_id,
                technology=state.uli.technology,
                flow=packet.flow,
                dl_bytes=packet.dl_bytes,
                ul_bytes=packet.ul_bytes,
            ),
            rows=1,
        )
        self.stats.records += 1

    def on_control_bulk(
        self, bulk: Union[GtpcCreateBulk, GtpcDeleteBulk]
    ) -> None:
        """Columnar GTP-C inspection: batch-maintain the tunnel table.

        A :class:`GtpcCreateBulk` entry stands for the request/response
        pair, so it accounts two control messages; the tunnel becomes
        known unless *both* messages of the pair are lost.
        """
        n = len(bulk)
        if isinstance(bulk, GtpcCreateBulk):
            self.stats.control_messages += 2 * n
            if self._loss_rate:
                lost_request = self._rng.random(n) < self._loss_rate
                lost_response = self._rng.random(n) < self._loss_rate
                kept = ~(lost_request & lost_response)
            else:
                kept = None
            tunnels = self._bulk_tunnels
            rows = zip(
                bulk.teids.tolist(),
                bulk.imsi_hashes.tolist(),
                bulk.cell_commune_ids.tolist(),
                bulk.tech_codes.tolist(),
            )
            if kept is None:
                for teid, imsi, commune, tech in rows:
                    tunnels[teid] = (imsi, commune, tech)
            else:
                for keep, (teid, imsi, commune, tech) in zip(
                    kept.tolist(), rows
                ):
                    if keep:
                        tunnels[teid] = (imsi, commune, tech)
        else:
            self.stats.control_messages += n
            teids = bulk.teids
            if self._loss_rate:
                teids = teids[self._rng.random(n) >= self._loss_rate]
            for teid in teids.tolist():
                if self._bulk_tunnels.pop(teid, None) is None:
                    self._tunnels.pop(teid, None)

    def on_user_plane_bulk(self, bulk: GtpuBulk) -> None:
        """Columnar GTP-U inspection: join a batch with the tunnel table."""
        n_flows = len(bulk)
        self.stats.user_packets += n_flows
        n_sessions = len(bulk.session_teids)
        imsi = np.empty(n_sessions, dtype=np.int64)
        commune = np.empty(n_sessions, dtype=np.int64)
        tech = np.empty(n_sessions, dtype=np.uint8)
        known = np.ones(n_sessions, dtype=bool)
        tunnels = self._bulk_tunnels
        for j, teid in enumerate(bulk.session_teids.tolist()):
            state = tunnels.get(teid)
            if state is None:
                known[j] = False
            else:
                imsi[j], commune[j], tech[j] = state
        flows_per_session = bulk.flows_per_session
        if known.all():
            batch = ProbeRecordBatch(
                timestamps_s=bulk.timestamps_s,
                imsi_hashes=np.repeat(imsi, flows_per_session),
                commune_ids=np.repeat(commune, flows_per_session),
                tech_codes=np.repeat(tech, flows_per_session),
                dl_bytes=bulk.dl_bytes,
                ul_bytes=bulk.ul_bytes,
                flow_ids=bulk.flow_ids,
                snis=bulk.snis,
                hosts=bulk.hosts,
                payload_hints=bulk.payload_hints,
                server_ports=bulk.server_ports,
                protocols=bulk.protocols,
            )
        else:
            mask = np.repeat(known, flows_per_session)
            self.stats.orphan_packets += int(n_flows - mask.sum())
            keep = mask.tolist()
            batch = ProbeRecordBatch(
                timestamps_s=bulk.timestamps_s[mask],
                imsi_hashes=np.repeat(imsi[known], flows_per_session[known]),
                commune_ids=np.repeat(commune[known], flows_per_session[known]),
                tech_codes=np.repeat(tech[known], flows_per_session[known]),
                dl_bytes=bulk.dl_bytes[mask],
                ul_bytes=bulk.ul_bytes[mask],
                flow_ids=list(itertools.compress(bulk.flow_ids, keep)),
                snis=list(itertools.compress(bulk.snis, keep)),
                hosts=list(itertools.compress(bulk.hosts, keep)),
                payload_hints=list(itertools.compress(bulk.payload_hints, keep)),
                server_ports=list(itertools.compress(bulk.server_ports, keep)),
                protocols=list(itertools.compress(bulk.protocols, keep)),
            )
        if len(batch):
            self.stats.records += len(batch)
            self._store(batch, rows=len(batch))

    def drain(self) -> List[ProbeRecord]:
        """Return and clear the accumulated records (scalar view)."""
        store, self._records = self._records, []
        out: List[ProbeRecord] = []
        for item in store:
            if isinstance(item, ProbeRecordBatch):
                out.extend(item.to_records())
            else:
                out.append(item)
        return out

    def drain_batches(self, chunk_rows: int = 8192) -> List[ProbeRecordBatch]:
        """Return and clear the accumulated records as columnar batches.

        Scalar records interleaved with batches (mixed scalar/bulk taps)
        are packed into batches in arrival order, and consecutive small
        batches are coalesced to at least ``chunk_rows`` records so
        downstream vectorized aggregation works on few large batches
        instead of one per subscriber.
        """
        store, self._records = self._records, []
        raw = _pack_runs(store)

        batches: List[ProbeRecordBatch] = []
        pending: List[ProbeRecordBatch] = []
        pending_rows = 0
        for batch in raw:
            pending.append(batch)
            pending_rows += len(batch)
            if pending_rows >= chunk_rows:
                batches.append(ProbeRecordBatch.concat(pending))
                pending, pending_rows = [], 0
        if pending:
            batches.append(ProbeRecordBatch.concat(pending))
        return batches

    @property
    def n_tracked_tunnels(self) -> int:
        return len(self._tunnels) + len(self._bulk_tunnels)


def _pack_runs(
    store: List[Union[ProbeRecord, ProbeRecordBatch]]
) -> List[ProbeRecordBatch]:
    """Pack consecutive scalar records into batches, order preserved."""
    raw: List[ProbeRecordBatch] = []
    scalars: List[ProbeRecord] = []
    for item in store:
        if isinstance(item, ProbeRecordBatch):
            if scalars:
                raw.append(ProbeRecordBatch.from_records(scalars))
                scalars = []
            raw.append(item)
        else:
            scalars.append(item)
    if scalars:
        raw.append(ProbeRecordBatch.from_records(scalars))
    return raw


__all__ = ["ProbeRecord", "ProbeRecordBatch", "ProbeStats", "CoreProbe"]
