"""Passive probes on the Gn and S5/S8 interfaces.

A :class:`CoreProbe` reproduces the measurement apparatus of §2:

- it inspects **GTP-C** to maintain the tunnel state table — for each
  TEID, the subscriber (hashed identifier) and the current ULI, i.e. the
  commune of the last reporting cell;
- it inspects **GTP-U** to account per-flow traffic, joining each record
  with the tunnel state to geo-reference it;
- it emits :class:`ProbeRecord` objects, the raw input of the dataset
  pipeline (DPI classification and commune-level aggregation follow
  downstream).

The 3G (Gn) and 4G (S5/S8) gateways being co-located, one probe object
observes both planes of both technologies — exactly the deployment
convenience the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.geo.coverage import Technology
from repro.network.gtp import (
    FlowDescriptor,
    GtpcMessage,
    GtpuPacket,
    UserLocationInformation,
)
from repro.network.session import SessionManager


@dataclass(frozen=True)
class ProbeRecord:
    """One geo-referenced, DPI-ready flow accounting record."""

    timestamp_s: float
    imsi_hash: int
    commune_id: int
    technology: Technology
    flow: FlowDescriptor
    dl_bytes: float
    ul_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.dl_bytes + self.ul_bytes


@dataclass
class _TunnelState:
    """Probe-side state for one observed tunnel."""

    imsi_hash: int
    uli: UserLocationInformation


@dataclass
class ProbeStats:
    """Probe health counters, exposed for pipeline validation."""

    control_messages: int = 0
    user_packets: int = 0
    orphan_packets: int = 0  # GTP-U with no known tunnel (lost GTP-C)
    records: int = 0


class CoreProbe:
    """The passive probe: correlates GTP-C and GTP-U into probe records."""

    def __init__(self, control_loss_rate: float = 0.0, seed: Optional[int] = None):
        """``control_loss_rate`` drops a fraction of GTP-C messages, to
        model imperfect capture; orphaned user-plane traffic is counted
        but produces no record (as in the real pipeline, where it simply
        cannot be geo-referenced)."""
        if not 0 <= control_loss_rate < 1:
            raise ValueError(
                f"control_loss_rate must be in [0, 1), got {control_loss_rate}"
            )
        self._tunnels: Dict[int, _TunnelState] = {}
        self._records: List[ProbeRecord] = []
        self._loss_rate = control_loss_rate
        self._rng = np.random.default_rng(seed)
        self.stats = ProbeStats()

    def attach_to(self, sessions: SessionManager) -> "CoreProbe":
        """Tap both planes of a session manager; returns self for chaining."""
        sessions.add_control_listener(self.on_control)
        sessions.add_user_plane_listener(self.on_user_plane)
        return self

    def on_control(self, message: GtpcMessage) -> None:
        """GTP-C inspection: maintain the TEID -> (user, ULI) table."""
        self.stats.control_messages += 1
        if self._loss_rate and self._rng.random() < self._loss_rate:
            return
        if message.message_type.deletes_tunnel:
            self._tunnels.pop(message.teid, None)
            return
        if message.uli is None:
            return
        state = self._tunnels.get(message.teid)
        if state is None:
            self._tunnels[message.teid] = _TunnelState(
                imsi_hash=message.imsi_hash, uli=message.uli
            )
        else:
            state.uli = message.uli

    def on_user_plane(self, packet: GtpuPacket) -> None:
        """GTP-U inspection: join with tunnel state, emit a record."""
        self.stats.user_packets += 1
        state = self._tunnels.get(packet.teid)
        if state is None:
            self.stats.orphan_packets += 1
            return
        self._records.append(
            ProbeRecord(
                timestamp_s=packet.timestamp_s,
                imsi_hash=state.imsi_hash,
                commune_id=state.uli.cell_commune_id,
                technology=state.uli.technology,
                flow=packet.flow,
                dl_bytes=packet.dl_bytes,
                ul_bytes=packet.ul_bytes,
            )
        )
        self.stats.records += 1

    def drain(self) -> List[ProbeRecord]:
        """Return and clear the accumulated records."""
        records, self._records = self._records, []
        return records

    @property
    def n_tracked_tunnels(self) -> int:
        return len(self._tunnels)


__all__ = ["ProbeRecord", "ProbeStats", "CoreProbe"]
