"""3G/4G mobile network simulator.

The paper's dataset is produced by passive probes on the Gn and S5/S8
interfaces of a 3G/4G packet core (Fig. 1): the probes inspect GTP-C to
geo-reference users (via the User Location Information carried in PDP
Contexts and EPS Bearers) and GTP-U to account per-flow traffic, which
DPI then maps to services.  This package implements that whole substrate:

- :mod:`repro.network.elements` — RAN and core network elements
  (NodeB/RNC/SGSN/GGSN on the 3G side, eNodeB/MME/S-GW/P-GW on 4G);
- :mod:`repro.network.topology` — deployment of the elements over a
  :class:`~repro.geo.country.Country`;
- :mod:`repro.network.gtp` — GTP-C/GTP-U message structures, TEIDs, ULI;
- :mod:`repro.network.session` — PDP context / EPS bearer lifecycle and
  IP flow descriptors;
- :mod:`repro.network.handover` — routing/tracking-area updates that
  refresh the ULI when users move;
- :mod:`repro.network.probes` — the passive probes emitting the records
  the dataset pipeline consumes.
"""

from repro.network.elements import (
    BaseStation,
    CoreNode,
    CoreNodeRole,
    RoutingArea,
)
from repro.network.gtp import (
    FlowDescriptor,
    GtpcMessage,
    GtpcMessageType,
    GtpuPacket,
    UserLocationInformation,
)
from repro.network.handover import HandoverManager
from repro.network.probes import CoreProbe, ProbeRecord
from repro.network.session import BearerState, SessionManager, UserSession
from repro.network.topology import NetworkTopology, build_topology

__all__ = [
    "BaseStation",
    "CoreNode",
    "CoreNodeRole",
    "RoutingArea",
    "NetworkTopology",
    "build_topology",
    "UserLocationInformation",
    "GtpcMessage",
    "GtpcMessageType",
    "GtpuPacket",
    "BearerState",
    "FlowDescriptor",
    "UserSession",
    "SessionManager",
    "HandoverManager",
    "CoreProbe",
    "ProbeRecord",
]
