"""Routing/Tracking-Area update logic.

The paper's localization is coarse precisely because the ULI refreshes
only on "possibly infrequent events, i.e. the establishment of a new IP
session, and handovers across access technologies or Routing/Tracking
Areas" (§2).  The :class:`HandoverManager` reproduces that behaviour: a
subscriber moving between communes triggers a ULI update *only* when the
move crosses an RA/TA boundary or changes the serving technology — moves
within an RA leave the session geo-referenced to the stale cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.session import SessionManager, UserSession
from repro.network.topology import NetworkTopology


@dataclass
class HandoverStats:
    """Counters for update behaviour, exposed for pipeline validation."""

    moves: int = 0
    ra_updates: int = 0
    rat_updates: int = 0

    @property
    def updates(self) -> int:
        return self.ra_updates + self.rat_updates

    @property
    def stale_moves(self) -> int:
        """Moves that left the ULI pointing at the previous location."""
        return self.moves - self.updates

    def merge(self, other: "HandoverStats") -> "HandoverStats":
        """Fold another manager's counters (e.g. a worker shard's) in."""
        self.moves += other.moves
        self.ra_updates += other.ra_updates
        self.rat_updates += other.rat_updates
        return self


class HandoverManager:
    """Decides whether a commune change refreshes the session's ULI."""

    def __init__(self, topology: NetworkTopology, sessions: SessionManager):
        self._topology = topology
        self._sessions = sessions
        self.stats = HandoverStats()

    def move(
        self,
        session: UserSession,
        new_commune_id: int,
        wants_4g: bool,
        timestamp_s: float,
    ) -> UserSession:
        """Register a move; update the ULI only when the standard says so.

        Returns the (possibly unchanged) session.  When no update fires,
        the session keeps its previous ULI — subsequent traffic is
        geo-referenced to the stale commune, reproducing the paper's
        median ~3 km localization error at the commune scale.
        """
        self.stats.moves += 1
        new_ra = self._topology.routing_area_of(new_commune_id)
        new_tech = self._topology.available_technology(new_commune_id, wants_4g)

        crosses_ra = new_ra != session.uli.routing_area_id
        changes_rat = new_tech is not session.technology
        if not crosses_ra and not changes_rat:
            return session

        if changes_rat:
            self.stats.rat_updates += 1
        else:
            self.stats.ra_updates += 1
        return self._sessions.update_location(
            session, new_commune_id, wants_4g, timestamp_s
        )


__all__ = ["HandoverStats", "HandoverManager"]
