"""ULI localization-error auditing.

The paper justifies its commune-level tessellation with prior work
showing "the median error of ULI is around 3 km" (§2): the ULI points
at a serving cell, users are somewhere in that cell's footprint, and
the ULI can be stale after intra-RA moves.  The
:class:`LocalizationAuditor` measures exactly that error inside the
simulator: for each accounted flow it compares the subscriber's true
position (a point in the commune they actually occupy) against the
position of the cell the ULI names, and reports the error distribution
— the quantitative argument for aggregating at commune scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.network.gtp import UserLocationInformation
from repro.network.topology import NetworkTopology


@dataclass(frozen=True)
class LocalizationSample:
    """One flow's localization outcome."""

    true_commune_id: int
    uli_commune_id: int
    error_km: float

    @property
    def commune_correct(self) -> bool:
        return self.true_commune_id == self.uli_commune_id


@dataclass
class LocalizationAuditor:
    """Collects localization samples during session-level generation."""

    topology: NetworkTopology
    seed: SeedLike = None
    samples: List[LocalizationSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = as_generator(self.seed)
        self._grid = self.topology.country.grid

    def record(
        self, true_commune_id: int, uli: UserLocationInformation
    ) -> LocalizationSample:
        """Record one flow: true commune vs the cell the ULI names."""
        commune = self._grid[true_commune_id]
        # The subscriber's true position: uniform within the commune's
        # grid cell (the simulator does not track sub-commune movement).
        half = self._grid.cell_km / 2.0
        true_x = commune.x_km + float(self._rng.uniform(-half, half))
        true_y = commune.y_km + float(self._rng.uniform(-half, half))
        cell = self.topology.base_stations[uli.cell_id]
        error = float(np.hypot(true_x - cell.x_km, true_y - cell.y_km))
        sample = LocalizationSample(
            true_commune_id=true_commune_id,
            uli_commune_id=uli.cell_commune_id,
            error_km=error,
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def errors_km(self) -> np.ndarray:
        return np.array([s.error_km for s in self.samples])

    def median_error_km(self) -> float:
        """The paper's headline statistic (~3 km in the real network)."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return float(np.median(self.errors_km()))

    def commune_accuracy(self) -> float:
        """Fraction of flows whose ULI names the correct commune."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return float(np.mean([s.commune_correct for s in self.samples]))

    def summary(self) -> Dict[str, float]:
        errors = self.errors_km()
        return {
            "samples": float(len(self.samples)),
            "median_error_km": float(np.median(errors)),
            "p90_error_km": float(np.percentile(errors, 90)),
            "commune_accuracy": self.commune_accuracy(),
        }


__all__ = ["LocalizationSample", "LocalizationAuditor"]
