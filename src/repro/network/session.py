"""PDP context / EPS bearer lifecycle and IP flows.

A :class:`UserSession` models one data session: on 3G a PDP context, on
4G an EPS bearer (the differences that matter to the probes — message
names, interface, ULI format — are captured; the rest is deliberately
uniform).  The :class:`SessionManager` drives lifecycles and publishes
the resulting control- and user-plane events to registered listeners,
which is exactly how the passive probes observe the network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from repro import obs
from repro.geo.coverage import Technology
from repro.network.gtp import (
    TECH_3G,
    TECH_BY_CODE,
    FlowDescriptor,
    GtpcCreateBulk,
    GtpcDeleteBulk,
    GtpcMessage,
    GtpcMessageType,
    GtpuBulk,
    GtpuPacket,
    TeidAllocator,
    UserLocationInformation,
)
from repro.network.topology import NetworkTopology


class BearerState(enum.Enum):
    """Lifecycle states of a PDP context / EPS bearer."""

    IDLE = "idle"
    ACTIVE = "active"
    RELEASED = "released"


@dataclass
class UserSession:
    """One active data session of one subscriber."""

    imsi_hash: int
    teid: int
    technology: Technology
    uli: UserLocationInformation
    state: BearerState = BearerState.ACTIVE
    established_at_s: float = 0.0

    @property
    def is_3g(self) -> bool:
        return self.technology is Technology.G3


ControlListener = Callable[[GtpcMessage], None]
UserPlaneListener = Callable[[GtpuPacket], None]


class SessionManager:
    """Creates, relocates and tears down sessions, publishing GTP events.

    The manager plays the role of the whole signalling chain
    (SGSN↔GGSN / MME↔S-GW↔P-GW): callers only say *what happens to the
    subscriber* (attach, move, transfer traffic, detach) and the manager
    emits the control- and user-plane messages a probe on Gn / S5-S8
    would see.
    """

    def __init__(self, topology: NetworkTopology, rng: np.random.Generator):
        self._topology = topology
        self._rng = rng
        self._teids = TeidAllocator()
        self._control_listeners: List[ControlListener] = []
        self._user_listeners: List[UserPlaneListener] = []
        self._bulk_control_listeners: List[Callable] = []
        self._bulk_user_listeners: List[Callable] = []
        self.active_sessions: dict = {}

    def add_control_listener(self, listener: ControlListener) -> None:
        """Subscribe to GTP-C messages (what a probe taps)."""
        self._control_listeners.append(listener)

    def add_user_plane_listener(self, listener: UserPlaneListener) -> None:
        """Subscribe to GTP-U accounting records."""
        self._user_listeners.append(listener)

    def add_bulk_control_listener(self, listener: Callable) -> None:
        """Subscribe to columnar GTP-C batches (the probe fast path).

        Bulk-aware listeners receive :class:`GtpcCreateBulk` /
        :class:`GtpcDeleteBulk` objects; per-message listeners still get
        the equivalent scalar messages, so the two listener styles can
        coexist on one manager.
        """
        self._bulk_control_listeners.append(listener)

    def add_bulk_user_plane_listener(self, listener: Callable) -> None:
        """Subscribe to columnar GTP-U batches (the probe fast path)."""
        self._bulk_user_listeners.append(listener)

    def _emit_control(self, message: GtpcMessage) -> None:
        for listener in self._control_listeners:
            listener(message)

    def _emit_user(self, packet: GtpuPacket) -> None:
        for listener in self._user_listeners:
            listener(packet)

    def _uli_for(self, commune_id: int, technology: Technology) -> UserLocationInformation:
        station = self._topology.serving_station(commune_id, technology, self._rng)
        return UserLocationInformation(
            technology=station.technology,
            routing_area_id=station.routing_area_id,
            cell_id=station.bs_id,
            cell_commune_id=station.commune_id,
        )

    def attach(
        self,
        imsi_hash: int,
        commune_id: int,
        wants_4g: bool,
        timestamp_s: float,
    ) -> UserSession:
        """Establish a data session for a subscriber camped in a commune."""
        technology = self._topology.available_technology(commune_id, wants_4g)
        uli = self._uli_for(commune_id, technology)
        teid = self._teids.allocate()
        session = UserSession(
            imsi_hash=imsi_hash,
            teid=teid,
            technology=uli.technology,
            uli=uli,
            established_at_s=timestamp_s,
        )
        request = (
            GtpcMessageType.CREATE_PDP_CONTEXT_REQUEST
            if session.is_3g
            else GtpcMessageType.CREATE_SESSION_REQUEST
        )
        response = (
            GtpcMessageType.CREATE_PDP_CONTEXT_RESPONSE
            if session.is_3g
            else GtpcMessageType.CREATE_SESSION_RESPONSE
        )
        self._emit_control(
            GtpcMessage(
                message_type=request,
                timestamp_s=timestamp_s,
                imsi_hash=imsi_hash,
                teid=teid,
                uli=uli,
            )
        )
        self._emit_control(
            GtpcMessage(
                message_type=response,
                timestamp_s=timestamp_s,
                imsi_hash=imsi_hash,
                teid=teid,
                uli=uli,
            )
        )
        obs.add("gtp.control_messages", 2)
        self.active_sessions[teid] = session
        return session

    def update_location(
        self,
        session: UserSession,
        commune_id: int,
        wants_4g: bool,
        timestamp_s: float,
    ) -> UserSession:
        """Refresh a session's ULI after a RA/TA or inter-RAT change.

        The caller (the :class:`~repro.network.handover.HandoverManager`)
        decides *whether* the move warrants an update; this method emits
        the corresponding UpdatePDPContext / ModifyBearer message.
        """
        if session.state is not BearerState.ACTIVE:
            raise ValueError("cannot relocate a non-active session")
        technology = self._topology.available_technology(commune_id, wants_4g)
        uli = self._uli_for(commune_id, technology)
        updated = replace(session, uli=uli, technology=uli.technology)
        message_type = (
            GtpcMessageType.UPDATE_PDP_CONTEXT_REQUEST
            if updated.is_3g
            else GtpcMessageType.MODIFY_BEARER_REQUEST
        )
        self._emit_control(
            GtpcMessage(
                message_type=message_type,
                timestamp_s=timestamp_s,
                imsi_hash=session.imsi_hash,
                teid=session.teid,
                uli=uli,
            )
        )
        obs.add("gtp.control_messages")
        self.active_sessions[session.teid] = updated
        return updated

    def report_flow(
        self,
        session: UserSession,
        flow: FlowDescriptor,
        dl_bytes: float,
        ul_bytes: float,
        timestamp_s: float,
    ) -> GtpuPacket:
        """Account user-plane traffic for a flow inside a session."""
        if session.state is not BearerState.ACTIVE:
            raise ValueError("cannot carry traffic on a non-active session")
        packet = GtpuPacket(
            timestamp_s=timestamp_s,
            teid=session.teid,
            flow=flow,
            dl_bytes=dl_bytes,
            ul_bytes=ul_bytes,
        )
        self._emit_user(packet)
        obs.add("gtp.user_flow_records")
        return packet

    def detach(self, session: UserSession, timestamp_s: float) -> UserSession:
        """Tear down a session."""
        message_type = (
            GtpcMessageType.DELETE_PDP_CONTEXT_REQUEST
            if session.is_3g
            else GtpcMessageType.DELETE_SESSION_REQUEST
        )
        self._emit_control(
            GtpcMessage(
                message_type=message_type,
                timestamp_s=timestamp_s,
                imsi_hash=session.imsi_hash,
                teid=session.teid,
            )
        )
        obs.add("gtp.control_messages")
        released = replace(session, state=BearerState.RELEASED)
        self.active_sessions.pop(session.teid, None)
        return released

    # ------------------------------------------------------------------
    # columnar fast path
    # ------------------------------------------------------------------
    #
    # The bulk methods drive whole batches of one subscriber's sessions
    # through the same lifecycle as attach/report_flow/detach, emitting
    # columnar Gtp*Bulk events instead of per-message objects.  Bulk
    # sessions are not entered into ``active_sessions`` — their lifetime
    # is confined to the caller's batch, and the per-session bookkeeping
    # is exactly the overhead this path removes.  When only legacy
    # scalar listeners are registered the equivalent GtpcMessage /
    # GtpuPacket objects are materialized for them, so taps written
    # against the scalar API keep seeing every event; once any
    # bulk-aware listener is present, scalar listeners are assumed to
    # be bulk-aware companions (e.g. a probe tapping both planes) and
    # bulk events are not duplicated to them.

    def attach_bulk(
        self,
        imsi_hash,
        commune_ids: np.ndarray,
        wants_4g,
        timestamps_s: np.ndarray,
        subscribers: int = 1,
    ) -> tuple:
        """Establish a batch of sessions; returns ``(teids, tech_codes)``.

        ``imsi_hash`` and ``wants_4g`` are scalars for a one-subscriber
        batch (the legacy shape) or per-session arrays when the chunked
        emission path packs many subscribers into one batch;
        ``subscribers`` then says how many, and lands as a summed
        attribute on the per-chunk ``gtp.signalling`` span (one span per
        chunk, not one per subscriber).
        """
        with obs.span("gtp.signalling", attrs={"subscribers": subscribers}):
            n = len(commune_ids)
            tech_codes = self._topology.available_technology_codes(
                commune_ids, wants_4g
            )
            bs_ids, tech_codes, ra_ids, cell_communes = (
                self._topology.serving_station_codes(
                    commune_ids, tech_codes, self._rng
                )
            )
            teids = self._teids.allocate_many(n)
            imsi_hashes = (
                np.full(n, imsi_hash, dtype=np.int64)
                if np.ndim(imsi_hash) == 0
                else np.asarray(imsi_hash, dtype=np.int64)
            )
            bulk = GtpcCreateBulk(
                timestamps_s=np.asarray(timestamps_s, dtype=np.float64),
                imsi_hashes=imsi_hashes,
                teids=teids,
                tech_codes=tech_codes,
                routing_area_ids=ra_ids,
                cell_ids=bs_ids,
                cell_commune_ids=cell_communes,
            )
            for listener in self._bulk_control_listeners:
                listener(bulk)
            if self._control_listeners and not self._bulk_control_listeners:
                self._materialize_creates(bulk)
            # One bulk entry stands for the request/response pair.
            obs.add("gtp.control_messages", 2 * n)
        return teids, tech_codes

    def report_flows_bulk(
        self,
        session_teids: np.ndarray,
        flows_per_session: np.ndarray,
        timestamps_s: np.ndarray,
        dl_bytes: np.ndarray,
        ul_bytes: np.ndarray,
        flow_ids: List[int],
        snis: List[Optional[str]],
        hosts: List[Optional[str]],
        payload_hints: List[Optional[str]],
        server_ports: List[int],
        protocols: List[str],
    ) -> GtpuBulk:
        """Account a session-grouped batch of user-plane flow records."""
        with obs.span("gtp.user_plane"):
            bulk = GtpuBulk(
                session_teids=session_teids,
                flows_per_session=flows_per_session,
                timestamps_s=timestamps_s,
                dl_bytes=dl_bytes,
                ul_bytes=ul_bytes,
                flow_ids=flow_ids,
                snis=snis,
                hosts=hosts,
                payload_hints=payload_hints,
                server_ports=server_ports,
                protocols=protocols,
            )
            for listener in self._bulk_user_listeners:
                listener(bulk)
            if self._user_listeners and not self._bulk_user_listeners:
                self._materialize_flows(bulk)
            obs.add("gtp.user_flow_records", len(bulk))
        return bulk

    def detach_bulk(
        self,
        imsi_hash,
        teids: np.ndarray,
        tech_codes: np.ndarray,
        timestamps_s: np.ndarray,
    ) -> None:
        """Tear down a batch of sessions (scalar or per-session imsi)."""
        with obs.span("gtp.signalling"):
            imsi_hashes = (
                np.full(len(teids), imsi_hash, dtype=np.int64)
                if np.ndim(imsi_hash) == 0
                else np.asarray(imsi_hash, dtype=np.int64)
            )
            bulk = GtpcDeleteBulk(
                timestamps_s=np.asarray(timestamps_s, dtype=np.float64),
                imsi_hashes=imsi_hashes,
                teids=teids,
                tech_codes=tech_codes,
            )
            for listener in self._bulk_control_listeners:
                listener(bulk)
            if self._control_listeners and not self._bulk_control_listeners:
                self._materialize_deletes(bulk)
            obs.add("gtp.control_messages", len(bulk))

    def _materialize_creates(self, bulk: GtpcCreateBulk) -> None:
        for i in range(len(bulk)):
            technology = TECH_BY_CODE[int(bulk.tech_codes[i])]
            uli = UserLocationInformation(
                technology=technology,
                routing_area_id=int(bulk.routing_area_ids[i]),
                cell_id=int(bulk.cell_ids[i]),
                cell_commune_id=int(bulk.cell_commune_ids[i]),
            )
            is_3g = int(bulk.tech_codes[i]) == TECH_3G
            for message_type in (
                (
                    GtpcMessageType.CREATE_PDP_CONTEXT_REQUEST
                    if is_3g
                    else GtpcMessageType.CREATE_SESSION_REQUEST
                ),
                (
                    GtpcMessageType.CREATE_PDP_CONTEXT_RESPONSE
                    if is_3g
                    else GtpcMessageType.CREATE_SESSION_RESPONSE
                ),
            ):
                self._emit_control(
                    GtpcMessage(
                        message_type=message_type,
                        timestamp_s=float(bulk.timestamps_s[i]),
                        imsi_hash=int(bulk.imsi_hashes[i]),
                        teid=int(bulk.teids[i]),
                        uli=uli,
                    )
                )

    def _materialize_flows(self, bulk: GtpuBulk) -> None:
        teids = np.repeat(bulk.session_teids, bulk.flows_per_session)
        for i in range(len(bulk)):
            flow = FlowDescriptor(
                flow_id=bulk.flow_ids[i],
                sni=bulk.snis[i],
                host=bulk.hosts[i],
                server_port=bulk.server_ports[i],
                protocol=bulk.protocols[i],
                payload_hint=bulk.payload_hints[i],
            )
            self._emit_user(
                GtpuPacket(
                    timestamp_s=float(bulk.timestamps_s[i]),
                    teid=int(teids[i]),
                    flow=flow,
                    dl_bytes=float(bulk.dl_bytes[i]),
                    ul_bytes=float(bulk.ul_bytes[i]),
                )
            )

    def _materialize_deletes(self, bulk: GtpcDeleteBulk) -> None:
        for i in range(len(bulk)):
            is_3g = int(bulk.tech_codes[i]) == TECH_3G
            self._emit_control(
                GtpcMessage(
                    message_type=(
                        GtpcMessageType.DELETE_PDP_CONTEXT_REQUEST
                        if is_3g
                        else GtpcMessageType.DELETE_SESSION_REQUEST
                    ),
                    timestamp_s=float(bulk.timestamps_s[i]),
                    imsi_hash=int(bulk.imsi_hashes[i]),
                    teid=int(bulk.teids[i]),
                )
            )


__all__ = [
    "BearerState",
    "FlowDescriptor",
    "UserSession",
    "SessionManager",
]
