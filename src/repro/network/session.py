"""PDP context / EPS bearer lifecycle and IP flows.

A :class:`UserSession` models one data session: on 3G a PDP context, on
4G an EPS bearer (the differences that matter to the probes — message
names, interface, ULI format — are captured; the rest is deliberately
uniform).  The :class:`SessionManager` drives lifecycles and publishes
the resulting control- and user-plane events to registered listeners,
which is exactly how the passive probes observe the network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, List

import numpy as np

from repro.geo.coverage import Technology
from repro.network.gtp import (
    FlowDescriptor,
    GtpcMessage,
    GtpcMessageType,
    GtpuPacket,
    TeidAllocator,
    UserLocationInformation,
)
from repro.network.topology import NetworkTopology


class BearerState(enum.Enum):
    """Lifecycle states of a PDP context / EPS bearer."""

    IDLE = "idle"
    ACTIVE = "active"
    RELEASED = "released"


@dataclass
class UserSession:
    """One active data session of one subscriber."""

    imsi_hash: int
    teid: int
    technology: Technology
    uli: UserLocationInformation
    state: BearerState = BearerState.ACTIVE
    established_at_s: float = 0.0

    @property
    def is_3g(self) -> bool:
        return self.technology is Technology.G3


ControlListener = Callable[[GtpcMessage], None]
UserPlaneListener = Callable[[GtpuPacket], None]


class SessionManager:
    """Creates, relocates and tears down sessions, publishing GTP events.

    The manager plays the role of the whole signalling chain
    (SGSN↔GGSN / MME↔S-GW↔P-GW): callers only say *what happens to the
    subscriber* (attach, move, transfer traffic, detach) and the manager
    emits the control- and user-plane messages a probe on Gn / S5-S8
    would see.
    """

    def __init__(self, topology: NetworkTopology, rng: np.random.Generator):
        self._topology = topology
        self._rng = rng
        self._teids = TeidAllocator()
        self._control_listeners: List[ControlListener] = []
        self._user_listeners: List[UserPlaneListener] = []
        self.active_sessions: dict = {}

    def add_control_listener(self, listener: ControlListener) -> None:
        """Subscribe to GTP-C messages (what a probe taps)."""
        self._control_listeners.append(listener)

    def add_user_plane_listener(self, listener: UserPlaneListener) -> None:
        """Subscribe to GTP-U accounting records."""
        self._user_listeners.append(listener)

    def _emit_control(self, message: GtpcMessage) -> None:
        for listener in self._control_listeners:
            listener(message)

    def _emit_user(self, packet: GtpuPacket) -> None:
        for listener in self._user_listeners:
            listener(packet)

    def _uli_for(self, commune_id: int, technology: Technology) -> UserLocationInformation:
        station = self._topology.serving_station(commune_id, technology, self._rng)
        return UserLocationInformation(
            technology=station.technology,
            routing_area_id=station.routing_area_id,
            cell_id=station.bs_id,
            cell_commune_id=station.commune_id,
        )

    def attach(
        self,
        imsi_hash: int,
        commune_id: int,
        wants_4g: bool,
        timestamp_s: float,
    ) -> UserSession:
        """Establish a data session for a subscriber camped in a commune."""
        technology = self._topology.available_technology(commune_id, wants_4g)
        uli = self._uli_for(commune_id, technology)
        teid = self._teids.allocate()
        session = UserSession(
            imsi_hash=imsi_hash,
            teid=teid,
            technology=uli.technology,
            uli=uli,
            established_at_s=timestamp_s,
        )
        request = (
            GtpcMessageType.CREATE_PDP_CONTEXT_REQUEST
            if session.is_3g
            else GtpcMessageType.CREATE_SESSION_REQUEST
        )
        response = (
            GtpcMessageType.CREATE_PDP_CONTEXT_RESPONSE
            if session.is_3g
            else GtpcMessageType.CREATE_SESSION_RESPONSE
        )
        self._emit_control(
            GtpcMessage(
                message_type=request,
                timestamp_s=timestamp_s,
                imsi_hash=imsi_hash,
                teid=teid,
                uli=uli,
            )
        )
        self._emit_control(
            GtpcMessage(
                message_type=response,
                timestamp_s=timestamp_s,
                imsi_hash=imsi_hash,
                teid=teid,
                uli=uli,
            )
        )
        self.active_sessions[teid] = session
        return session

    def update_location(
        self,
        session: UserSession,
        commune_id: int,
        wants_4g: bool,
        timestamp_s: float,
    ) -> UserSession:
        """Refresh a session's ULI after a RA/TA or inter-RAT change.

        The caller (the :class:`~repro.network.handover.HandoverManager`)
        decides *whether* the move warrants an update; this method emits
        the corresponding UpdatePDPContext / ModifyBearer message.
        """
        if session.state is not BearerState.ACTIVE:
            raise ValueError("cannot relocate a non-active session")
        technology = self._topology.available_technology(commune_id, wants_4g)
        uli = self._uli_for(commune_id, technology)
        updated = replace(session, uli=uli, technology=uli.technology)
        message_type = (
            GtpcMessageType.UPDATE_PDP_CONTEXT_REQUEST
            if updated.is_3g
            else GtpcMessageType.MODIFY_BEARER_REQUEST
        )
        self._emit_control(
            GtpcMessage(
                message_type=message_type,
                timestamp_s=timestamp_s,
                imsi_hash=session.imsi_hash,
                teid=session.teid,
                uli=uli,
            )
        )
        self.active_sessions[session.teid] = updated
        return updated

    def report_flow(
        self,
        session: UserSession,
        flow: FlowDescriptor,
        dl_bytes: float,
        ul_bytes: float,
        timestamp_s: float,
    ) -> GtpuPacket:
        """Account user-plane traffic for a flow inside a session."""
        if session.state is not BearerState.ACTIVE:
            raise ValueError("cannot carry traffic on a non-active session")
        packet = GtpuPacket(
            timestamp_s=timestamp_s,
            teid=session.teid,
            flow=flow,
            dl_bytes=dl_bytes,
            ul_bytes=ul_bytes,
        )
        self._emit_user(packet)
        return packet

    def detach(self, session: UserSession, timestamp_s: float) -> UserSession:
        """Tear down a session."""
        message_type = (
            GtpcMessageType.DELETE_PDP_CONTEXT_REQUEST
            if session.is_3g
            else GtpcMessageType.DELETE_SESSION_REQUEST
        )
        self._emit_control(
            GtpcMessage(
                message_type=message_type,
                timestamp_s=timestamp_s,
                imsi_hash=session.imsi_hash,
                teid=session.teid,
            )
        )
        released = replace(session, state=BearerState.RELEASED)
        self.active_sessions.pop(session.teid, None)
        return released


__all__ = [
    "BearerState",
    "FlowDescriptor",
    "UserSession",
    "SessionManager",
]
