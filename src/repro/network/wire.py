"""GTP wire-format encoding and decoding.

The simulator's probes exchange structured objects; real probes parse
bytes.  This module implements the byte-level codec for the subset of
GTP the pipeline models, so traces can be exported in (and re-ingested
from) a wire-faithful form:

- **GTPv1** header (3GPP TS 29.060 §6): version/PT/E/S/PN flags, message
  type, length, TEID, optional sequence number — used by GTP-U and by
  the 3G control plane (GTPv1-C);
- **GTPv2** header (3GPP TS 29.274 §5.1): version/P/T flags, message
  type, length, TEID, 3-byte sequence — the 4G control plane;
- the **ULI information element** in a simplified TLV form carrying the
  fields the pipeline uses (technology, area id, cell id).

The codec is strict on decode: truncated buffers, bad versions and
length mismatches raise :class:`WireFormatError` rather than returning
partial objects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geo.coverage import Technology
from repro.network.gtp import UserLocationInformation


class WireFormatError(ValueError):
    """Raised when a buffer does not parse as the expected structure."""


# ----------------------------------------------------------------------
# GTPv1 (TS 29.060): used on Gn for 3G control and for GTP-U
# ----------------------------------------------------------------------

#: GTPv1 message types the pipeline uses (TS 29.060 table 1).
GTPV1_MESSAGE_TYPES = {
    "EchoRequest": 1,
    "CreatePDPContextRequest": 16,
    "CreatePDPContextResponse": 17,
    "UpdatePDPContextRequest": 18,
    "DeletePDPContextRequest": 20,
    "GPDU": 255,
}

_GTPV1_FIXED = struct.Struct("!BBHI")  # flags, type, length, teid


@dataclass(frozen=True)
class Gtpv1Header:
    """The GTPv1 fixed header plus the optional sequence number."""

    message_type: int
    teid: int
    payload_length: int
    sequence: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.message_type <= 255:
            raise ValueError(f"invalid message type {self.message_type}")
        if not 0 <= self.teid < 2**32:
            raise ValueError(f"invalid TEID {self.teid}")
        if self.payload_length < 0:
            raise ValueError("payload_length must be >= 0")
        if self.sequence is not None and not 0 <= self.sequence < 2**16:
            raise ValueError(f"invalid sequence {self.sequence}")

    def encode(self) -> bytes:
        """Serialize to wire bytes."""
        has_seq = self.sequence is not None
        # version=1 (bits 7-5), PT=1 (bit 4), E=0, S=seq flag, PN=0.
        flags = (1 << 5) | (1 << 4) | ((1 << 1) if has_seq else 0)
        length = self.payload_length + (4 if has_seq else 0)
        header = _GTPV1_FIXED.pack(flags, self.message_type, length, self.teid)
        if has_seq:
            # Sequence (2 bytes) + N-PDU number + next-ext type, zeroed.
            header += struct.pack("!HBB", self.sequence, 0, 0)
        return header

    @classmethod
    def decode(cls, buffer: bytes) -> Tuple["Gtpv1Header", int]:
        """Parse from wire bytes; returns (header, header_size)."""
        if len(buffer) < _GTPV1_FIXED.size:
            raise WireFormatError("buffer shorter than a GTPv1 header")
        flags, message_type, length, teid = _GTPV1_FIXED.unpack_from(buffer)
        version = flags >> 5
        if version != 1:
            raise WireFormatError(f"not GTPv1 (version {version})")
        if not flags & (1 << 4):
            raise WireFormatError("GTP' (PT=0) is not supported")
        has_opt = bool(flags & 0b111)  # E, S or PN present
        header_size = _GTPV1_FIXED.size + (4 if has_opt else 0)
        sequence = None
        if has_opt:
            if len(buffer) < header_size:
                raise WireFormatError("truncated GTPv1 optional fields")
            if flags & (1 << 1):  # S flag
                sequence = struct.unpack_from("!H", buffer, _GTPV1_FIXED.size)[0]
        payload_length = length - (4 if has_opt else 0)
        if payload_length < 0:
            raise WireFormatError("GTPv1 length field inconsistent")
        return (
            cls(
                message_type=message_type,
                teid=teid,
                payload_length=payload_length,
                sequence=sequence,
            ),
            header_size,
        )


# ----------------------------------------------------------------------
# GTPv2 (TS 29.274): the 4G control plane on S5/S8
# ----------------------------------------------------------------------

#: GTPv2 message types the pipeline uses (TS 29.274 table 6.1-1).
GTPV2_MESSAGE_TYPES = {
    "EchoRequest": 1,
    "CreateSessionRequest": 32,
    "CreateSessionResponse": 33,
    "ModifyBearerRequest": 34,
    "DeleteSessionRequest": 36,
}

_GTPV2_FIXED = struct.Struct("!BBH")  # flags, type, length


@dataclass(frozen=True)
class Gtpv2Header:
    """The GTPv2 header with TEID present (T=1)."""

    message_type: int
    teid: int
    payload_length: int
    sequence: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.message_type <= 255:
            raise ValueError(f"invalid message type {self.message_type}")
        if not 0 <= self.teid < 2**32:
            raise ValueError(f"invalid TEID {self.teid}")
        if self.payload_length < 0:
            raise ValueError("payload_length must be >= 0")
        if not 0 <= self.sequence < 2**24:
            raise ValueError(f"invalid sequence {self.sequence}")

    def encode(self) -> bytes:
        """Serialize to wire bytes."""
        flags = (2 << 5) | (1 << 3)  # version=2, T=1
        # Length counts everything after the first 4 octets.
        length = 8 + self.payload_length
        return (
            _GTPV2_FIXED.pack(flags, self.message_type, length)
            + struct.pack("!I", self.teid)
            + self.sequence.to_bytes(3, "big")
            + b"\x00"  # spare
        )

    @classmethod
    def decode(cls, buffer: bytes) -> Tuple["Gtpv2Header", int]:
        """Parse from wire bytes; returns (header, header_size)."""
        if len(buffer) < 12:
            raise WireFormatError("buffer shorter than a GTPv2 header")
        flags, message_type, length = _GTPV2_FIXED.unpack_from(buffer)
        if flags >> 5 != 2:
            raise WireFormatError(f"not GTPv2 (version {flags >> 5})")
        if not flags & (1 << 3):
            raise WireFormatError("GTPv2 without TEID is not supported")
        teid = struct.unpack_from("!I", buffer, 4)[0]
        sequence = int.from_bytes(buffer[8:11], "big")
        payload_length = length - 8
        if payload_length < 0:
            raise WireFormatError("GTPv2 length field inconsistent")
        return (
            cls(
                message_type=message_type,
                teid=teid,
                payload_length=payload_length,
                sequence=sequence,
            ),
            12,
        )


# ----------------------------------------------------------------------
# ULI information element (simplified TLV)
# ----------------------------------------------------------------------

#: IE type code for ULI (the GTPv2 value; reused on both planes here).
ULI_IE_TYPE = 86

_ULI_BODY = struct.Struct("!BIII")  # technology, area, cell, commune


def encode_uli(uli: UserLocationInformation) -> bytes:
    """Serialize a ULI IE as type-length-value."""
    body = _ULI_BODY.pack(
        int(uli.technology),
        uli.routing_area_id,
        uli.cell_id,
        uli.cell_commune_id,
    )
    return struct.pack("!BH", ULI_IE_TYPE, len(body)) + body


def decode_uli(buffer: bytes) -> Tuple[UserLocationInformation, int]:
    """Parse a ULI IE; returns (uli, bytes_consumed)."""
    if len(buffer) < 3:
        raise WireFormatError("buffer shorter than an IE header")
    ie_type, length = struct.unpack_from("!BH", buffer)
    if ie_type != ULI_IE_TYPE:
        raise WireFormatError(f"not a ULI IE (type {ie_type})")
    if len(buffer) < 3 + length or length != _ULI_BODY.size:
        raise WireFormatError("truncated or malformed ULI IE")
    technology, area, cell, commune = _ULI_BODY.unpack_from(buffer, 3)
    try:
        tech = Technology(technology)
    except ValueError as exc:
        raise WireFormatError(f"unknown technology code {technology}") from exc
    return (
        UserLocationInformation(
            technology=tech,
            routing_area_id=area,
            cell_id=cell,
            cell_commune_id=commune,
        ),
        3 + length,
    )


# ----------------------------------------------------------------------
# Whole-message convenience: control message <-> bytes
# ----------------------------------------------------------------------

def encode_control_message(
    message_name: str,
    teid: int,
    uli: Optional[UserLocationInformation] = None,
    sequence: int = 0,
    version: Optional[int] = None,
) -> bytes:
    """Encode a named control message (with optional ULI payload).

    ``version`` disambiguates names that exist on both planes
    (EchoRequest); unambiguous names infer it.
    """
    payload = encode_uli(uli) if uli is not None else b""
    in_v1 = message_name in GTPV1_MESSAGE_TYPES
    in_v2 = message_name in GTPV2_MESSAGE_TYPES
    if not in_v1 and not in_v2:
        raise ValueError(f"unknown control message {message_name!r}")
    if version is None:
        if in_v1 and in_v2:
            raise ValueError(
                f"{message_name!r} exists in GTPv1 and GTPv2; pass version="
            )
        version = 1 if in_v1 else 2
    if version == 1 and in_v1:
        header = Gtpv1Header(
            message_type=GTPV1_MESSAGE_TYPES[message_name],
            teid=teid,
            payload_length=len(payload),
            sequence=sequence & 0xFFFF,
        )
        return header.encode() + payload
    if version == 2 and in_v2:
        header = Gtpv2Header(
            message_type=GTPV2_MESSAGE_TYPES[message_name],
            teid=teid,
            payload_length=len(payload),
            sequence=sequence & 0xFFFFFF,
        )
        return header.encode() + payload
    raise ValueError(
        f"{message_name!r} is not a GTPv{version} message"
    )


def decode_control_message(
    buffer: bytes,
) -> Tuple[int, int, Optional[UserLocationInformation]]:
    """Decode a control message; returns (version, teid, uli-or-None)."""
    if not buffer:
        raise WireFormatError("empty buffer")
    version = buffer[0] >> 5
    if version == 1:
        header, size = Gtpv1Header.decode(buffer)
    elif version == 2:
        header, size = Gtpv2Header.decode(buffer)
    else:
        raise WireFormatError(f"unknown GTP version {version}")
    payload = buffer[size : size + header.payload_length]
    uli = None
    if payload:
        uli, _ = decode_uli(payload)
    return version, header.teid, uli


__all__ = [
    "WireFormatError",
    "GTPV1_MESSAGE_TYPES",
    "GTPV2_MESSAGE_TYPES",
    "Gtpv1Header",
    "Gtpv2Header",
    "ULI_IE_TYPE",
    "encode_uli",
    "decode_uli",
    "encode_control_message",
    "decode_control_message",
]
