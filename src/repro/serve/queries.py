"""The query surface of the serving layer.

``repro-serve`` answers four query families over the commune × service
× time cube a built :class:`~repro.dataset.store.MobileTrafficDataset`
holds (``docs/serving.md``):

``point``
    Traffic volume of one head service in one commune during one
    hour of the measurement week.
``topk``
    The ``k`` head services with the largest weekly volume in one
    commune, descending, ties broken by catalog order.
``range``
    Total volume of one service over a half-open hour-of-week range,
    in one commune or nationally.
``similarity``
    The paper's pairwise Pearson r² (§5): between two services over
    their per-subscriber commune volumes (the Fig. 10 quantity), or
    between two communes over their per-subscriber service vectors.

A :class:`Query` is a frozen value object with a *canonical* JSON
encoding — sorted keys, fixed separators, ``None`` fields dropped — so
equal queries always serialize to identical bytes.  The canonical form
is the cache key, the CSV ``body_json`` field of scheduled workloads
(``repro.serve.workload``), and the wire format of the CLI; keeping it
byte-stable is what makes cached and uncached answers comparable and
harness schedules replayable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro._time import WEEK_HOURS

#: The closed set of query families (validated by :func:`query_from_dict`).
FAMILIES = ("point", "topk", "range", "similarity")

#: Traffic directions a query may address.
DIRECTIONS = ("dl", "ul")

#: Similarity query kinds: service-pair or commune-pair r².
SIMILARITY_KINDS = ("service", "commune")


class QueryError(ValueError):
    """A query that cannot be answered against the loaded dataset.

    Raised for malformed query objects (unknown family, missing or
    mistyped fields) and for valid shapes that reference entities the
    dataset does not have (unknown service name, commune index out of
    range).  The CLI maps it to the shared usage exit code (2)."""


@dataclass(frozen=True)
class CubeProfile:
    """The dimensions a query is validated against.

    A lightweight stand-in for the full dataset: the workload generator
    samples query parameters from it without holding tensors, and the
    engine validates queries against it before touching an index.
    """

    n_communes: int
    head_names: Tuple[str, ...]

    @classmethod
    def of(cls, dataset: Any) -> "CubeProfile":
        """Profile of a :class:`~repro.dataset.store.MobileTrafficDataset`."""
        return cls(
            n_communes=int(dataset.n_communes),
            head_names=tuple(dataset.head_names),
        )

    @property
    def n_head(self) -> int:
        return len(self.head_names)


@dataclass(frozen=True)
class Query:
    """One query against the cube; unused fields stay ``None``.

    Field semantics per family (``docs/serving.md`` carries the same
    table):

    - ``point``: ``commune``, ``service``, ``hour`` (hour-of-week,
      0 = Saturday 00:00).
    - ``topk``: ``commune``, ``k``.
    - ``range``: ``service``, ``hour_start``/``hour_end`` (half-open),
      ``commune`` or ``None`` for national.
    - ``similarity``: ``kind`` plus ``a``/``b`` — service names for
      ``kind="service"``, commune indices for ``kind="commune"``.

    ``direction`` applies to every family and defaults to downlink.
    ``deadline_ms`` is an optional latency budget: when set, the engine
    checks it at every phase boundary and answers ``deadline_exceeded``
    once the budget is spent (``docs/serving.md``).  It never affects
    *what* the answer would be, so the cache key (:meth:`cache_key`)
    drops it — the same query with different deadlines shares one cache
    entry.
    """

    family: str
    direction: str = "dl"
    commune: Optional[int] = None
    service: Optional[str] = None
    hour: Optional[int] = None
    hour_start: Optional[int] = None
    hour_end: Optional[int] = None
    k: Optional[int] = None
    kind: Optional[str] = None
    a: Optional[Union[int, str]] = None
    b: Optional[Union[int, str]] = None
    #: Latency budget in milliseconds; ``None`` means unbounded.
    deadline_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """The query as a plain dict, ``None`` fields dropped."""
        out: Dict[str, Any] = {"family": self.family, "direction": self.direction}
        for field_name in (
            "commune",
            "service",
            "hour",
            "hour_start",
            "hour_end",
            "k",
            "kind",
            "a",
            "b",
            "deadline_ms",
        ):
            value = getattr(self, field_name)
            if value is not None:
                out[field_name] = value
        return out

    def canonical(self) -> str:
        """Byte-stable JSON encoding (the CSV / wire format)."""
        return encode_canonical(self.to_dict())

    def cache_key(self) -> str:
        """The canonical encoding with the deadline dropped.

        Deadlines bound *when* an answer arrives, never what it is, so
        deadline-bearing and deadline-free forms of the same query must
        share one cache entry — both for hit-rate and so a stale
        degraded-mode answer (``docs/serving.md``) can be served from an
        entry populated by either form.
        """
        if self.deadline_ms is None:
            return self.canonical()
        out = self.to_dict()
        del out["deadline_ms"]
        return encode_canonical(out)


def encode_canonical(obj: Any) -> str:
    """Deterministic JSON: sorted keys, fixed separators, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _require_int(obj: Dict[str, Any], field_name: str) -> int:
    value = obj.get(field_name)
    if not isinstance(value, int) or isinstance(value, bool):
        raise QueryError(
            f"query field {field_name!r} must be an integer, got {value!r}"
        )
    return value


def _require_str(obj: Dict[str, Any], field_name: str) -> str:
    value = obj.get(field_name)
    if not isinstance(value, str):
        raise QueryError(
            f"query field {field_name!r} must be a string, got {value!r}"
        )
    return value


def query_from_dict(obj: Dict[str, Any]) -> Query:
    """Build a :class:`Query` from a plain dict, validating its shape.

    Shape validation only — existence checks (service names, commune
    bounds) happen against a :class:`CubeProfile` in
    :func:`validate_query` so a query can be parsed without a dataset.
    """
    if not isinstance(obj, dict):
        raise QueryError(f"query must be a JSON object, got {type(obj).__name__}")
    family = obj.get("family")
    if family not in FAMILIES:
        raise QueryError(
            f"query family must be one of {FAMILIES}, got {family!r}"
        )
    direction = obj.get("direction", "dl")
    if direction not in DIRECTIONS:
        raise QueryError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise QueryError(
                f"query field 'deadline_ms' must be a number or absent, "
                f"got {deadline_ms!r}"
            )
        if deadline_ms <= 0:
            raise QueryError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        deadline_ms = float(deadline_ms)
    if family == "point":
        return Query(
            family="point",
            direction=direction,
            commune=_require_int(obj, "commune"),
            service=_require_str(obj, "service"),
            hour=_require_int(obj, "hour"),
            deadline_ms=deadline_ms,
        )
    if family == "topk":
        return Query(
            family="topk",
            direction=direction,
            commune=_require_int(obj, "commune"),
            k=_require_int(obj, "k"),
            deadline_ms=deadline_ms,
        )
    if family == "range":
        commune = obj.get("commune")
        if commune is not None and (
            not isinstance(commune, int) or isinstance(commune, bool)
        ):
            raise QueryError(
                f"query field 'commune' must be an integer or absent, "
                f"got {commune!r}"
            )
        return Query(
            family="range",
            direction=direction,
            service=_require_str(obj, "service"),
            hour_start=_require_int(obj, "hour_start"),
            hour_end=_require_int(obj, "hour_end"),
            commune=commune,
            deadline_ms=deadline_ms,
        )
    kind = obj.get("kind")
    if kind not in SIMILARITY_KINDS:
        raise QueryError(
            f"similarity kind must be one of {SIMILARITY_KINDS}, got {kind!r}"
        )
    if kind == "service":
        a: Union[int, str] = _require_str(obj, "a")
        b: Union[int, str] = _require_str(obj, "b")
    else:
        a = _require_int(obj, "a")
        b = _require_int(obj, "b")
    return Query(
        family="similarity",
        direction=direction,
        kind=kind,
        a=a,
        b=b,
        deadline_ms=deadline_ms,
    )


def parse_query(text: str) -> Query:
    """Parse one canonical-JSON query string."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise QueryError(f"query is not valid JSON: {exc}") from exc
    return query_from_dict(obj)


def _check_commune(profile: CubeProfile, commune: int) -> None:
    if not 0 <= commune < profile.n_communes:
        raise QueryError(
            f"commune index {commune} out of range "
            f"[0, {profile.n_communes})"
        )


def _check_service(profile: CubeProfile, service: str) -> None:
    if service not in profile.head_names:
        raise QueryError(f"{service!r} is not a head service of this dataset")


def _check_hour(hour: int, field_name: str = "hour") -> None:
    if not 0 <= hour < WEEK_HOURS:
        raise QueryError(
            f"{field_name} must be in [0, {WEEK_HOURS}), got {hour}"
        )


def validate_query(query: Query, profile: CubeProfile) -> None:
    """Raise :class:`QueryError` unless ``query`` fits the profile."""
    if query.deadline_ms is not None and not query.deadline_ms > 0:
        raise QueryError(
            f"deadline_ms must be > 0, got {query.deadline_ms}"
        )
    if query.family == "point":
        _check_commune(profile, query.commune)
        _check_service(profile, query.service)
        _check_hour(query.hour)
        return
    if query.family == "topk":
        _check_commune(profile, query.commune)
        if query.k < 1:
            raise QueryError(f"k must be >= 1, got {query.k}")
        return
    if query.family == "range":
        _check_service(profile, query.service)
        _check_hour(query.hour_start, "hour_start")
        if not query.hour_start < query.hour_end <= WEEK_HOURS:
            raise QueryError(
                f"need hour_start < hour_end <= {WEEK_HOURS}, got "
                f"[{query.hour_start}, {query.hour_end})"
            )
        if query.commune is not None:
            _check_commune(profile, query.commune)
        return
    if query.kind == "service":
        _check_service(profile, query.a)
        _check_service(profile, query.b)
    else:
        _check_commune(profile, query.a)
        _check_commune(profile, query.b)


__all__ = [
    "CubeProfile",
    "DIRECTIONS",
    "FAMILIES",
    "Query",
    "QueryError",
    "SIMILARITY_KINDS",
    "encode_canonical",
    "parse_query",
    "query_from_dict",
    "validate_query",
]
