"""The serving layer: query a built dataset, load-test the engine.

``repro.serve`` turns built datasets into a live query surface
(``docs/serving.md``): :class:`~repro.serve.engine.ServeEngine`
answers point/top-k/range/similarity queries from precomputed indexes
behind an LRU result cache, and :func:`~repro.serve.load.run_load`
drives it with open-loop workloads — Poisson-generated or replayed
from Logos-style CSVs — measuring latency percentiles, throughput and
a saturation point.  The ``repro-serve`` CLI wraps both.

The layer is overload-safe (``docs/robustness.md``): queries carry
optional deadline budgets checked at phase boundaries
(:meth:`~repro.serve.engine.ServeEngine.execute`), admission control
sheds deterministically under pressure (:mod:`repro.serve.overload`),
degraded mode answers point/top-k queries stale from the cache, and a
:class:`~repro.serve.health.ServeHealth` ladder tracks ok → degraded →
shedding.
"""

from repro.serve.cache import LRUCache
from repro.serve.engine import (
    DEFAULT_CACHE_CAPACITY,
    DeadlineExceeded,
    ServeEngine,
    ServeResult,
)
from repro.serve.health import ServeHealth
from repro.serve.load import LoadReport, run_load
from repro.serve.overload import (
    OverloadPolicy,
    RetryingClient,
    simulate_overload,
)
from repro.serve.queries import (
    CubeProfile,
    Query,
    QueryError,
    parse_query,
    query_from_dict,
)
from repro.serve.workload import (
    ScheduledRequest,
    WorkloadSpec,
    generate_schedule,
    parse_schedule_csv,
    render_schedule_csv,
)

__all__ = [
    "CubeProfile",
    "DEFAULT_CACHE_CAPACITY",
    "DeadlineExceeded",
    "LRUCache",
    "LoadReport",
    "OverloadPolicy",
    "Query",
    "QueryError",
    "RetryingClient",
    "ScheduledRequest",
    "ServeEngine",
    "ServeHealth",
    "ServeResult",
    "WorkloadSpec",
    "generate_schedule",
    "parse_query",
    "parse_schedule_csv",
    "query_from_dict",
    "render_schedule_csv",
    "run_load",
    "simulate_overload",
]
