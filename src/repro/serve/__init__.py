"""The serving layer: query a built dataset, load-test the engine.

``repro.serve`` turns built datasets into a live query surface
(``docs/serving.md``): :class:`~repro.serve.engine.ServeEngine`
answers point/top-k/range/similarity queries from precomputed indexes
behind an LRU result cache, and :func:`~repro.serve.load.run_load`
drives it with open-loop workloads — Poisson-generated or replayed
from Logos-style CSVs — measuring latency percentiles, throughput and
a saturation point.  The ``repro-serve`` CLI wraps both.
"""

from repro.serve.cache import LRUCache
from repro.serve.engine import DEFAULT_CACHE_CAPACITY, ServeEngine
from repro.serve.load import LoadReport, run_load
from repro.serve.queries import (
    CubeProfile,
    Query,
    QueryError,
    parse_query,
    query_from_dict,
)
from repro.serve.workload import (
    ScheduledRequest,
    WorkloadSpec,
    generate_schedule,
    parse_schedule_csv,
    render_schedule_csv,
)

__all__ = [
    "CubeProfile",
    "DEFAULT_CACHE_CAPACITY",
    "LRUCache",
    "LoadReport",
    "Query",
    "QueryError",
    "ScheduledRequest",
    "ServeEngine",
    "WorkloadSpec",
    "generate_schedule",
    "parse_query",
    "parse_schedule_csv",
    "query_from_dict",
    "render_schedule_csv",
    "run_load",
]
