"""``repro-serve`` command-line interface.

Examples::

    repro-dataset build --communes 300 --seed 7 --out panel.npz
    repro-serve point panel.npz --commune 12 --service video --hour 68
    repro-serve topk panel.npz --commune 12 --k 5
    repro-serve range panel.npz --service video --start 48 --end 168
    repro-serve similarity panel.npz --kind service --a video --b audio
    repro-serve query panel.npz '{"family":"topk","commune":3,"k":3}'
    repro-serve schedule panel.npz --seed 7 --duration 60 --out load.csv
    repro-serve load panel.npz --csv load.csv --p99-bound-ms 50 \\
        --trace-sample 0.01 --out report.json
    repro-serve stats panel.npz --duration 10 --out serve.prom

Query answers are printed as canonical JSON on stdout; ``--deadline-ms``
attaches a latency budget checked at phase boundaries, and a budget
miss prints the typed ``deadline_exceeded`` answer and exits ``1``.
``load`` writes the harness report (p50/p95/p99 latency, throughput,
cache hit rate, saturation point — ``docs/serving.md``);
``--trace-sample`` phase-traces a deterministic ``(seed,
request_id)``-sampled subset of requests into the event log;
``--overload`` (with ``--queue-capacity`` / ``--tokens-per-s`` /
``--token-burst`` / ``--overload-seed``) adds the admission-control
replay to the report, and repeatable ``--fault kind:request_id`` specs
inject serve-path faults (``docs/robustness.md``).  ``stats`` runs the
same harness and renders the resulting metric registry — counters,
gauges (including the ``serve.health.state`` ladder as a labeled state
set), and the ``serve.latency.*`` histograms — in Prometheus text
exposition format.  Both follow the shared exit contract in
:mod:`repro._exit`: ``0`` ok, ``1`` findings (the p99 bound was
exceeded, requests errored, or a single query missed its deadline),
``2`` usage error or unreadable input, ``3`` internal failure — a
dataset file that exists but fails integrity checks
(:class:`~repro.dataset.store.CorruptDatasetError`) is an internal
failure, not a usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro._exit import EXIT_FINDINGS, EXIT_INTERNAL, EXIT_OK, EXIT_USAGE
from repro._units import MILLIS_PER_SECOND
from repro.dataset.store import CorruptDatasetError, MobileTrafficDataset
from repro.obs import events as obs_events
from repro.obs import prom as obs_prom
from repro.obs import runtime
from repro.resilience.faults import FaultPlan
from repro.serve.engine import DEFAULT_CACHE_CAPACITY, ServeEngine
from repro.serve.load import run_load
from repro.serve.overload import OverloadPolicy
from repro.serve.queries import (
    CubeProfile,
    Query,
    parse_query,
)
from repro.serve.workload import (
    WorkloadSpec,
    generate_schedule,
    parse_schedule_csv,
    render_schedule_csv,
)


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help=(
            "fraction of requests to phase-trace; sampling is a pure "
            "function of (--trace-seed, request id)"
        ),
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=None,
        help="trace-sampling seed (default: --seed)",
    )


def _add_deadline_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "latency budget in milliseconds; a miss prints the typed "
            "deadline_exceeded answer and exits 1"
        ),
    )


def _add_overload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--overload",
        action="store_true",
        help=(
            "replay admission control (token bucket + bounded queue "
            "with deterministic shedding) and add the overload section"
        ),
    )
    parser.add_argument(
        "--overload-seed",
        type=int,
        default=0,
        help="seed of the pure shed hash",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=OverloadPolicy.queue_capacity,
        help="maximum simulated queue depth before unconditional shed",
    )
    parser.add_argument(
        "--tokens-per-s",
        type=float,
        default=OverloadPolicy.tokens_per_s,
        help="token-bucket refill rate (requests per second)",
    )
    parser.add_argument(
        "--token-burst",
        type=float,
        default=OverloadPolicy.token_burst,
        help="token-bucket burst capacity",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "inject a serve-path fault, "
            "kind:request_id[:attempt[:stage]] (repeatable); implies "
            "admission control even without --overload"
        ),
    )


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="replay horizon in seconds",
    )
    parser.add_argument(
        "--users",
        type=float,
        default=100.0,
        help="mean Poisson active users per sampling window",
    )
    parser.add_argument(
        "--rpm",
        type=float,
        default=20.0,
        help="mean requests per minute per active user",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="active-user resampling window in seconds",
    )
    parser.add_argument(
        "--interactive-fraction",
        type=float,
        default=0.8,
        help="probability a request is interactive (else batch)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Query a built dataset over the commune x service x time "
            "cube and load-test the engine with open-loop workloads "
            "(docs/serving.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    point = sub.add_parser(
        "point", help="volume of one (commune, service, hour) cell"
    )
    point.add_argument("dataset", metavar="DATASET")
    point.add_argument("--commune", type=int, required=True)
    point.add_argument("--service", required=True)
    point.add_argument(
        "--hour",
        type=int,
        required=True,
        help="hour of week, 0 = Saturday 00:00",
    )
    point.add_argument("--direction", choices=("dl", "ul"), default="dl")
    _add_deadline_argument(point)

    topk = sub.add_parser(
        "topk", help="top-k services by weekly volume in one commune"
    )
    topk.add_argument("dataset", metavar="DATASET")
    topk.add_argument("--commune", type=int, required=True)
    topk.add_argument("--k", type=int, default=5)
    topk.add_argument("--direction", choices=("dl", "ul"), default="dl")
    _add_deadline_argument(topk)

    hour_range = sub.add_parser(
        "range", help="volume of one service over an hour-of-week range"
    )
    hour_range.add_argument("dataset", metavar="DATASET")
    hour_range.add_argument("--service", required=True)
    hour_range.add_argument(
        "--start", type=int, required=True, help="first hour (inclusive)"
    )
    hour_range.add_argument(
        "--end", type=int, required=True, help="last hour (exclusive)"
    )
    hour_range.add_argument(
        "--commune",
        type=int,
        default=None,
        help="commune index (default: national)",
    )
    hour_range.add_argument("--direction", choices=("dl", "ul"), default="dl")
    _add_deadline_argument(hour_range)

    similarity = sub.add_parser(
        "similarity", help="pairwise r^2 between services or communes"
    )
    similarity.add_argument("dataset", metavar="DATASET")
    similarity.add_argument(
        "--kind", choices=("service", "commune"), default="service"
    )
    similarity.add_argument(
        "--a", required=True, help="service name or commune index"
    )
    similarity.add_argument(
        "--b", required=True, help="service name or commune index"
    )
    similarity.add_argument("--direction", choices=("dl", "ul"), default="dl")
    _add_deadline_argument(similarity)

    query = sub.add_parser("query", help="answer one JSON-encoded query")
    query.add_argument("dataset", metavar="DATASET")
    query.add_argument("body", metavar="JSON", help="query object")
    _add_deadline_argument(query)

    schedule = sub.add_parser(
        "schedule", help="generate a Poisson workload schedule CSV"
    )
    schedule.add_argument("dataset", metavar="DATASET")
    _add_workload_arguments(schedule)
    schedule.add_argument(
        "--out", metavar="PATH", required=True, help="write the CSV here"
    )

    load = sub.add_parser(
        "load", help="run the open-loop load harness against the engine"
    )
    load.add_argument("dataset", metavar="DATASET")
    load.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="replay a scheduled-request CSV instead of generating",
    )
    _add_workload_arguments(load)
    load.add_argument("--workers", type=int, default=1)
    load.add_argument(
        "--cache-capacity", type=int, default=DEFAULT_CACHE_CAPACITY
    )
    _add_trace_arguments(load)
    _add_overload_arguments(load)
    load.add_argument(
        "--p99-bound-ms",
        type=float,
        default=None,
        help="fail (exit 1) when measured p99 exceeds this bound",
    )
    load.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the JSON report here (default: stdout)",
    )
    load.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="record and write the structured JSONL event log",
    )

    stats = sub.add_parser(
        "stats",
        help=(
            "run a workload and render the metric registry in "
            "Prometheus text format"
        ),
    )
    stats.add_argument("dataset", metavar="DATASET")
    stats.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="replay a scheduled-request CSV instead of generating",
    )
    _add_workload_arguments(stats)
    stats.add_argument("--workers", type=int, default=1)
    stats.add_argument(
        "--cache-capacity", type=int, default=DEFAULT_CACHE_CAPACITY
    )
    _add_trace_arguments(stats)
    _add_overload_arguments(stats)
    stats.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the exposition here (default: stdout)",
    )
    return parser


def _engine_for(args: argparse.Namespace) -> ServeEngine:
    return ServeEngine.open(args.dataset)


def _print_answer(engine: ServeEngine, query: Query) -> int:
    if query.deadline_ms is None:
        print(engine.query_encoded(query))
        return EXIT_OK
    # The deadline-checked path: a budget miss is a finding (exit 1)
    # with the typed answer on stdout, not a usage error.
    result = engine.execute(query)
    if result.status == "invalid":
        raise ValueError(json.loads(result.encoded)["error"])
    print(result.encoded)
    return EXIT_OK if result.ok else EXIT_FINDINGS


def _cmd_point(args: argparse.Namespace) -> int:
    return _print_answer(
        _engine_for(args),
        Query(
            family="point",
            direction=args.direction,
            commune=args.commune,
            service=args.service,
            hour=args.hour,
            deadline_ms=args.deadline_ms,
        ),
    )


def _cmd_topk(args: argparse.Namespace) -> int:
    return _print_answer(
        _engine_for(args),
        Query(
            family="topk",
            direction=args.direction,
            commune=args.commune,
            k=args.k,
            deadline_ms=args.deadline_ms,
        ),
    )


def _cmd_range(args: argparse.Namespace) -> int:
    return _print_answer(
        _engine_for(args),
        Query(
            family="range",
            direction=args.direction,
            service=args.service,
            hour_start=args.start,
            hour_end=args.end,
            commune=args.commune,
            deadline_ms=args.deadline_ms,
        ),
    )


def _cmd_similarity(args: argparse.Namespace) -> int:
    if args.kind == "commune":
        try:
            a: object = int(args.a)
            b: object = int(args.b)
        except ValueError:
            raise ValueError(
                "commune similarity takes integer commune indices, got "
                f"{args.a!r} / {args.b!r}"
            ) from None
    else:
        a, b = args.a, args.b
    return _print_answer(
        _engine_for(args),
        Query(
            family="similarity",
            direction=args.direction,
            kind=args.kind,
            a=a,
            b=b,
            deadline_ms=args.deadline_ms,
        ),
    )


def _cmd_query(args: argparse.Namespace) -> int:
    query = parse_query(args.body)
    if args.deadline_ms is not None:
        query = dataclasses.replace(query, deadline_ms=args.deadline_ms)
    return _print_answer(_engine_for(args), query)


def _workload_spec(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        duration_s=args.duration,
        mean_active_users=args.users,
        mean_requests_per_minute_per_user=args.rpm,
        user_sampling_window_s=args.window,
        interactive_fraction=args.interactive_fraction,
    )


def _cmd_schedule(args: argparse.Namespace) -> int:
    profile = CubeProfile.of(MobileTrafficDataset.load(args.dataset))
    requests = generate_schedule(_workload_spec(args), profile, args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_schedule_csv(requests))
    print(
        f"{len(requests)} requests scheduled to {args.out}", file=sys.stderr
    )
    return EXIT_OK


def _load_engine(args: argparse.Namespace) -> ServeEngine:
    trace_seed = args.trace_seed if args.trace_seed is not None else args.seed
    return ServeEngine.open(
        args.dataset,
        cache_capacity=args.cache_capacity,
        trace_seed=trace_seed,
        trace_sample_rate=args.trace_sample,
    )


def _load_requests(args: argparse.Namespace, engine: ServeEngine) -> list:
    if args.csv:
        with open(args.csv, "r", encoding="utf-8") as handle:
            return parse_schedule_csv(handle.read())
    return generate_schedule(_workload_spec(args), engine.profile, args.seed)


def _overload_policy(args: argparse.Namespace) -> Optional[OverloadPolicy]:
    if not args.overload and not args.fault:
        return None
    return OverloadPolicy(
        seed=args.overload_seed,
        queue_capacity=args.queue_capacity,
        tokens_per_s=args.tokens_per_s,
        token_burst=args.token_burst,
    )


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    return FaultPlan.parse(args.fault) if args.fault else None


def _cmd_load(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    with runtime.observed(log_events=args.events_out is not None) as session:
        requests = _load_requests(args, engine)
        report = run_load(
            engine,
            requests,
            n_workers=args.workers,
            overload=_overload_policy(args),
            fault_plan=_fault_plan(args),
        )
        events = session.export_events()
    rendered = json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    if args.events_out:
        obs_events.write_jsonl(args.events_out, events)
        print(f"event log written to {args.events_out}", file=sys.stderr)
    p99_ms = report.latency_p99_s * MILLIS_PER_SECOND
    print(
        f"requests={report.n_requests} errors={report.n_errors} "
        f"p99={p99_ms:.3f}ms throughput={report.throughput_rps:.0f}rps "
        f"saturation={report.saturation_rps:.0f}rps "
        f"cache_hit_rate={report.cache_hit_rate:.3f}",
        file=sys.stderr,
    )
    if report.overload is not None:
        section = report.overload
        print(
            f"overload: health={section['health']['state']} "
            f"admitted={section['n_admitted']} shed={section['n_shed']} "
            f"deadline_exceeded={section['n_deadline_exceeded']} "
            f"stale={len(section['stale_answers'])} "
            f"goodput={section['goodput_rps']:.0f}rps",
            file=sys.stderr,
        )
    if report.n_errors > 0:
        print(
            f"repro-serve: {report.n_errors} requests errored",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    if args.p99_bound_ms is not None and p99_ms > args.p99_bound_ms:
        print(
            f"repro-serve: p99 {p99_ms:.3f}ms exceeds bound "
            f"{args.p99_bound_ms:.3f}ms",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_stats(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    with runtime.observed() as session:
        requests = _load_requests(args, engine)
        run_load(
            engine,
            requests,
            n_workers=args.workers,
            overload=_overload_policy(args),
            fault_plan=_fault_plan(args),
        )
        dump = session.export(
            meta={"command": "stats", "dataset": args.dataset}
        )
    rendered = obs_prom.render_prom(dump)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"exposition written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "point":
            return _cmd_point(args)
        if args.command == "topk":
            return _cmd_topk(args)
        if args.command == "range":
            return _cmd_range(args)
        if args.command == "similarity":
            return _cmd_similarity(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "schedule":
            return _cmd_schedule(args)
        if args.command == "load":
            return _cmd_load(args)
        if args.command == "stats":
            return _cmd_stats(args)
    except CorruptDatasetError as exc:
        # The file exists but fails integrity checks: the serving stack
        # is broken, not the invocation — exit 3, never a traceback.
        print(f"repro-serve: corrupt dataset: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-serve: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
