"""The serving health state machine.

A three-rung ladder — ``ok`` → ``degraded`` → ``shedding`` — that only
ratchets upward within one observation window (``docs/robustness.md``,
"Serving under overload"):

``ok``
    Every admitted request is answered fresh.
``degraded``
    At least one request was answered stale from the cache or refused
    because a fault marked the indexes unavailable.
``shedding``
    Admission control dropped at least one request (rate limiter or
    queue pressure).

The ratchet makes the end-of-run state a pure function of the *set* of
events observed, not their order — two permutations of the same
requests land on the same state, which is what keeps the harness report
byte-identical across worker counts.  :meth:`ServeHealth.reset` starts
a fresh window.

State changes are exported through the metrics contract:
``serve.health.state`` carries the numeric rung and
``serve.health.transitions`` counts ratchet steps; ``repro-serve
stats`` renders the current state as a labeled Prometheus state set
(``repro.obs.prom``).
"""

from __future__ import annotations

from typing import Dict

from repro import obs
from repro.obs.metrics import SERVE_HEALTH_STATES

#: The ladder, worst-last; index is the exported gauge value.
HEALTH_STATES = SERVE_HEALTH_STATES

_LEVEL: Dict[str, int] = {state: i for i, state in enumerate(HEALTH_STATES)}


class ServeHealth:
    """Ratcheting ok → degraded → shedding ladder with accounting."""

    __slots__ = ("state", "transitions")

    def __init__(self) -> None:
        self.state = "ok"
        self.transitions = 0

    @property
    def level(self) -> int:
        """The numeric rung (0 ok, 1 degraded, 2 shedding)."""
        return _LEVEL[self.state]

    def note(self, state: str) -> bool:
        """Observe a condition; ratchet upward if it is worse.

        Returns whether the state changed.  Each change bumps
        ``serve.health.transitions`` and re-exports
        ``serve.health.state``.
        """
        if state not in _LEVEL:
            raise ValueError(
                f"unknown health state {state!r}; expected one of "
                f"{HEALTH_STATES}"
            )
        if _LEVEL[state] <= self.level:
            return False
        self.state = state
        self.transitions += 1
        obs.add("serve.health.transitions")
        obs.set_gauge("serve.health.state", self.level)
        return True

    def reset(self) -> None:
        """Start a fresh observation window at ``ok`` (no transition)."""
        self.state = "ok"


__all__ = ["HEALTH_STATES", "ServeHealth"]
