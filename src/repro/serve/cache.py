"""Result cache of the serving engine.

A plain LRU over canonical query keys (``repro.serve.queries``): the
engine stores the *encoded* result string, so a cache hit returns the
exact bytes the miss produced — cached and uncached answers are
byte-identical by construction, and the test suite pins it.

Hit/miss totals are tracked on the cache itself and surfaced through
the ``serve.cache_hits`` / ``serve.cache_misses`` metrics by the load
harness (``docs/serving.md``).  The counts are a pure function of the
key sequence and the capacity — :func:`simulate_hits` replays exactly
that function without executing anything, which is how the harness
reports cache behaviour independently of how many worker processes
executed the requests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class LRUCache:
    """Least-recently-used string cache with hit/miss accounting.

    ``capacity`` 0 disables caching: every lookup misses and nothing is
    stored (the reference configuration for cache-correctness tests).
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> Optional[str]:
        """The cached value, refreshed as most-recent; None on miss."""
        if self.capacity == 0 or key not in self._data:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return self._data[key]

    def put(self, key: str, value: str) -> None:
        """Store ``value``, evicting the least-recent entry when full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size snapshot (plain ints, JSON-ready)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._data),
            "capacity": self.capacity,
        }


def simulate_hit_flags(
    keys: Sequence[str],
    capacity: int,
    bypass: Optional[Sequence[bool]] = None,
) -> List[Optional[bool]]:
    """Per-key LRU replay: ``True`` hit, ``False`` miss, ``None`` bypassed.

    Pure — no values are stored, nothing is executed.  ``bypass`` marks
    keys that skip the cache entirely, mirroring the engine's
    phase-traced requests (which neither read nor populate the live
    cache so their span structure stays cache-state independent); the
    outcome is a pure function of the key sequence, the capacity, and
    the bypass mask.
    """
    cache = LRUCache(capacity)
    flags: List[Optional[bool]] = []
    for index, key in enumerate(keys):
        if bypass is not None and bypass[index]:
            flags.append(None)
            continue
        if cache.get(key) is None:
            cache.put(key, "")
            flags.append(False)
        else:
            flags.append(True)
    return flags


def simulate_hits(
    keys: Iterable[str],
    capacity: int,
    bypass: Optional[Sequence[bool]] = None,
) -> Tuple[int, int]:
    """Replay the LRU policy over ``keys``; returns ``(hits, misses)``.

    Matches what a single :class:`LRUCache` of the same capacity would
    count when the keys are looked up (and stored on miss) in order,
    which is exactly the serial engine's behaviour.  Bypassed keys (see
    :func:`simulate_hit_flags`) count as neither hit nor miss.
    """
    flags = simulate_hit_flags(list(keys), capacity, bypass)
    hits = sum(1 for flag in flags if flag is True)
    misses = sum(1 for flag in flags if flag is False)
    return hits, misses


__all__ = ["LRUCache", "simulate_hit_flags", "simulate_hits"]
