"""Result cache of the serving engine.

A plain LRU over canonical query keys (``repro.serve.queries``): the
engine stores the *encoded* result string, so a cache hit returns the
exact bytes the miss produced — cached and uncached answers are
byte-identical by construction, and the test suite pins it.

Hit/miss totals are tracked on the cache itself and surfaced through
the ``serve.cache_hits`` / ``serve.cache_misses`` metrics by the load
harness (``docs/serving.md``).  The counts are a pure function of the
key sequence and the capacity — :func:`simulate_hits` replays exactly
that function without executing anything, which is how the harness
reports cache behaviour independently of how many worker processes
executed the requests.

Every entry is stored alongside a sha256 digest of its bytes, taken at
``put`` time.  Reads verify the digest: an entry damaged in place (the
``corrupt_cache_entry`` fault of :mod:`repro.resilience.faults`) is
*detected*, counted on :attr:`LRUCache.corrupt_detected`, evicted, and
reported as a miss — corrupt bytes are never returned.  :meth:`peek`
reads without touching recency or hit/miss accounting, which is how
degraded mode serves explicitly-stale answers without perturbing the
cache state the deterministic replay models (``docs/robustness.md``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def _digest(value: str) -> str:
    return hashlib.sha256(value.encode("utf-8")).hexdigest()


class LRUCache:
    """Least-recently-used string cache with hit/miss accounting.

    ``capacity`` 0 disables caching: every lookup misses and nothing is
    stored (the reference configuration for cache-correctness tests).
    """

    __slots__ = ("capacity", "hits", "misses", "corrupt_detected", "_data")

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Entries whose stored digest failed verification on read.
        self.corrupt_detected = 0
        self._data: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def _checked(self, key: str) -> Optional[str]:
        """The verified value for a present key; evicts on corruption."""
        value, digest = self._data[key]
        if _digest(value) != digest:
            del self._data[key]
            self.corrupt_detected += 1
            return None
        return value

    def get(self, key: str) -> Optional[str]:
        """The cached value, refreshed as most-recent; None on miss.

        A present-but-corrupt entry (stored digest mismatch) counts as
        a miss: it is evicted and ``corrupt_detected`` is bumped, so
        the caller recomputes exactly as for an absent key.
        """
        if self.capacity == 0 or key not in self._data:
            self.misses += 1
            return None
        value = self._checked(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> Optional[str]:
        """The verified value without recency or hit/miss accounting.

        Degraded mode's stale-read path: present and intact returns the
        bytes, absent returns None, corrupt is evicted and counted like
        :meth:`get` but perturbs nothing else.
        """
        if self.capacity == 0 or key not in self._data:
            return None
        return self._checked(key)

    def put(self, key: str, value: str) -> None:
        """Store ``value``, evicting the least-recent entry when full."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = (value, _digest(value))
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def corrupt(self, key: str) -> bool:
        """Damage the stored bytes of ``key`` in place (fault injection).

        Flips the entry's value without updating its digest — the next
        read must detect the mismatch.  Returns whether the key was
        present to damage.  Test/chaos-harness surface only; the
        serving path never calls it.
        """
        if key not in self._data:
            return False
        value, digest = self._data[key]
        self._data[key] = ("\x00" + value, digest)
        return True

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size snapshot (plain ints, JSON-ready).

        ``corrupt_detected`` is deliberately kept out: the four keys
        are pinned by tests and external consumers; corruption counts
        surface through the ``serve.cache.corrupt_detected`` metric.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._data),
            "capacity": self.capacity,
        }


def simulate_hit_flags(
    keys: Sequence[str],
    capacity: int,
    bypass: Optional[Sequence[bool]] = None,
) -> List[Optional[bool]]:
    """Per-key LRU replay: ``True`` hit, ``False`` miss, ``None`` bypassed.

    Pure — no values are stored, nothing is executed.  ``bypass`` marks
    keys that skip the cache entirely, mirroring the engine's
    phase-traced requests (which neither read nor populate the live
    cache so their span structure stays cache-state independent); the
    outcome is a pure function of the key sequence, the capacity, and
    the bypass mask.
    """
    cache = LRUCache(capacity)
    flags: List[Optional[bool]] = []
    for index, key in enumerate(keys):
        if bypass is not None and bypass[index]:
            flags.append(None)
            continue
        if cache.get(key) is None:
            cache.put(key, "")
            flags.append(False)
        else:
            flags.append(True)
    return flags


def simulate_hits(
    keys: Iterable[str],
    capacity: int,
    bypass: Optional[Sequence[bool]] = None,
) -> Tuple[int, int]:
    """Replay the LRU policy over ``keys``; returns ``(hits, misses)``.

    Matches what a single :class:`LRUCache` of the same capacity would
    count when the keys are looked up (and stored on miss) in order,
    which is exactly the serial engine's behaviour.  Bypassed keys (see
    :func:`simulate_hit_flags`) count as neither hit nor miss.
    """
    flags = simulate_hit_flags(list(keys), capacity, bypass)
    hits = sum(1 for flag in flags if flag is True)
    misses = sum(1 for flag in flags if flag is False)
    return hits, misses


__all__ = ["LRUCache", "simulate_hit_flags", "simulate_hits"]
