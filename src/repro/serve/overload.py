"""Admission control, load shedding, and the overload simulation.

The open-loop harness (:mod:`repro.serve.load`) measures service times
overload-blind; everything overload does to a schedule — rate limiting,
queue-pressure shedding, deadline accounting — is *simulated* here,
parent-side, as a pure function of ``(policy, schedule, service-time
buckets, fault plan)``.  That split is what keeps the overload report
byte-identical across worker counts (``docs/serving.md``):

1. **Token bucket.**  A deterministic rate limiter refilled from the
   arrival offsets themselves: a request arriving when no whole token
   is available is shed as ``rate_limited`` and never touches the
   queue.
2. **Bounded admission queue.**  The single-server priority queue of
   :func:`repro.serve.load.simulate_queue` grows a depth bound.  At
   each arrival the simulated depth is folded into a coarse
   ``queue_depth_bucket`` and the request is shed with a probability
   that rises with the bucket — modulated so batch sheds before
   interactive and low priority before high.  The *decision* itself is
   a pure sha256 function of ``(seed, request_id, queue_depth_bucket)``
   (:func:`shed_decision`), mirroring the engine's trace sampler, so
   no RNG state and no execution order is involved.  A full queue
   sheds unconditionally.  Both causes count as ``queue_full`` sheds.
3. **Deadlines.**  Each admitted request's simulated latency — plus
   any ``slow_phase`` fault delay addressed to it — is compared
   against its query's ``deadline_ms``; misses are reported as the
   deadline-exceeded set, never as answers.

:class:`RetryingClient` is the harness-side consumer of the engine's
overload-safe path: it drives :meth:`repro.serve.engine.ServeEngine.execute`
with attempt-addressed faults and *records* the pure backoff schedule
of :meth:`repro.resilience.retry.RetryPolicy.request_backoff_s`
instead of sleeping it.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro._units import MILLIS_PER_SECOND
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.serve.workload import PRIORITY_VALUES

#: Queue-depth buckets the shed hash can see (0 = empty .. 4 = full).
N_DEPTH_BUCKETS = 5

#: Base shed probability per depth bucket; rises with queue pressure.
_BUCKET_SHED_PROB = (0.0, 0.0, 0.25, 0.5, 1.0)

#: Mode modulation: batch sheds before interactive.
_MODE_SHED_FACTOR = {"interactive": 0.5, "batch": 1.5}

#: Priority modulation: low sheds before high.
_PRIORITY_SHED_FACTOR = {"low": 1.5, "mid": 1.0, "high": 0.5}

#: Shed causes (the closed set the report and metrics use).
SHED_CAUSES = ("rate_limited", "queue_full")


@dataclass(frozen=True)
class OverloadPolicy:
    """Admission-control parameters of one overload run."""

    #: Seed of the pure shed hash (independent of the workload seed).
    seed: int = 0
    #: Maximum simulated queue depth; arrivals beyond it always shed.
    queue_capacity: int = 64
    #: Token-bucket refill rate (requests per second).
    tokens_per_s: float = 1000.0
    #: Token-bucket burst capacity (whole tokens).
    token_burst: float = 100.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.tokens_per_s <= 0:
            raise ValueError(
                f"tokens_per_s must be > 0, got {self.tokens_per_s}"
            )
        if self.token_burst < 1:
            raise ValueError(
                f"token_burst must be >= 1, got {self.token_burst}"
            )


def queue_depth_bucket(depth: int, capacity: int) -> int:
    """Fold a queue depth into one of :data:`N_DEPTH_BUCKETS` buckets.

    Coarse on purpose: the shed hash must see the same bucket for the
    same schedule regardless of float noise in the simulation, and a
    handful of buckets keeps the decision table auditable.
    """
    if depth >= capacity:
        return N_DEPTH_BUCKETS - 1
    return min(
        N_DEPTH_BUCKETS - 1, (depth * N_DEPTH_BUCKETS) // max(capacity, 1)
    )


def shed_probability(depth_bucket: int, mode: str, priority: str) -> float:
    """The effective shed probability for one request class.

    Base probability by depth bucket, scaled so batch sheds before
    interactive and low priority before high; clipped to [0, 1].
    """
    base = _BUCKET_SHED_PROB[min(depth_bucket, N_DEPTH_BUCKETS - 1)]
    scaled = (
        base * _MODE_SHED_FACTOR[mode] * _PRIORITY_SHED_FACTOR[priority]
    )
    return min(1.0, max(0.0, scaled))


def shed_decision(
    seed: int, request_id: str, depth_bucket: int, probability: float
) -> bool:
    """Pure sha256 shed decision over ``(seed, request_id, bucket)``.

    The same construction as the engine's trace sampler: hash the
    address, compare the first 8 bytes against the probability scaled
    to 2**64.  No RNG state, no arrival order, no worker count — the
    shed set is identical for any partitioning of the schedule.
    """
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    digest = hashlib.sha256(
        f"{seed}:{request_id}:{depth_bucket}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") < int(probability * 2.0**64)


@dataclass
class OverloadOutcome:
    """Per-request verdicts of one simulated overload pass."""

    #: Whether each request was admitted (scheduled order).
    admitted: List[bool]
    #: Shed cause per request (``None`` for admitted ones).
    shed_cause: List[Optional[str]]
    #: Depth bucket the shed hash saw at each arrival.
    depth_buckets: List[int]
    #: Simulated queue latency per admitted request (0.0 for shed).
    latencies_s: np.ndarray
    #: Requests whose latency (plus injected delay) broke their budget.
    deadline_exceeded: List[bool]

    @property
    def n_shed(self) -> int:
        return sum(1 for cause in self.shed_cause if cause is not None)

    def shed_count(self, cause: str) -> int:
        if cause not in SHED_CAUSES:
            raise ValueError(f"unknown shed cause {cause!r}")
        return sum(1 for c in self.shed_cause if c == cause)


def simulate_overload(
    policy: OverloadPolicy,
    arrivals_s: np.ndarray,
    service_s: np.ndarray,
    modes: Sequence[str],
    priorities: Sequence[str],
    request_ids: Sequence[str],
    deadlines_s: Sequence[Optional[float]],
    fault_plan: Optional[FaultPlan] = None,
) -> OverloadOutcome:
    """One event-driven pass of admission control over a schedule.

    Pure: the only inputs are the policy, the schedule, the (already
    quantized) service times, and the fault plan.  The queue discipline
    is exactly :func:`repro.serve.load.simulate_queue`'s — interactive
    before batch, higher priority first, FIFO within a class — with a
    depth bound and per-arrival shed decisions layered on top.
    ``slow_phase`` faults charge their delay onto the affected
    request's latency before the deadline comparison (nothing sleeps).
    """
    n = len(arrivals_s)
    admitted = [False] * n
    shed_cause: List[Optional[str]] = [None] * n
    depth_buckets = [0] * n
    latencies = np.zeros(n, dtype=np.float64)
    deadline_exceeded = [False] * n
    if n == 0:
        return OverloadOutcome(
            admitted, shed_cause, depth_buckets, latencies, deadline_exceeded
        )

    order = np.argsort(arrivals_s, kind="stable")
    # Single server + bounded waiting room; ``waiting`` holds admitted
    # requests not yet started, keyed like simulate_queue's heap.
    waiting: List[Tuple[int, int, float, int]] = []
    server_free = 0.0
    tokens = float(policy.token_burst)
    last_refill = 0.0

    def drain(until: float) -> None:
        """Start every waiting request whose service begins by ``until``."""
        nonlocal server_free
        while waiting and server_free <= until:
            i = heapq.heappop(waiting)[-1]
            start = max(server_free, float(arrivals_s[i]))
            server_free = start + float(service_s[i])
            latencies[i] = server_free - float(arrivals_s[i])

    for raw in order:
        i = int(raw)
        t = float(arrivals_s[i])
        drain(t)
        depth = len(waiting) + (1 if server_free > t else 0)
        bucket = queue_depth_bucket(depth, policy.queue_capacity)
        depth_buckets[i] = bucket

        # 1. token bucket — refilled from the arrival clock itself.
        tokens = min(
            float(policy.token_burst),
            tokens + (t - last_refill) * policy.tokens_per_s,
        )
        last_refill = t
        if tokens < 1.0:
            shed_cause[i] = "rate_limited"
            continue

        # 2. queue pressure — hard bound, then the pure shed hash.
        if depth >= policy.queue_capacity:
            shed_cause[i] = "queue_full"
            continue
        probability = shed_probability(bucket, modes[i], priorities[i])
        if shed_decision(policy.seed, request_ids[i], bucket, probability):
            shed_cause[i] = "queue_full"
            continue

        tokens -= 1.0
        admitted[i] = True
        heapq.heappush(
            waiting,
            (
                0 if modes[i] == "interactive" else 1,
                -PRIORITY_VALUES[priorities[i]],
                t,
                i,
            ),
        )
    drain(float("inf"))

    for i in range(n):
        if not admitted[i]:
            continue
        deadline_s = deadlines_s[i]
        if deadline_s is None:
            continue
        charged = latencies[i]
        if fault_plan is not None:
            for fault in fault_plan.serve_faults_for(request_ids[i]):
                if fault.kind == "slow_phase":
                    charged += fault.delay_ms / MILLIS_PER_SECOND
        if charged > deadline_s:
            deadline_exceeded[i] = True

    return OverloadOutcome(
        admitted, shed_cause, depth_buckets, latencies, deadline_exceeded
    )


@dataclass
class ClientOutcome:
    """What one retried request came back with."""

    result: Any
    attempts: int
    #: Sum of the recorded (never slept) backoff schedule, seconds.
    backoff_s: float


class RetryingClient:
    """Retrying wrapper over the engine's overload-safe request path.

    Retries ``unavailable`` answers — the transient fault class a
    retry can beat, since fault plans address ``(request_id,
    attempt)`` and an attempt-0 fault does not re-fire on attempt 1.
    The backoff schedule is the pure
    :meth:`~repro.resilience.retry.RetryPolicy.request_backoff_s`
    function; it is *recorded* on the outcome, never slept, so the
    chaos harness stays wall-clock free on the decision path.
    """

    #: Result statuses worth retrying.
    RETRYABLE = ("unavailable",)

    def __init__(
        self,
        engine: Any,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        self.engine = engine
        self.policy = policy if policy is not None else RetryPolicy()
        self.seed = seed

    def execute(self, query: Any, request_id: str) -> ClientOutcome:
        backoff_total = 0.0
        result = None
        attempts = 0
        for attempt in range(self.policy.max_attempts):
            attempts = attempt + 1
            result = self.engine.execute(
                query, request_id=request_id, attempt=attempt
            )
            if result.status not in self.RETRYABLE:
                break
            if attempt + 1 < self.policy.max_attempts:
                backoff_total += self.policy.request_backoff_s(
                    self.seed, request_id, attempt + 1
                )
        return ClientOutcome(
            result=result, attempts=attempts, backoff_s=backoff_total
        )


__all__ = [
    "ClientOutcome",
    "N_DEPTH_BUCKETS",
    "OverloadOutcome",
    "OverloadPolicy",
    "RetryingClient",
    "SHED_CAUSES",
    "queue_depth_bucket",
    "shed_decision",
    "shed_probability",
    "simulate_overload",
]
