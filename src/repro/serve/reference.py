"""Brute-force reference answers for the serving engine.

Every query family is re-implemented here directly against the dataset
tensors, with explicit loops and none of the engine's precomputed
indexes or caches.  The property tests
(``tests/property/test_serve_queries.py``) drive both implementations
with generated queries and require the answers to agree — the engine's
index structures are an optimization, never a semantic.

Kept deliberately slow and obvious; nothing in the serving path
imports this module.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.serve.queries import CubeProfile, Query, validate_query


def _hour_slice(dataset: Any, direction: str, commune: int, service_index: int,
                hour: int) -> float:
    """Volume of one (commune, service, hour-of-week) cell, in bytes."""
    bph = dataset.axis.bins_per_hour
    tensor = dataset.tensor(direction)
    total = 0.0
    for b in range(hour * bph, (hour + 1) * bph):
        total += float(tensor[commune, service_index, b])
    return total


def _is_constant(x: List[float]) -> bool:
    """The constant-column rule of :func:`repro.core.correlation.pairwise_r2`.

    A vector whose variation sits at floating-point noise level —
    centred norm below ``1e-9`` of its magnitude — counts as constant.
    """
    n = len(x)
    mx = sum(x) / n
    norm = math.sqrt(sum((v - mx) ** 2 for v in x))
    scale = max(max(abs(v) for v in x), 1.0)
    return norm <= 1e-9 * scale


def _r2(x: List[float], y: List[float]) -> float:
    """Pearson r² computed longhand, with ``pairwise_r2`` semantics:
    a constant vector correlates 0 with everything."""
    if _is_constant(x) or _is_constant(y):
        return 0.0
    n = len(x)
    mx = sum(x) / n
    my = sum(y) / n
    xd = [v - mx for v in x]
    yd = [v - my for v in y]
    denom = math.sqrt(sum(v * v for v in xd)) * math.sqrt(
        sum(v * v for v in yd)
    )
    r = sum(a * b for a, b in zip(xd, yd)) / denom
    r = max(-1.0, min(1.0, r))
    return r * r


def _per_subscriber_commune_volumes(
    dataset: Any, direction: str, service_index: int
) -> List[float]:
    """Weekly per-subscriber volume of one service, per commune."""
    tensor = dataset.tensor(direction)
    out = []
    for c in range(dataset.n_communes):
        volume = float(tensor[c, service_index, :].sum())
        out.append(volume / max(float(dataset.users[c]), 1.0))
    return out


def _per_subscriber_service_vector(
    dataset: Any, direction: str, commune: int
) -> List[float]:
    """Weekly per-subscriber volume of every head service in one commune."""
    tensor = dataset.tensor(direction)
    subscribers = max(float(dataset.users[commune]), 1.0)
    return [
        float(tensor[commune, j, :].sum()) / subscribers
        for j in range(dataset.n_head)
    ]


def reference_answer(dataset: Any, query: Query) -> Dict[str, Any]:
    """Answer ``query`` by brute force; same result schema as the engine."""
    validate_query(query, CubeProfile.of(dataset))
    direction = query.direction
    if query.family == "point":
        j = dataset.head_index(query.service)
        return {
            "volume_bytes": _hour_slice(
                dataset, direction, query.commune, j, query.hour
            )
        }
    if query.family == "topk":
        # Accumulate in float64 like the engine's prefix sums do, so
        # near-tied services rank identically in both implementations.
        weekly = [
            sum(
                float(v)
                for v in dataset.tensor(direction)[query.commune, j, :]
            )
            for j in range(dataset.n_head)
        ]
        order = sorted(range(dataset.n_head), key=lambda j: (-weekly[j], j))
        k = min(query.k, dataset.n_head)
        return {
            "ranking": [
                {
                    "service": dataset.head_names[j],
                    "volume_bytes": weekly[j],
                }
                for j in order[:k]
            ]
        }
    if query.family == "range":
        j = dataset.head_index(query.service)
        communes = (
            range(dataset.n_communes)
            if query.commune is None
            else [query.commune]
        )
        total = 0.0
        for c in communes:
            for hour in range(query.hour_start, query.hour_end):
                total += _hour_slice(dataset, direction, c, j, hour)
        return {
            "volume_bytes": total,
            "n_hours": query.hour_end - query.hour_start,
        }
    if query.kind == "service":
        ia, ib = dataset.head_index(query.a), dataset.head_index(query.b)
        if ia == ib:
            return {"r2": 1.0}
        x = _per_subscriber_commune_volumes(dataset, direction, ia)
        y = _per_subscriber_commune_volumes(dataset, direction, ib)
    else:
        if query.a == query.b:
            return {"r2": 1.0}
        x = _per_subscriber_service_vector(dataset, direction, query.a)
        y = _per_subscriber_service_vector(dataset, direction, query.b)
    return {"r2": _r2(x, y)}


__all__ = ["reference_answer"]
