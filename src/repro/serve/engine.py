"""The read-only query engine over a built dataset.

:class:`ServeEngine` wraps one
:class:`~repro.dataset.store.MobileTrafficDataset` and answers the four
query families of :mod:`repro.serve.queries` from indexes precomputed
once at load:

- an hourly cube ``(C, S, 168)`` folded from the dataset's native bin
  resolution, in float64;
- prefix sums along the hour axis (per commune and national), so any
  time-range aggregation is two lookups regardless of span;
- per-commune service rankings (stable descending argsort of weekly
  volumes), so top-k is a slice;
- the per-subscriber volume matrix, from which the paper's pairwise r²
  similarity matrices (service × service and commune × commune, §5 /
  Fig. 10) are materialized lazily per direction on first use.

Results are returned as plain dicts and cached by canonical query key
in an LRU (:mod:`repro.serve.cache`) holding the *encoded* result, so a
hit returns byte-identical output to the miss that populated it.
Answers are a pure function of the dataset bytes — the engine never
reads a clock or an unseeded RNG — which is what makes the load
harness's result digests comparable across runs and worker counts.

Instrumentation (``docs/serving.md``): ``serve.queries`` counts
accepted queries, ``serve.errors`` rejected ones, and
``serve.index_builds`` index constructions (the eager build at load
plus each lazily materialized similarity view).  ``serve.trace_sampled``
counts requests routed through the phase-traced path: sampling is a
pure function of ``(trace_seed, request_id)`` and traced requests
bypass the result cache, so the emitted span structure is identical
for any worker count and cache state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro._time import WEEK_HOURS
from repro._units import MILLIS_PER_SECOND
from repro.core.correlation import pairwise_r2
from repro.dataset.store import MobileTrafficDataset
from repro.obs import clock
from repro.resilience.faults import FaultPlan
from repro.serve.cache import LRUCache
from repro.serve.health import ServeHealth
from repro.serve.queries import (
    CubeProfile,
    Query,
    QueryError,
    encode_canonical,
    validate_query,
)

#: Default result-cache capacity (entries).
DEFAULT_CACHE_CAPACITY = 1024

#: The per-request phases a traced request times, in execution order.
TRACE_PHASES = (
    "serve.request.parse",
    "serve.request.cache_lookup",
    "serve.request.index_scan",
    "serve.request.encode",
)

#: Query families degraded mode may answer stale from the cache.
STALE_SERVABLE_FAMILIES = ("point", "topk")


@dataclass(frozen=True)
class DeadlineExceeded:
    """A latency budget that expired at one phase boundary."""

    phase: str
    deadline_ms: float

    def to_payload(self) -> Dict[str, Any]:
        """The canonical answer body a deadline miss is encoded as."""
        return {
            "error": "deadline_exceeded",
            "phase": self.phase,
            "deadline_ms": self.deadline_ms,
        }


@dataclass(frozen=True)
class ServeResult:
    """One :meth:`ServeEngine.execute` outcome.

    ``status`` is the closed set ``ok`` (fresh or cached answer),
    ``stale`` (degraded-mode cache answer, ``encoded`` carries an
    explicit ``"stale": true`` stamp), ``deadline_exceeded`` (typed
    budget miss, see :class:`DeadlineExceeded`), ``unavailable`` (a
    fault made the indexes unreachable and no stale answer existed),
    and ``invalid`` (the query failed validation).  ``encoded`` is
    always canonical JSON — every status has a well-formed body.
    """

    encoded: str
    status: str
    stale: bool = False
    deadline: Optional[DeadlineExceeded] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def trace_sampled(seed: int, request_id: str, rate: float) -> bool:
    """Pure ``(seed, request_id)`` trace-sampling decision.

    Hashes ``"{seed}:{request_id}"`` with sha256 and compares the first
    8 bytes against ``rate`` scaled to 2**64 — no RNG state, no
    execution order, no worker count involved, so the set of traced
    requests is identical for any partitioning of a schedule.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = hashlib.sha256(f"{seed}:{request_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") < int(rate * 2.0**64)


class ServeEngine:
    """Serve point/topk/range/similarity queries from one dataset."""

    def __init__(
        self,
        dataset: MobileTrafficDataset,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        trace_seed: int = 0,
        trace_sample_rate: float = 0.0,
    ):
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {trace_sample_rate}"
            )
        self.dataset = dataset
        self.profile = CubeProfile.of(dataset)
        self.cache = LRUCache(cache_capacity)
        #: Trace sampling is a pure function of (trace_seed, request_id)
        #: — see :func:`trace_sampled`; rate 0 disables tracing.
        self.trace_seed = trace_seed
        self.trace_sample_rate = trace_sample_rate
        #: Health ladder exported through ``repro-serve stats``
        #: (``docs/robustness.md``, "Serving under overload").
        self.health = ServeHealth()
        #: Serve-path fault plan consulted by :meth:`execute`; ``None``
        #: means no injection (see :meth:`install_faults`).
        self.fault_plan: Optional[FaultPlan] = None
        #: Lazily materialized (direction, kind) -> r² matrix views.
        self._similarity: Dict[Tuple[str, str], np.ndarray] = {}
        with obs.span("serve.index_build"):
            self._build_indexes()
        obs.add("serve.index_builds")

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        trace_seed: int = 0,
        trace_sample_rate: float = 0.0,
    ) -> "ServeEngine":
        """Load a saved dataset archive and index it."""
        return cls(
            MobileTrafficDataset.load(path),
            cache_capacity=cache_capacity,
            trace_seed=trace_seed,
            trace_sample_rate=trace_sample_rate,
        )

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def _build_indexes(self) -> None:
        dataset = self.dataset
        bph = dataset.axis.bins_per_hour
        c, s = dataset.n_communes, dataset.n_head
        #: (C, S, 169) hour-axis prefix sums and (S, 169) national ones,
        #: per direction; index [.., h] holds the volume of hours < h.
        self._cumulative: Dict[str, np.ndarray] = {}
        self._national_cumulative: Dict[str, np.ndarray] = {}
        self._weekly: Dict[str, np.ndarray] = {}
        self._rank_order: Dict[str, np.ndarray] = {}
        for direction in ("dl", "ul"):
            hourly = (
                dataset.tensor(direction)
                .astype(np.float64)
                .reshape(c, s, WEEK_HOURS, bph)
                .sum(axis=3)
            )
            cumulative = np.zeros((c, s, WEEK_HOURS + 1), dtype=np.float64)
            np.cumsum(hourly, axis=2, out=cumulative[:, :, 1:])
            self._cumulative[direction] = cumulative
            self._national_cumulative[direction] = cumulative.sum(axis=0)
            weekly = cumulative[:, :, WEEK_HOURS]
            self._weekly[direction] = weekly
            self._rank_order[direction] = np.argsort(
                -weekly, axis=1, kind="stable"
            )

    def _similarity_matrix(self, direction: str, kind: str) -> np.ndarray:
        """The (a, b) -> r² view, materialized on first use."""
        key = (direction, kind)
        matrix = self._similarity.get(key)
        if matrix is None:
            columns = self.dataset.per_subscriber_matrix(direction)
            if kind == "commune":
                columns = columns.T
            with obs.span("serve.materialize_similarity"):
                matrix = pairwise_r2(columns)
            self._similarity[key] = matrix
            obs.add("serve.index_builds")
        return matrix

    def warm(self, queries: Iterable[Query]) -> None:
        """Materialize every similarity view ``queries`` will touch.

        The load harness calls this before forking workers so lazy view
        construction happens exactly once, in the parent — keeping the
        ``serve.index_builds`` counter independent of the worker count.
        """
        for query in queries:
            if query.family == "similarity":
                self._similarity_matrix(query.direction, query.kind)

    # ------------------------------------------------------------------
    # the query families
    # ------------------------------------------------------------------
    def _answer(self, query: Query) -> Dict[str, Any]:
        dataset = self.dataset
        direction = query.direction
        if query.family == "point":
            j = dataset.head_index(query.service)
            cumulative = self._cumulative[direction]
            volume = (
                cumulative[query.commune, j, query.hour + 1]
                - cumulative[query.commune, j, query.hour]
            )
            return {"volume_bytes": float(volume)}
        if query.family == "topk":
            weekly = self._weekly[direction][query.commune]
            order = self._rank_order[direction][query.commune]
            k = min(query.k, dataset.n_head)
            return {
                "ranking": [
                    {
                        "service": dataset.head_names[j],
                        "volume_bytes": float(weekly[j]),
                    }
                    for j in order[:k].tolist()
                ]
            }
        if query.family == "range":
            j = dataset.head_index(query.service)
            if query.commune is None:
                cumulative = self._national_cumulative[direction][j]
            else:
                cumulative = self._cumulative[direction][query.commune, j]
            volume = cumulative[query.hour_end] - cumulative[query.hour_start]
            return {
                "volume_bytes": float(volume),
                "n_hours": query.hour_end - query.hour_start,
            }
        matrix = self._similarity_matrix(direction, query.kind)
        if query.kind == "service":
            ia = dataset.head_index(query.a)
            ib = dataset.head_index(query.b)
        else:
            ia, ib = query.a, query.b
        return {"r2": float(matrix[ia, ib])}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def query_encoded(
        self, query: Query, request_id: Optional[str] = None
    ) -> str:
        """Answer ``query`` as canonical JSON bytes (the cached form).

        When a ``request_id`` is given and the pure sampler selects it
        (:func:`trace_sampled`), the request runs the phase-traced path
        instead: parse → cache lookup → index scan → encode, each as an
        obs span.  Traced requests **bypass the result cache** — they
        recompute the answer fresh and leave the cache untouched — so
        their span structure never depends on per-worker cache state
        and the event log stays byte-identical across worker counts.
        Cached and uncached answers are byte-identical by construction,
        so bypassing never changes the returned bytes.
        """
        if request_id is not None and trace_sampled(
            self.trace_seed, request_id, self.trace_sample_rate
        ):
            return self._query_traced(query)
        try:
            validate_query(query, self.profile)
        except QueryError:
            obs.add("serve.errors")
            raise
        obs.add("serve.queries")
        key = query.cache_key()
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        encoded = encode_canonical(self._answer(query))
        self.cache.put(key, encoded)
        return encoded

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Arm (or with ``None`` disarm) a serve-path fault plan.

        Consulted only by :meth:`execute`; the plain
        :meth:`query_encoded` path never reads it, so an armed plan
        cannot perturb harness measurement or cached-answer bytes.
        """
        self.fault_plan = plan

    def execute(
        self,
        query: Query,
        request_id: Optional[str] = None,
        attempt: int = 0,
    ) -> ServeResult:
        """Answer ``query`` under its deadline budget and armed faults.

        The overload-safe request path (``docs/serving.md``): never
        raises for an answerable request.  The budget
        (``query.deadline_ms``) is checked at every phase boundary of
        :data:`TRACE_PHASES`; once spent, a typed
        :class:`DeadlineExceeded` answer comes back instead of the
        result.  Injected ``slow_phase`` faults charge their delay
        against the budget without sleeping, so under the harness's
        fake clock the set of deadline hits is a pure function of
        ``(seed, schedule, fault_plan)``.  ``corrupt_cache_entry``
        faults are *detected* via the stored digest (counted on
        ``serve.cache.corrupt_detected``), evicted, and recomputed —
        corrupt bytes are never served.  ``index_unavailable`` faults
        degrade: point/top-k queries with a cached answer come back
        explicitly stamped ``"stale": true``; everything else gets a
        typed ``unavailable`` answer.
        """
        plan = self.fault_plan
        rid = request_id if request_id is not None else ""
        if plan is not None and request_id is not None:
            faults_at = lambda stage: plan.serve_faults_for(  # noqa: E731
                rid, attempt, stage
            )
        else:
            faults_at = lambda stage: ()  # noqa: E731
        budget_s = (
            None
            if query.deadline_ms is None
            else query.deadline_ms / MILLIS_PER_SECOND
        )
        t0 = clock.now_s()
        charged_s = 0.0

        def expired(stage: str) -> bool:
            """Charge this phase's injected delays, then check the budget."""
            nonlocal charged_s
            for fault in faults_at(stage):
                if fault.kind == "slow_phase":
                    charged_s += fault.delay_ms / MILLIS_PER_SECOND
            if budget_s is None:
                return False
            return (clock.now_s() - t0) + charged_s > budget_s

        def deadline_result(stage: str) -> ServeResult:
            obs.add("serve.deadline_exceeded")
            deadline = DeadlineExceeded(
                phase=stage, deadline_ms=float(query.deadline_ms)
            )
            return ServeResult(
                encoded=encode_canonical(deadline.to_payload()),
                status="deadline_exceeded",
                deadline=deadline,
            )

        # -- parse ----------------------------------------------------
        try:
            validate_query(query, self.profile)
        except QueryError as exc:
            obs.add("serve.errors")
            return ServeResult(
                encoded=encode_canonical({"error": str(exc)}),
                status="invalid",
            )
        obs.add("serve.queries")
        if expired("parse"):
            return deadline_result("parse")

        # -- cache lookup ---------------------------------------------
        key = query.cache_key()
        for fault in faults_at("cache_lookup"):
            if fault.kind == "corrupt_cache_entry":
                self.cache.corrupt(key)
        before_corrupt = self.cache.corrupt_detected
        cached = self.cache.get(key)
        detected = self.cache.corrupt_detected - before_corrupt
        if detected:
            obs.add("serve.cache.corrupt_detected", detected)
        if expired("cache_lookup"):
            return deadline_result("cache_lookup")

        # -- index scan -----------------------------------------------
        unavailable = any(
            fault.kind == "index_unavailable"
            for fault in faults_at("index_scan")
        )
        if unavailable:
            self.health.note("degraded")
            if (
                cached is not None
                and query.family in STALE_SERVABLE_FAMILIES
            ):
                obs.add("serve.shed.stale_answers")
                stale_body = json.loads(cached)
                stale_body["stale"] = True
                return ServeResult(
                    encoded=encode_canonical(stale_body),
                    status="stale",
                    stale=True,
                )
            return ServeResult(
                encoded=encode_canonical({"error": "index_unavailable"}),
                status="unavailable",
            )
        if cached is not None:
            return ServeResult(encoded=cached, status="ok")
        answer = self._answer(query)
        if expired("index_scan"):
            return deadline_result("index_scan")

        # -- encode ---------------------------------------------------
        encoded = encode_canonical(answer)
        self.cache.put(key, encoded)
        if expired("encode"):
            return deadline_result("encode")
        return ServeResult(encoded=encoded, status="ok")

    def _query_traced(self, query: Query) -> str:
        """The phase-traced request path (cache-bypassing, see above)."""
        obs.add("serve.trace_sampled")
        with obs.span("serve.request"):
            with obs.span("serve.request.parse"):
                try:
                    validate_query(query, self.profile)
                except QueryError:
                    obs.add("serve.errors")
                    raise
            obs.add("serve.queries")
            with obs.span("serve.request.cache_lookup"):
                query.canonical()
            with obs.span("serve.request.index_scan"):
                answer = self._answer(query)
            with obs.span("serve.request.encode"):
                encoded = encode_canonical(answer)
        return encoded

    def query(self, query: Query) -> Dict[str, Any]:
        """Answer ``query`` as a plain dict.

        Decoded from the canonical encoding, so repeated calls — cached
        or not — return structurally identical objects.
        """
        return json.loads(self.query_encoded(query))


__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "DeadlineExceeded",
    "STALE_SERVABLE_FAMILIES",
    "ServeEngine",
    "ServeResult",
    "TRACE_PHASES",
    "trace_sampled",
]
