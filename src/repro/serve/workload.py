"""Workload models for the serving layer.

Two ways to produce a schedule of timed queries (``docs/serving.md``):

**Poisson generation** — the AsyncFlow workload model: a population of
``mean_active_users`` (Poisson-resampled every
``user_sampling_window_s`` seconds) each issuing
``mean_requests_per_minute_per_user`` requests per minute (Poisson).
Per window the realized request count is drawn, arrival offsets are
uniform within the window, and each request gets a query sampled from
the family mix plus a mode/priority.  The whole schedule is a pure
function of ``(spec, profile, seed)``.

**CSV replay** — Logos-style scheduled request CSVs::

    request_id,arrival_offset,mode,priority,body_json

``arrival_offset`` is float milliseconds from replay start;
``mode`` is ``interactive`` | ``batch`` (default ``interactive``);
``priority`` is ``low`` | ``mid`` | ``high`` (default ``mid``);
``body_json`` is the canonical query JSON; a missing ``request_id`` is
auto-generated in row order.  :func:`render_schedule_csv` /
:func:`parse_schedule_csv` round-trip a schedule exactly, so a
generated workload can be exported, versioned, and replayed.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro._rng import SeedLike, as_generator, spawn
from repro._time import WEEK_HOURS
from repro._units import MILLIS_PER_SECOND
from repro.serve.queries import CubeProfile, Query, parse_query

#: The Logos CSV header (field order is part of the format).
CSV_HEADER = ("request_id", "arrival_offset", "mode", "priority", "body_json")

#: Request modes: user-facing low-latency vs. background batch.
MODES = ("interactive", "batch")

#: Priority levels and their numeric values (higher serves first).
PRIORITY_VALUES = {"low": 1, "mid": 5, "high": 10}

#: Query-family sampling order for :class:`WorkloadSpec.mix`.
MIX_FAMILIES = ("point", "topk", "range", "similarity")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the Poisson workload generator."""

    #: Replay horizon in seconds.
    duration_s: float = 60.0
    #: Mean of the Poisson active-user draw per sampling window.
    mean_active_users: float = 100.0
    #: Mean per-user request rate (requests / minute).
    mean_requests_per_minute_per_user: float = 20.0
    #: Seconds between active-user resamples.
    user_sampling_window_s: float = 60.0
    #: Probability a request is ``interactive`` (else ``batch``).
    interactive_fraction: float = 0.8
    #: Sampling weights over :data:`MIX_FAMILIES`; normalized at use.
    mix: Tuple[float, float, float, float] = (0.35, 0.30, 0.20, 0.15)
    #: Latency budget stamped onto interactive requests' queries
    #: (milliseconds); ``None`` leaves them unbounded.  The budget
    #: travels inside the query's canonical JSON, so exported CSVs
    #: round-trip it (``docs/serving.md``).
    interactive_deadline_ms: Optional[float] = None
    #: Latency budget stamped onto batch requests' queries.
    batch_deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.mean_active_users < 0:
            raise ValueError(
                f"mean_active_users must be >= 0, got {self.mean_active_users}"
            )
        if self.mean_requests_per_minute_per_user < 0:
            raise ValueError(
                "mean_requests_per_minute_per_user must be >= 0, got "
                f"{self.mean_requests_per_minute_per_user}"
            )
        if self.user_sampling_window_s <= 0:
            raise ValueError(
                "user_sampling_window_s must be > 0, got "
                f"{self.user_sampling_window_s}"
            )
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError(
                "interactive_fraction must be in [0, 1], got "
                f"{self.interactive_fraction}"
            )
        if len(self.mix) != len(MIX_FAMILIES) or min(self.mix) < 0 or sum(
            self.mix
        ) <= 0:
            raise ValueError(f"mix must be 4 non-negative weights, got {self.mix}")
        for field_name in ("interactive_deadline_ms", "batch_deadline_ms"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(
                    f"{field_name} must be > 0 or None, got {value}"
                )


@dataclass(frozen=True)
class ScheduledRequest:
    """One timed request of a workload schedule."""

    request_id: str
    #: Milliseconds from the start of the replay.
    arrival_offset_ms: float
    mode: str
    priority: str
    query: Query


def _sample_query(
    rng: np.random.Generator, profile: CubeProfile, mix: np.ndarray
) -> Query:
    family = MIX_FAMILIES[int(rng.choice(len(MIX_FAMILIES), p=mix))]
    direction = "dl" if rng.random() < 0.7 else "ul"
    if family == "point":
        return Query(
            family="point",
            direction=direction,
            commune=int(rng.integers(profile.n_communes)),
            service=profile.head_names[int(rng.integers(profile.n_head))],
            hour=int(rng.integers(WEEK_HOURS)),
        )
    if family == "topk":
        return Query(
            family="topk",
            direction=direction,
            commune=int(rng.integers(profile.n_communes)),
            k=int(rng.integers(1, profile.n_head + 1)),
        )
    if family == "range":
        hour_start = int(rng.integers(WEEK_HOURS))
        hour_end = int(rng.integers(hour_start + 1, WEEK_HOURS + 1))
        commune: Optional[int] = (
            None
            if rng.random() < 0.5
            else int(rng.integers(profile.n_communes))
        )
        return Query(
            family="range",
            direction=direction,
            service=profile.head_names[int(rng.integers(profile.n_head))],
            hour_start=hour_start,
            hour_end=hour_end,
            commune=commune,
        )
    kind = "service" if rng.random() < 0.5 else "commune"
    n = profile.n_head if kind == "service" else profile.n_communes
    if n >= 2:
        ia, ib = (int(i) for i in rng.choice(n, size=2, replace=False))
    else:
        ia = ib = int(rng.integers(n))
    if kind == "service":
        return Query(
            family="similarity",
            direction=direction,
            kind=kind,
            a=profile.head_names[ia],
            b=profile.head_names[ib],
        )
    return Query(
        family="similarity", direction=direction, kind=kind, a=ia, b=ib
    )


def generate_schedule(
    spec: WorkloadSpec, profile: CubeProfile, seed: SeedLike
) -> List[ScheduledRequest]:
    """Realize one Poisson schedule — a pure function of the inputs.

    Emits one ``schedule`` event per sampling window (realized active
    users and request count) and bumps ``serve.load_windows``; both are
    seed-derived, so the event log stays deterministic.
    """
    parent = as_generator(seed)
    rng = spawn(parent, "serve.workload")
    requests: List[ScheduledRequest] = []
    mix = np.asarray(spec.mix, dtype=float)
    mix = mix / mix.sum()
    rate_per_user_s = spec.mean_requests_per_minute_per_user / 60.0
    n_windows = int(np.ceil(spec.duration_s / spec.user_sampling_window_s))
    for window in range(n_windows):
        window_start = window * spec.user_sampling_window_s
        window_len = min(
            spec.user_sampling_window_s, spec.duration_s - window_start
        )
        active_users = int(rng.poisson(spec.mean_active_users))
        expected = active_users * rate_per_user_s * window_len
        n_requests = int(rng.poisson(expected)) if expected > 0 else 0
        offsets = np.sort(
            rng.uniform(window_start, window_start + window_len, n_requests)
        )
        for offset in offsets:
            mode = (
                "interactive"
                if rng.random() < spec.interactive_fraction
                else "batch"
            )
            priority = ("low", "mid", "high")[
                int(rng.choice(3, p=(0.2, 0.6, 0.2)))
            ]
            query = _sample_query(rng, profile, mix)
            deadline_ms = (
                spec.interactive_deadline_ms
                if mode == "interactive"
                else spec.batch_deadline_ms
            )
            if deadline_ms is not None:
                query = replace(query, deadline_ms=float(deadline_ms))
            requests.append(
                ScheduledRequest(
                    request_id=f"req-{len(requests):06d}",
                    arrival_offset_ms=float(offset) * MILLIS_PER_SECOND,
                    mode=mode,
                    priority=priority,
                    query=query,
                )
            )
        obs.log_event(
            "schedule",
            f"window-{window}",
            {"active_users": active_users, "requests": n_requests},
        )
    obs.add("serve.load_windows", n_windows)
    return requests


def render_schedule_csv(requests: List[ScheduledRequest]) -> str:
    """Serialize a schedule in the Logos CSV format."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for request in requests:
        writer.writerow(
            [
                request.request_id,
                str(request.arrival_offset_ms),
                request.mode,
                request.priority,
                request.query.canonical(),
            ]
        )
    return buffer.getvalue()


def parse_schedule_csv(text: str) -> List[ScheduledRequest]:
    """Parse a Logos CSV back into a schedule.

    Optional fields take the format's defaults: a blank ``request_id``
    is generated from the row index, ``mode`` defaults to
    ``interactive`` and ``priority`` to ``mid``.  Malformed rows raise
    ``ValueError`` with the offending row number.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("schedule CSV is empty") from None
    if tuple(header) != CSV_HEADER:
        raise ValueError(
            f"schedule CSV header must be {','.join(CSV_HEADER)!r}, "
            f"got {','.join(header)!r}"
        )
    requests: List[ScheduledRequest] = []
    for row_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(CSV_HEADER):
            raise ValueError(
                f"schedule CSV row {row_number}: expected "
                f"{len(CSV_HEADER)} fields, got {len(row)}"
            )
        request_id, offset_text, mode, priority, body = row
        try:
            offset = float(offset_text)
        except ValueError:
            raise ValueError(
                f"schedule CSV row {row_number}: arrival_offset "
                f"{offset_text!r} is not a number"
            ) from None
        if offset < 0:
            raise ValueError(
                f"schedule CSV row {row_number}: arrival_offset must be "
                f">= 0, got {offset}"
            )
        mode = mode or "interactive"
        if mode not in MODES:
            raise ValueError(
                f"schedule CSV row {row_number}: mode must be one of "
                f"{MODES}, got {mode!r}"
            )
        priority = priority or "mid"
        if priority not in PRIORITY_VALUES:
            raise ValueError(
                f"schedule CSV row {row_number}: priority must be one of "
                f"{tuple(sorted(PRIORITY_VALUES))}, got {priority!r}"
            )
        requests.append(
            ScheduledRequest(
                request_id=request_id or f"req-{len(requests):06d}",
                arrival_offset_ms=offset,
                mode=mode,
                priority=priority,
                query=parse_query(body),
            )
        )
    return requests


__all__ = [
    "CSV_HEADER",
    "MIX_FAMILIES",
    "MODES",
    "PRIORITY_VALUES",
    "ScheduledRequest",
    "WorkloadSpec",
    "generate_schedule",
    "parse_schedule_csv",
    "render_schedule_csv",
]
