"""Open-loop load harness for the serving engine.

Drives a schedule of timed requests (``repro.serve.workload``) against
a :class:`~repro.serve.engine.ServeEngine` and reports latency
percentiles, throughput, cache behaviour, and a measured saturation
point.  Open-loop means arrivals never wait for responses: the schedule
fixes when each request *would* arrive, per-request service times are
measured back-to-back on the real engine, and a deterministic
single-server priority-queue simulation combines the two —
``interactive`` requests are served before queued ``batch`` ones,
higher priorities first within a mode, FIFO within a priority.

Separating measurement from queueing keeps the two contracts clean:

- query **results** are a pure function of ``(dataset bytes,
  schedule)`` — the result digest is byte-identical across runs and
  worker counts;
- **latencies** are wall-clock measurements (timing determinism class)
  surfaced only through the ``serve.*_s`` / ``serve.*_rps`` timing
  gauges, the ``serve.latency.*`` histograms, and the report — never
  through the event log.

Latency accounting is histogram-based and **worker-merge invariant**:
each measured service time is quantized at the measurement site into a
bucket of the declared log-linear layout
(:data:`repro.obs.hist.DEFAULT_LAYOUT`), workers ship bucket indices
(bounded-size integers, not raw float lists), and everything derived —
the queue simulation runs on bucket representatives, the latency
histogram, every reported percentile, and the saturation point — is a
pure function of ``(schedule, bucket indices)``.  Partitioning the same
measurements across 1, 2 or 4 workers therefore yields *identical*
derived results, and merging per-worker histograms is exact integer
addition.  The report carries both histogram-derived percentiles and
exact nearest-rank percentiles of the simulated latencies; the two
agree within one bucket's relative width (``1/subbuckets``), which
``tools/serve_smoke.py`` asserts on every CI run.

The saturation point replays the same quantized service times at
compressed arrival schedules (offered rate × m) and bisects for the
highest offered rate whose simulated p99 (histogram-derived) stays
under a bound — one measurement pass yields the whole latency-vs-load
curve.

With ``n_workers > 1`` the requests are partitioned into contiguous
chunks executed by forked workers (platforms without ``fork`` fall
back to serial); per-chunk metrics — including the per-chunk service
histograms — are captured with :func:`repro.obs.shard_capture` and
absorbed in chunk order, and cache hit/miss totals are replayed
parent-side from the key sequence
(:func:`repro.serve.cache.simulate_hit_flags`), so every metric the
harness emits is independent of the worker count.  Requests selected by
the engine's pure trace sampler bypass the result cache (see
``repro.serve.engine``); the replay models that with a bypass mask, and
one ``trace`` event per sampled request — request id, family, mode, and
the replayed would-be cache outcome — is emitted parent-side in
schedule order.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
import multiprocessing
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro._units import MILLIS_PER_SECOND
from repro.obs import clock
from repro.obs.hist import DEFAULT_LAYOUT, HistogramLayout, LatencyHistogram
from repro.resilience.faults import FaultPlan
from repro.serve.cache import LRUCache, simulate_hit_flags
from repro.serve.engine import (
    STALE_SERVABLE_FAMILIES,
    ServeEngine,
    trace_sampled,
)
from repro.serve.health import ServeHealth
from repro.serve.overload import OverloadPolicy, simulate_overload
from repro.serve.queries import QueryError, encode_canonical
from repro.serve.workload import PRIORITY_VALUES, ScheduledRequest

#: Default saturation bound: simulated p99 must stay under this many
#: multiples of the median measured service time.
SATURATION_P99_SERVICE_MULTIPLE = 50.0

#: Saturation search range: offered-rate multipliers 2**MIN .. 2**MAX.
_SATURATION_MIN_EXP = -4
_SATURATION_MAX_EXP = 12

#: The bucket layout every harness histogram uses.
LAYOUT = DEFAULT_LAYOUT


@dataclass
class LoadReport:
    """Everything one harness run measured (JSON-ready via to_dict)."""

    n_requests: int
    n_errors: int
    #: Schedule horizon (last arrival offset), seconds.
    duration_s: float
    #: Simulated completion of the last request at the native rate.
    makespan_s: float
    #: Histogram-derived (nearest-rank over merged buckets) percentiles.
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    #: Exact nearest-rank percentiles of the simulated latencies — the
    #: histogram values above exceed these by at most one bucket's
    #: relative width (``hist_rel_error_bound``).
    latency_p50_exact_s: float
    latency_p95_exact_s: float
    latency_p99_exact_s: float
    mean_service_s: float
    #: Requests completed per second at the native schedule.
    throughput_rps: float
    #: Requests offered per second by the native schedule.
    offered_rps: float
    #: Highest offered rate whose simulated p99 met the bound.
    saturation_rps: float
    saturation_p99_limit_s: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    #: Requests phase-traced by the pure (seed, request_id) sampler.
    trace_sampled: int
    #: Canonical encodings of the merged latency / service histograms.
    latency_hist: str
    service_hist: str
    #: Per-bucket relative width bound of the histogram layout.
    hist_rel_error_bound: float
    #: sha256 over (request_id, encoded result) in schedule order.
    result_digest: str
    by_mode: Dict[str, Dict[str, Any]]
    #: Overload section (admission control, shed/deadline sets, health)
    #: — present only when the harness ran with an
    #: :class:`~repro.serve.overload.OverloadPolicy`, so reports of
    #: overload-free runs stay byte-identical to pre-overload builds.
    overload: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_exact_s": self.latency_p50_exact_s,
            "latency_p95_exact_s": self.latency_p95_exact_s,
            "latency_p99_exact_s": self.latency_p99_exact_s,
            "mean_service_s": self.mean_service_s,
            "throughput_rps": self.throughput_rps,
            "offered_rps": self.offered_rps,
            "saturation_rps": self.saturation_rps,
            "saturation_p99_limit_s": self.saturation_p99_limit_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "trace_sampled": self.trace_sampled,
            "latency_hist": self.latency_hist,
            "service_hist": self.service_hist,
            "hist_rel_error_bound": self.hist_rel_error_bound,
            "result_digest": self.result_digest,
            "by_mode": self.by_mode,
        }
        if self.overload is not None:
            out["overload"] = self.overload
        return out


def simulate_queue(
    arrivals_s: np.ndarray,
    service_s: np.ndarray,
    modes: Sequence[str],
    priorities: Sequence[str],
) -> np.ndarray:
    """Latency of each request under a single-server priority queue.

    Non-preemptive: whenever the server frees, the arrived-but-unserved
    request with the best ``(interactive-first, priority desc, arrival,
    index)`` key is served next.  Pure — the only inputs are the
    schedule and the per-request service times.
    """
    n = len(arrivals_s)
    latencies = np.zeros(n, dtype=np.float64)
    if n == 0:
        return latencies
    order = np.argsort(arrivals_s, kind="stable")
    heap: List[Tuple[int, int, float, int]] = []
    next_arrival = 0
    now = 0.0
    for _ in range(n):
        if not heap:
            now = max(now, float(arrivals_s[order[next_arrival]]))
        while (
            next_arrival < n
            and float(arrivals_s[order[next_arrival]]) <= now
        ):
            i = int(order[next_arrival])
            heapq.heappush(
                heap,
                (
                    0 if modes[i] == "interactive" else 1,
                    -PRIORITY_VALUES[priorities[i]],
                    float(arrivals_s[i]),
                    i,
                ),
            )
            next_arrival += 1
        i = heapq.heappop(heap)[-1]
        now += float(service_s[i])
        latencies[i] = now - float(arrivals_s[i])
    return latencies


def histogram_of(
    values: np.ndarray, layout: HistogramLayout = DEFAULT_LAYOUT
) -> LatencyHistogram:
    """Bucket an array of non-negative values into a fresh histogram."""
    hist = LatencyHistogram(layout)
    for value in values:
        hist.observe(float(value))
    return hist


def nearest_rank(values: np.ndarray, q: float) -> float:
    """Exact nearest-rank percentile (rank ``ceil(q/100 * n)``).

    The rank convention the histogram percentile uses, so the two are
    directly comparable under the per-bucket error bound.
    """
    if values.size == 0:
        return 0.0
    rank = max(1, math.ceil(q * values.size / 100.0))
    return float(np.partition(values, rank - 1)[rank - 1])


def find_saturation_rps(
    arrivals_s: np.ndarray,
    service_s: np.ndarray,
    modes: Sequence[str],
    priorities: Sequence[str],
    p99_limit_s: float,
) -> float:
    """Highest offered rate (req/s) whose simulated p99 meets the bound.

    Replays the (quantized) service times at compressed schedules
    (arrivals divided by a multiplier) over a coarse power-of-two sweep
    plus a bisection refinement; each probe's p99 is histogram-derived,
    so the whole curve is a pure function of the schedule and the
    service-time buckets.  Returns 0.0 when even the slowest probed
    rate violates the bound.
    """
    n = len(arrivals_s)
    if n == 0:
        return 0.0
    horizon = max(float(arrivals_s.max()), 1e-9)

    def p99_at(multiplier: float) -> float:
        scaled = arrivals_s / multiplier
        latencies = simulate_queue(scaled, service_s, modes, priorities)
        return histogram_of(latencies).percentile(99.0)

    low: Optional[float] = None
    high: Optional[float] = None
    for exponent in range(_SATURATION_MIN_EXP, _SATURATION_MAX_EXP + 1):
        multiplier = 2.0**exponent
        if p99_at(multiplier) <= p99_limit_s:
            low = multiplier
        else:
            high = multiplier
            break
    if low is None:
        return 0.0
    if high is not None:
        for _ in range(12):
            mid = (low + high) / 2.0
            if p99_at(mid) <= p99_limit_s:
                low = mid
            else:
                high = mid
    return n * low / horizon


def _overload_section(
    policy: OverloadPolicy,
    requests: List[ScheduledRequest],
    arrivals_s: np.ndarray,
    service_s: np.ndarray,
    modes: Sequence[str],
    priorities: Sequence[str],
    results: List[str],
    sampled: Sequence[bool],
    keys: Sequence[str],
    cache_capacity: int,
    fault_plan: Optional[FaultPlan],
    duration_s: float,
) -> Dict[str, Any]:
    """The overload section of the report — a pure parent-side replay.

    Inputs are the schedule, the quantized service times, the blind
    measurement pass's encoded results, and the (policy, fault plan)
    pair; nothing here reads a clock or executes a query, so the whole
    section — shed set, deadline-exceeded set, stale answers, health
    transitions, latency figures — is byte-identical for any worker
    count (``docs/serving.md``).

    The replay models the engine's overload-safe path: shed requests
    never touch the cache (stale answers for point/top-k read it
    without refreshing recency), deadline misses carry no payload,
    ``index_unavailable`` faults degrade to stale/unavailable answers,
    and ``corrupt_cache_entry`` faults are detected via the stored
    digest, counted, and recomputed — never answered corrupt.
    """
    n = len(requests)
    request_ids = [request.request_id for request in requests]
    deadlines_s: List[Optional[float]] = [
        None
        if request.query.deadline_ms is None
        else request.query.deadline_ms / MILLIS_PER_SECOND
        for request in requests
    ]
    outcome = simulate_overload(
        policy,
        arrivals_s,
        service_s,
        modes,
        priorities,
        request_ids,
        deadlines_s,
        fault_plan,
    )

    cache = LRUCache(cache_capacity)
    shed_ids: List[str] = []
    deadline_ids: List[str] = []
    stale_ids: List[str] = []
    unavailable_ids: List[str] = []
    answered_ids: List[str] = []
    hits = misses = 0
    # Fresh result payloads and explicitly-stale degraded answers are
    # digested *separately*: a shed or deadline-exceeded request never
    # contributes to the result-payload digest (the property
    # tests/unit/serve/test_load.py pins), while its stale answer — if
    # degraded mode produced one — is accounted on its own digest.
    payload_digest = hashlib.sha256()
    stale_digest = hashlib.sha256()

    def _fold(digest: "hashlib._Hash", request_id: str, payload: str) -> None:
        digest.update(request_id.encode("utf-8"))
        digest.update(b" ")
        digest.update(payload.encode("utf-8"))
        digest.update(b"\n")

    def contribute(request_id: str, payload: str) -> None:
        answered_ids.append(request_id)
        _fold(payload_digest, request_id, payload)

    def contribute_stale(request_id: str, cached: str) -> None:
        stale_ids.append(request_id)
        stale_body = json.loads(cached)
        stale_body["stale"] = True
        _fold(stale_digest, request_id, encode_canonical(stale_body))

    for i, request in enumerate(requests):
        rid = request_ids[i]
        key = keys[i]
        faults = (
            fault_plan.serve_faults_for(rid)
            if fault_plan is not None
            else ()
        )
        if outcome.shed_cause[i] is not None:
            shed_ids.append(rid)
            if request.query.family in STALE_SERVABLE_FAMILIES:
                cached = cache.peek(key)
                if cached is not None:
                    contribute_stale(rid, cached)
            continue
        if outcome.deadline_exceeded[i]:
            # The typed deadline answer carries no result payload.
            deadline_ids.append(rid)
            continue
        for fault in faults:
            if fault.kind == "corrupt_cache_entry":
                cache.corrupt(key)
        if any(f.kind == "index_unavailable" for f in faults):
            cached = cache.peek(key)
            if (
                cached is not None
                and request.query.family in STALE_SERVABLE_FAMILIES
            ):
                contribute_stale(rid, cached)
            else:
                unavailable_ids.append(rid)
            continue
        if sampled[i]:
            # Trace-sampled requests bypass the cache (see the engine).
            contribute(rid, results[i])
            continue
        cached = cache.get(key)
        if cached is None:
            misses += 1
            cache.put(key, results[i])
            contribute(rid, results[i])
        else:
            hits += 1
            contribute(rid, cached)

    n_shed = len(shed_ids)
    admitted_mask = np.asarray(outcome.admitted, dtype=bool)
    admitted_latencies = outcome.latencies_s[admitted_mask]
    admitted_hist = histogram_of(admitted_latencies)
    admitted_p50, admitted_p99 = admitted_hist.percentiles((50.0, 99.0))
    goodput = len(answered_ids) / duration_s if duration_s > 0 else 0.0
    shed_rate = n_shed / n if n else 0.0

    health = ServeHealth()
    path = [health.state]
    if stale_ids or unavailable_ids:
        if health.note("degraded"):
            path.append(health.state)
    if n_shed:
        if health.note("shedding"):
            path.append(health.state)
    obs.set_gauge("serve.health.state", health.level)

    obs.add("serve.shed.requests", n_shed)
    obs.add("serve.shed.rate_limited", outcome.shed_count("rate_limited"))
    obs.add("serve.shed.queue_full", outcome.shed_count("queue_full"))
    obs.add("serve.shed.stale_answers", len(stale_ids))
    obs.add("serve.deadline_exceeded", len(deadline_ids))
    obs.add("serve.cache.corrupt_detected", cache.corrupt_detected)
    obs.set_gauge("serve.shed.rate", shed_rate)
    obs.set_gauge("serve.overload.goodput_rps", goodput)
    obs.set_gauge("serve.overload.admitted_p99_s", admitted_p99)

    return {
        "policy": {
            "seed": policy.seed,
            "queue_capacity": policy.queue_capacity,
            "tokens_per_s": policy.tokens_per_s,
            "token_burst": policy.token_burst,
        },
        "n_admitted": int(admitted_mask.sum()),
        "n_shed": n_shed,
        "shed_rate": shed_rate,
        "shed_rate_limited": outcome.shed_count("rate_limited"),
        "shed_queue_full": outcome.shed_count("queue_full"),
        "shed_requests": shed_ids,
        "n_deadline_exceeded": len(deadline_ids),
        "deadline_exceeded": deadline_ids,
        "stale_answers": stale_ids,
        "unavailable": unavailable_ids,
        "answered": answered_ids,
        "cache_hits": hits,
        "cache_misses": misses,
        "corrupt_detected": cache.corrupt_detected,
        "goodput_rps": goodput,
        "admitted_p50_s": admitted_p50,
        "admitted_p99_s": admitted_p99,
        "admitted_latency_hist": admitted_hist.encode(),
        "health": {
            "state": health.state,
            "level": health.level,
            "transitions": health.transitions,
            "path": path,
        },
        "payload_digest": payload_digest.hexdigest(),
        "stale_digest": stale_digest.hexdigest(),
    }


# Installed once per forked worker by the pool initializer; the parent
# never assigns it.
_WORKER_STATE: Optional[Tuple[ServeEngine, List[ScheduledRequest]]] = None


def _init_worker(engine: ServeEngine, requests: List[ScheduledRequest]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (engine, requests)


def _execute_range(
    engine: ServeEngine,
    requests: List[ScheduledRequest],
    start: int,
    stop: int,
) -> Tuple[List[str], List[int], int]:
    """Execute requests [start, stop); returns (results, buckets, errors).

    Each measured service time is quantized into its histogram bucket
    *here*, at the measurement site: downstream derivations see only
    bucket indices, which is what makes them partition-invariant.
    """
    results: List[str] = []
    buckets: List[int] = []
    errors = 0
    for request in requests[start:stop]:
        t0 = clock.now_s()
        try:
            encoded = engine.query_encoded(
                request.query, request_id=request.request_id
            )
        except QueryError as exc:
            encoded = encode_canonical({"error": str(exc)})
            errors += 1
        elapsed = clock.now_s() - t0
        obs.observe("serve.latency.service_seconds", elapsed)
        buckets.append(LAYOUT.bucket_index(elapsed))
        results.append(encoded)
    return results, buckets, errors


def _worker_execute(task: Tuple[int, int]) -> Dict[str, Any]:
    state = _WORKER_STATE
    assert state is not None, "worker invoked without harness state"
    engine, requests = state
    start, stop = task
    with obs.shard_capture(f"serve.chunk{start}") as capture:
        results, buckets, errors = _execute_range(
            engine, requests, start, stop
        )
    return {
        "results": results,
        "buckets": buckets,
        "errors": errors,
        "obs": capture.export,
    }


def _execute_schedule(
    engine: ServeEngine,
    requests: List[ScheduledRequest],
    n_workers: int,
) -> Tuple[List[str], List[int], int]:
    n = len(requests)
    if n_workers <= 1 or n < 2:
        return _execute_range(engine, requests, 0, n)
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return _execute_range(engine, requests, 0, n)
    bounds = np.linspace(0, n, min(n_workers, n) + 1).astype(int)
    tasks = [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    ]
    with context.Pool(
        processes=len(tasks),
        initializer=_init_worker,
        initargs=(engine, requests),
    ) as pool:
        chunks = pool.map(_worker_execute, tasks)
    results: List[str] = []
    buckets: List[int] = []
    errors = 0
    for chunk in chunks:
        obs.absorb_shard(chunk["obs"])
        results.extend(chunk["results"])
        buckets.extend(chunk["buckets"])
        errors += int(chunk["errors"])
    return results, buckets, errors


def run_load(
    engine: ServeEngine,
    requests: List[ScheduledRequest],
    n_workers: int = 1,
    saturation_p99_limit_s: Optional[float] = None,
    overload: Optional[OverloadPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> LoadReport:
    """Execute a schedule and measure the serving engine under it.

    See the module docstring for the measurement model.  All ``serve.*``
    metrics the harness emits are worker-count independent; the latency
    and rate figures are wall-clock (timing class) by nature, but once
    the per-request measurements are fixed (as bucket indices) every
    derived figure — percentiles, throughput, saturation — is a pure
    function of ``(schedule, buckets)`` and identical for any worker
    count.

    With an :class:`~repro.serve.overload.OverloadPolicy` (and
    optionally a serve-path :class:`~repro.resilience.faults.FaultPlan`)
    the report gains an ``overload`` section: the measurement pass
    stays overload-blind, and admission control, shedding, deadlines,
    degraded-mode stale answers, and fault effects are replayed
    parent-side (:func:`_overload_section`) — so the section inherits
    the same worker-count invariance.  A fault plan without an explicit
    policy runs under the default :class:`OverloadPolicy`.
    """
    if overload is None and fault_plan is not None:
        overload = OverloadPolicy()
    engine.warm(request.query for request in requests)
    results, buckets, errors = _execute_schedule(engine, requests, n_workers)
    obs.add("serve.load_requests", len(requests))
    for request in requests:
        obs.log_event(
            "request",
            request.request_id,
            {
                "family": request.query.family,
                "mode": request.mode,
                "priority": request.priority,
            },
        )

    n = len(requests)
    arrivals_s = np.asarray(
        [request.arrival_offset_ms / MILLIS_PER_SECOND for request in requests],
        dtype=np.float64,
    )
    modes = [request.mode for request in requests]
    priorities = [request.priority for request in requests]

    # Quantized service times: bucket representatives, so the queue
    # simulation (and everything after it) is partition-invariant.
    service_hist = LatencyHistogram(LAYOUT)
    for bucket in buckets:
        service_hist.observe_bucket(bucket)
    service_s = np.asarray(
        [LAYOUT.representative(bucket) for bucket in buckets],
        dtype=np.float64,
    )
    latencies = simulate_queue(arrivals_s, service_s, modes, priorities)
    latency_hist = histogram_of(latencies)
    p50, p95, p99 = latency_hist.percentiles((50.0, 95.0, 99.0))
    mean_latency = float(latencies.mean()) if n else 0.0
    obs.merge_histogram("serve.latency.seconds", latency_hist)

    mean_service = float(service_s.mean()) if n else 0.0
    if saturation_p99_limit_s is None:
        saturation_p99_limit_s = SATURATION_P99_SERVICE_MULTIPLE * (
            float(np.median(service_s)) if n else 0.0
        )
    duration_s = float(arrivals_s.max()) if n else 0.0
    makespan_s = (
        float((arrivals_s + latencies).max()) if n else 0.0
    )
    throughput = n / makespan_s if makespan_s > 0 else 0.0
    offered = n / duration_s if duration_s > 0 else 0.0
    saturation = (
        find_saturation_rps(
            arrivals_s, service_s, modes, priorities, saturation_p99_limit_s
        )
        if n
        else 0.0
    )

    # Pure replay of the trace sampler and the cache: which requests
    # bypassed the cache, and what the rest hit or missed — identical
    # for any worker count.
    sampled = [
        trace_sampled(
            engine.trace_seed, request.request_id, engine.trace_sample_rate
        )
        for request in requests
    ]
    n_sampled = sum(sampled)
    # The engine caches by deadline-free key (deadlines never change
    # what an answer is); identical to canonical() when no deadline.
    keys = [request.query.cache_key() for request in requests]
    flags = simulate_hit_flags(keys, engine.cache.capacity, bypass=sampled)
    hits = sum(1 for flag in flags if flag is True)
    misses = sum(1 for flag in flags if flag is False)
    hit_rate = hits / n if n else 0.0
    if n_sampled:
        would_be = simulate_hit_flags(keys, engine.cache.capacity)
        for request, is_sampled, flag in zip(requests, sampled, would_be):
            if is_sampled:
                obs.log_event(
                    "trace",
                    request.request_id,
                    {
                        "family": request.query.family,
                        "mode": request.mode,
                        "cache": "hit" if flag else "miss",
                    },
                )
    obs.add("serve.cache_hits", hits)
    obs.add("serve.cache_misses", misses)
    obs.set_gauge("serve.cache_hit_rate", hit_rate)
    obs.set_gauge("serve.latency_p50_s", p50)
    obs.set_gauge("serve.latency_p95_s", p95)
    obs.set_gauge("serve.latency_p99_s", p99)
    obs.set_gauge("serve.throughput_rps", throughput)
    obs.set_gauge("serve.saturation_rps", saturation)
    # Always export the health rung so ``repro-serve stats`` renders the
    # ladder even for overload-free runs; the overload replay (below)
    # overwrites it with the simulated end-of-run state.
    obs.set_gauge("serve.health.state", engine.health.level)

    digest = hashlib.sha256()
    for request, encoded in zip(requests, results):
        digest.update(request.request_id.encode("utf-8"))
        digest.update(b" ")
        digest.update(encoded.encode("utf-8"))
        digest.update(b"\n")

    by_mode: Dict[str, Dict[str, Any]] = {}
    for mode in ("interactive", "batch"):
        mask = np.asarray([m == mode for m in modes], dtype=bool)
        if mask.any():
            by_mode[mode] = {
                "requests": int(mask.sum()),
                "latency_p99_s": histogram_of(latencies[mask]).percentile(
                    99.0
                ),
            }

    overload_section = (
        _overload_section(
            overload,
            requests,
            arrivals_s,
            service_s,
            modes,
            priorities,
            results,
            sampled,
            keys,
            engine.cache.capacity,
            fault_plan,
            duration_s,
        )
        if overload is not None
        else None
    )

    return LoadReport(
        n_requests=n,
        n_errors=errors,
        duration_s=duration_s,
        makespan_s=makespan_s,
        latency_p50_s=p50,
        latency_p95_s=p95,
        latency_p99_s=p99,
        latency_mean_s=mean_latency,
        latency_p50_exact_s=nearest_rank(latencies, 50.0),
        latency_p95_exact_s=nearest_rank(latencies, 95.0),
        latency_p99_exact_s=nearest_rank(latencies, 99.0),
        mean_service_s=mean_service,
        throughput_rps=throughput,
        offered_rps=offered,
        saturation_rps=saturation,
        saturation_p99_limit_s=float(saturation_p99_limit_s),
        cache_hits=hits,
        cache_misses=misses,
        cache_hit_rate=hit_rate,
        trace_sampled=n_sampled,
        latency_hist=latency_hist.encode(),
        service_hist=service_hist.encode(),
        hist_rel_error_bound=LAYOUT.relative_error_bound,
        result_digest=digest.hexdigest(),
        by_mode=by_mode,
        overload=overload_section,
    )


__all__ = [
    "LAYOUT",
    "LoadReport",
    "SATURATION_P99_SERVICE_MULTIPLE",
    "find_saturation_rps",
    "histogram_of",
    "nearest_rank",
    "run_load",
    "simulate_queue",
]
