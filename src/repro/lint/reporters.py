"""Finding reporters: text for humans, JSON for tooling."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.engine import Finding


def render_text(findings: Sequence[Finding], baselined: int = 0) -> str:
    """``file:line:col: CODE message`` lines plus a summary line."""
    lines: List[str] = [f.format() for f in findings]
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Machine-readable report with the same content as the text form."""
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
        "count": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2)


__all__ = ["render_text", "render_json"]
