"""Finding reporters: text for humans, JSON for tooling, SARIF for CI.

All three are deterministic — sorted content, no timestamps — so
repeated runs over an unchanged tree are byte-identical (the property
``tests/unit/lint/test_program.py`` pins and the CI lint job relies
on when uploading SARIF).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding], baselined: int = 0) -> str:
    """``file:line:col: CODE message`` lines plus a summary line."""
    lines: List[str] = [f.format() for f in findings]
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Machine-readable report with the same content as the text form."""
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
        "count": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2)


def _rule_catalog() -> List[Dict[str, Any]]:
    """SARIF rule metadata for every known code, sorted by code."""
    from repro.lint.program import PROGRAM_RULES
    from repro.lint.rules import default_rules

    rules = [
        {
            "id": "RPL000",
            "name": "parse-failure",
            "shortDescription": {"text": "file does not parse"},
        }
    ]
    for rule in default_rules():
        rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
            }
        )
    for rule in PROGRAM_RULES:
        rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
            }
        )
    return sorted(rules, key=lambda r: r["id"])


def render_sarif(findings: Sequence[Finding], baselined: int = 0) -> str:
    """SARIF 2.1.0 log of the findings (one run, one result each).

    ``partialFingerprints`` carries the baseline fingerprint, so SARIF
    consumers deduplicate results across commits exactly the way the
    baseline does.
    """
    results: List[Dict[str, Any]] = []
    for f in findings:
        result: Dict[str, Any] = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        if f.fingerprint:
            result["partialFingerprints"] = {
                "reproLint/v2": f.fingerprint
            }
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_catalog(),
                    }
                },
                "properties": {"baselined": baselined},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_json", "render_sarif", "render_text"]
