"""The repo-specific lint rules.

Each rule carries a stable code (``RPLxxx``), registers
``visit_<NodeType>`` handlers with the single-walk engine, and scopes
itself via :meth:`Rule.applies_to`.  The contracts the rules enforce are
documented in ``docs/determinism.md``; the short version:

- all randomness flows through :mod:`repro._rng` spawned streams,
- simulation time comes from :mod:`repro._time`, never the wall clock,
- byte/bit quantities use :mod:`repro._units` constants,
- nothing in the pipeline may depend on unordered iteration.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.engine import FileContext, parent_of


class Rule:
    """Base class: a code, a name, and node-visitor handlers."""

    code: str = "RPL999"
    name: str = "abstract"
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class RngDisciplineRule(Rule):
    """RPL101 — randomness must flow through ``repro._rng``.

    Flags ``np.random.*`` calls (``default_rng``, ``seed``, and
    module-level draws like ``np.random.normal``) and any use of the
    stdlib :mod:`random` module, everywhere except ``repro/_rng.py``
    itself and its contract test.  Generators are obtained with
    :func:`repro._rng.as_generator` and derived with
    :func:`repro._rng.spawn`, which is what keeps sharded builds
    bit-identical.
    """

    code = "RPL101"
    name = "rng-discipline"
    summary = "np.random.* call or stdlib random outside repro._rng"

    _EXEMPT_SUFFIXES = ("repro/_rng.py", "tests/unit/test_rng.py")

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.relpath.endswith(self._EXEMPT_SUFFIXES)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if (
            chain
            and len(chain) >= 3
            and chain[0] in ("np", "numpy")
            and chain[1] == "random"
        ):
            ctx.report(
                node,
                self.code,
                f"call to {'.'.join(chain)} outside repro._rng — use "
                "repro._rng.as_generator / spawn for seeded streams",
            )

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                ctx.report(
                    node,
                    self.code,
                    "stdlib random is banned — use repro._rng generators",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level == 0 and node.module in ("random", "numpy.random"):
            ctx.report(
                node,
                self.code,
                f"import from {node.module} outside repro._rng — use "
                "repro._rng generators",
            )


class RngAnnotationRule(Rule):
    """RPL102 — RNG-taking package functions must annotate their streams.

    A parameter named ``rng`` must be annotated ``np.random.Generator``;
    a parameter named ``seed`` must be annotated ``SeedLike`` (or a plain
    ``int`` for top-level conveniences).  Uniform annotations are what
    make ``SeedLike`` handling greppable and keep ad-hoc reseeding out.
    """

    code = "RPL102"
    name = "rng-annotation"
    summary = "rng/seed parameter missing its Generator/SeedLike annotation"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotation = (
                ast.unparse(arg.annotation) if arg.annotation is not None else None
            )
            if arg.arg == "rng":
                if annotation is None:
                    ctx.report(
                        arg,
                        self.code,
                        "parameter 'rng' must be annotated np.random.Generator",
                    )
                elif "Generator" not in annotation:
                    ctx.report(
                        arg,
                        self.code,
                        f"parameter 'rng: {annotation}' should be "
                        "np.random.Generator",
                    )
            elif arg.arg == "seed":
                if annotation is None:
                    ctx.report(
                        arg,
                        self.code,
                        "parameter 'seed' must be annotated SeedLike",
                    )
                elif "SeedLike" not in annotation and "int" not in annotation:
                    ctx.report(
                        arg,
                        self.code,
                        f"parameter 'seed: {annotation}' should be SeedLike",
                    )


class WallClockRule(Rule):
    """RPL103 — simulation code never reads the wall clock.

    ``datetime.now``/``utcnow``/``today`` and ``time.time``/
    ``monotonic``/``perf_counter`` make reruns irreproducible; simulation
    time is the :class:`repro._time.TimeAxis` hour-of-week model.  The
    one sanctioned exception is ``repro/obs/clock.py``: observability
    span timings *measure* the pipeline without feeding it, and every
    wall-clock read of the package is funnelled through that shim (its
    outputs are tagged ``timing`` and excluded from determinism
    comparisons — see ``docs/observability.md``).
    """

    code = "RPL103"
    name = "wall-clock"
    summary = "wall-clock read in simulation code (use repro._time)"

    _EXEMPT_SUFFIXES = ("repro/obs/clock.py",)

    _TIME_FUNCS = frozenset(
        {
            "time",
            "monotonic",
            "perf_counter",
            "time_ns",
            "monotonic_ns",
            "perf_counter_ns",
        }
    )
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_src and not ctx.relpath.endswith(self._EXEMPT_SUFFIXES)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        chain = _attr_chain(node.func)
        if not chain or len(chain) < 2:
            return
        if chain[0] == "time" and chain[-1] in self._TIME_FUNCS:
            ctx.report(
                node,
                self.code,
                f"wall-clock call {'.'.join(chain)} — simulation time "
                "comes from repro._time",
            )
        elif chain[-1] in self._DATETIME_FUNCS and any(
            part in ("datetime", "date") for part in chain[:-1]
        ):
            ctx.report(
                node,
                self.code,
                f"wall-clock call {'.'.join(chain)} — simulation time "
                "comes from repro._time",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level == 0 and node.module == "time":
            banned = [a.name for a in node.names if a.name in self._TIME_FUNCS]
            if banned:
                ctx.report(
                    node,
                    self.code,
                    f"import of wall-clock function(s) {', '.join(banned)} "
                    "from time — simulation time comes from repro._time",
                )


class MutableDefaultRule(Rule):
    """RPL104 — no mutable default arguments.

    The default is evaluated once at ``def`` time and shared across
    calls — the exact bug class that made the pre-PR-1 builders leak
    state between runs.  Use ``None`` and materialize inside the body.
    """

    code = "RPL104"
    name = "mutable-default"
    summary = "mutable default argument (shared across calls)"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
    )
    _MUTABLE_NP_ATTRS = frozenset(
        {"zeros", "ones", "empty", "full", "array", "arange"}
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.AST, ctx: FileContext) -> None:
        defaults = [
            *node.args.defaults,
            *(d for d in node.args.kw_defaults if d is not None),
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                ctx.report(
                    default,
                    self.code,
                    "mutable default argument — use None and build inside",
                )
            elif isinstance(default, ast.Call):
                func = default.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._MUTABLE_CALLS
                ) or (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTABLE_NP_ATTRS
                ):
                    ctx.report(
                        default,
                        self.code,
                        "mutable default argument (constructor call evaluated "
                        "once at def time) — use None and build inside",
                    )


class NondetIterationRule(Rule):
    """RPL105 — no order-dependent iteration over unordered collections.

    Iterating a ``set``/``frozenset`` (or an ``os.listdir`` result) lets
    hash-order reach output; wrap in ``sorted(...)`` to fix the order.
    Membership tests and set-to-set operations are fine.
    """

    code = "RPL105"
    name = "nondet-iteration"
    summary = "iteration over a set/os.listdir without sorted(...)"

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            chain = _attr_chain(func)
            if chain and chain[-1] == "listdir":
                return True
        return False

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if self._is_unordered(node.iter):
            ctx.report(
                node.iter,
                self.code,
                "iterating an unordered collection — wrap in sorted(...)",
            )

    def visit_comprehension(
        self, node: ast.comprehension, ctx: FileContext
    ) -> None:
        # Set-to-set comprehensions are order-free; anything that builds
        # an ordered result (list/dict/generator) from a set is not.
        if isinstance(parent_of(node), ast.SetComp):
            return
        if self._is_unordered(node.iter):
            ctx.report(
                node.iter,
                self.code,
                "comprehension over an unordered collection — wrap in "
                "sorted(...)",
            )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in self._MATERIALIZERS
            and node.args
            and self._is_unordered(node.args[0])
        ):
            ctx.report(
                node,
                self.code,
                f"{node.func.id}() over an unordered collection — use "
                "sorted(...) to pin the order",
            )


class MagicUnitRule(Rule):
    """RPL106 — byte/bit scale factors come from ``repro._units``.

    Multiplying or dividing by a bare ``1024``/``1e6``/``1e9`` hides the
    unit system (decimal vs binary) the quantity lives in; the named
    constants (``KB``/``MB``/``GB``/``MICROS_PER_SECOND``) make it
    explicit.  Module-level ALL_CAPS constant definitions are exempt —
    that is exactly how a new named unit is introduced.
    """

    code = "RPL106"
    name = "magic-unit"
    summary = "multiply/divide by a magic unit constant (use repro._units)"

    _MAGIC = (
        1000,
        1024,
        1_000_000,
        1_048_576,
        1_000_000_000,
        1_073_741_824,
        1_000_000_000_000,
        1_099_511_627_776,
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_src and ctx.filename != "_units.py"

    @classmethod
    def _in_module_constant(cls, node: ast.AST) -> bool:
        current: Optional[ast.AST] = node
        while current is not None:
            parent = parent_of(current)
            if isinstance(current, (ast.Assign, ast.AnnAssign)) and isinstance(
                parent, ast.Module
            ):
                targets = (
                    current.targets
                    if isinstance(current, ast.Assign)
                    else [current.target]
                )
                return all(
                    isinstance(t, ast.Name) and t.id.isupper() for t in targets
                )
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            current = parent
        return False

    def visit_BinOp(self, node: ast.BinOp, ctx: FileContext) -> None:
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for operand in (node.left, node.right):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
                and any(operand.value == magic for magic in self._MAGIC)
                and not self._in_module_constant(node)
            ):
                ctx.report(
                    operand,
                    self.code,
                    f"magic unit constant {operand.value!r} — use a named "
                    "constant from repro._units",
                )


class FloatEqualityRule(Rule):
    """RPL107 — no bare float-literal equality in tests.

    ``assert x == 0.1`` silently depends on binary representation and on
    every upstream operation being exact; use ``pytest.approx``,
    ``math.isclose`` or ``np.testing.assert_allclose``.  Integral float
    literals (``== 3.0``) are allowed: they assert exact constructions.
    """

    code = "RPL107"
    name = "float-equality"
    summary = "equality against a non-integral float literal in a test"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_tests

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left, *node.comparators]:
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                and not operand.value.is_integer()
            ):
                ctx.report(
                    node,
                    self.code,
                    f"bare float equality against {operand.value!r} — use "
                    "pytest.approx / math.isclose",
                )
                return


def default_rules() -> List[Rule]:
    """The full rule set, in code order."""
    return [
        RngDisciplineRule(),
        RngAnnotationRule(),
        WallClockRule(),
        MutableDefaultRule(),
        NondetIterationRule(),
        MagicUnitRule(),
        FloatEqualityRule(),
    ]


__all__ = [
    "Rule",
    "RngDisciplineRule",
    "RngAnnotationRule",
    "WallClockRule",
    "MutableDefaultRule",
    "NondetIterationRule",
    "MagicUnitRule",
    "FloatEqualityRule",
    "default_rules",
]
