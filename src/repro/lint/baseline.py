"""Grandfathered-finding baseline (fingerprint-based, version 2).

The baseline records the **fingerprint** of every accepted finding —
a stable hash of ``(relpath, code, normalized source line)`` computed
by :func:`repro.lint.engine.finding_fingerprint`.  A run is clean when
every finding's fingerprint is covered; two different findings in one
file can never mask each other (the failure mode of the old
count-based format), and unrelated edits — moved lines, reformatting —
do not invalidate entries because neither line numbers nor exact
whitespace participate in the hash.

Version-1 files (per-``(file, code)`` counts) still load: they apply
with the legacy count semantics so an old baseline keeps working, and
the next ``--write-baseline`` migrates the file to version 2.
``--write-baseline`` keeps its tightening role either way: it records
exactly the current findings, so a shrinking tree shrinks the file.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Finding

BASELINE_VERSION = 2


@dataclass
class Baseline:
    """Accepted findings, as fingerprint multisets per ``(relpath, code)``.

    ``legacy_counts`` is only populated when a version-1 file was
    loaded; it grants the old count-based allowance for exactly those
    entries until the baseline is rewritten.
    """

    fingerprints: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    legacy_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text(encoding="utf-8"))
        version = int(raw.get("version", 1))
        if version < 2:
            counts: Dict[Tuple[str, str], int] = {}
            for relpath, by_code in raw.get("findings", {}).items():
                for code, count in by_code.items():
                    counts[(relpath, code)] = int(count)
            if counts:
                print(
                    f"repro-lint: {path} is a version-1 (count-based) "
                    "baseline — rerun with --write-baseline to migrate "
                    "it to fingerprints",
                    file=sys.stderr,
                )
            return cls(legacy_counts=counts)
        fingerprints: Dict[Tuple[str, str], List[str]] = {}
        for relpath, by_code in raw.get("findings", {}).items():
            for code, fps in by_code.items():
                fingerprints[(relpath, code)] = [str(fp) for fp in fps]
        return cls(fingerprints=fingerprints)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        fingerprints: Dict[Tuple[str, str], List[str]] = {}
        for finding in findings:
            key = (finding.path, finding.code)
            fingerprints.setdefault(key, []).append(finding.fingerprint)
        return cls(fingerprints=fingerprints)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly version-2 JSON."""
        by_path: Dict[str, Dict[str, List[str]]] = {}
        for (relpath, code), fps in sorted(self.fingerprints.items()):
            by_path.setdefault(relpath, {})[code] = sorted(fps)
        payload = {"version": BASELINE_VERSION, "findings": by_path}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split findings into (new, n_baselined).

        A finding is absorbed when its fingerprint is still available
        in its ``(file, code)`` multiset — each entry absorbs at most
        one occurrence, so a *duplicated* violation on a new line still
        reports.  Legacy (version-1) entries fall back to the old
        count semantics for their group.
        """
        budget = {key: list(fps) for key, fps in self.fingerprints.items()}
        new: List[Finding] = []
        baselined = 0
        legacy_groups: Dict[Tuple[str, str], List[Finding]] = {}
        for finding in findings:
            key = (finding.path, finding.code)
            if key in self.legacy_counts:
                legacy_groups.setdefault(key, []).append(finding)
                continue
            fps = budget.get(key)
            if fps and finding.fingerprint in fps:
                fps.remove(finding.fingerprint)
                baselined += 1
            else:
                new.append(finding)
        for key, group in legacy_groups.items():
            if len(group) <= self.legacy_counts[key]:
                baselined += len(group)
            else:
                new.extend(group)
        return sorted(new), baselined


__all__ = ["Baseline", "BASELINE_VERSION"]
