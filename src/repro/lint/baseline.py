"""Grandfathered-finding baseline.

The baseline records, per ``(file, rule code)``, how many findings are
accepted debt.  A run is clean when no group exceeds its baselined
count; shrinking a group below its baseline is always allowed (the next
``--write-baseline`` tightens the file).  Counts — not line numbers —
are stored so unrelated edits do not invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Accepted findings: ``(relpath, code) -> count``."""

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text(encoding="utf-8"))
        counts: Dict[Tuple[str, str], int] = {}
        for relpath, by_code in raw.get("findings", {}).items():
            for code, count in by_code.items():
                counts[(relpath, code)] = int(count)
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str], int] = {}
        for finding in findings:
            key = (finding.path, finding.code)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        by_path: Dict[str, Dict[str, int]] = {}
        for (relpath, code), count in sorted(self.counts.items()):
            by_path.setdefault(relpath, {})[code] = count
        payload = {"version": BASELINE_VERSION, "findings": by_path}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split findings into (new, n_baselined).

        A ``(file, code)`` group within its baselined count is absorbed
        entirely; a group that exceeds it is reported entirely (line
        numbers shift too easily to say *which* finding is the new one).
        """
        groups: Dict[Tuple[str, str], List[Finding]] = {}
        for finding in findings:
            groups.setdefault((finding.path, finding.code), []).append(finding)
        new: List[Finding] = []
        baselined = 0
        for key, group in groups.items():
            allowed = self.counts.get(key, 0)
            if len(group) <= allowed:
                baselined += len(group)
            else:
                new.extend(group)
        return sorted(new), baselined


__all__ = ["Baseline", "BASELINE_VERSION"]
