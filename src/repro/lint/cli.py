"""``repro-lint`` command-line interface.

Two forms::

    repro-lint [paths...] [options]     # lint (per-file + whole-program)
    repro-lint graph [options]          # export the layer/import graph

Exit codes follow the shared contract in :mod:`repro._exit`:
0 — clean (modulo baseline), 1 — findings, 2 — usage error, 3 —
internal failure.  Run from the repository root so rule scoping
(``src/repro`` vs ``tests``) sees the canonical relative paths.

``--jobs N`` parses files in parallel worker processes; output is
byte-identical to the serial path (findings are merged and re-sorted).
``--changed-only`` restricts per-file rules to files git reports as
modified or untracked — the whole-program pass always sees the full
tree, so cross-module contracts cannot be dodged by a partial run.
"""

from __future__ import annotations

import argparse
import multiprocessing
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro._exit import EXIT_FINDINGS, EXIT_INTERNAL, EXIT_OK, EXIT_USAGE
from repro.lint.baseline import Baseline
from repro.lint.engine import Finding, LintEngine, iter_python_files
from repro.lint.program import (
    PROGRAM_RULES,
    ProgramAnalyzer,
    ProgramIndex,
    render_graph_dot,
    render_graph_json,
)
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.rules import default_rules

DEFAULT_BASELINE = "lint-baseline.json"

#: Per-process engine for ``--jobs`` workers (built once per fork).
_WORKER_ENGINE: Optional[LintEngine] = None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static invariant checker for the repro package: per-file "
            "rules (RNG discipline, wall-clock ban, mutable defaults, "
            "nondeterministic iteration, unit discipline, float equality) "
            "plus whole-program rules (import layering, determinism "
            "dataflow, metric/event/exit-code contract cross-checks)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-out",
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report here",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse files in N worker processes (default 1; results are "
        "byte-identical to the serial path)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="per-file rules only check files git reports changed or "
        "untracked (the whole-program pass still sees the full tree)",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="skip the whole-program pass (RPL2xx rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint graph",
        description=(
            "Export the project-wide layer/import graph and symbol table "
            "built by the whole-program analyzer."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root containing src/repro (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("json", "dot"),
        default="json",
        help="export format (default: json)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the export here instead of stdout",
    )
    return parser


def _worker_lint(task: Tuple[str, str]) -> List[Finding]:
    """Lint one file inside a ``--jobs`` worker process."""
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = LintEngine()
    path, root = task
    return _WORKER_ENGINE.lint_file(Path(path), root=Path(root))


def _lint_files(
    files: Sequence[Path], root: Path, jobs: int
) -> List[Finding]:
    """Per-file findings for ``files``, serial or forked, same bytes."""
    if jobs > 1 and "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
        tasks = [(str(p), str(root)) for p in files]
        with ctx.Pool(processes=jobs) as pool:
            per_file = pool.map(_worker_lint, tasks)
        findings = [f for batch in per_file for f in batch]
    else:
        engine = LintEngine()
        findings = []
        for file in files:
            findings.extend(engine.lint_file(file, root=root))
    return sorted(findings)


def _changed_files(root: Path) -> "set[str]":
    """Repo-relative paths git reports as modified or untracked."""
    out: "set[str]" = set()
    for args in (
        ("diff", "--name-only", "HEAD", "--"),
        ("ls-files", "--others", "--exclude-standard"),
    ):
        proc = subprocess.run(
            ("git", "-C", str(root)) + args,
            capture_output=True,
            text=True,
            check=True,
        )
        out.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return out


def _graph_main(argv: Sequence[str]) -> int:
    args = build_graph_parser().parse_args(list(argv))
    root = Path(args.root)
    package = root / "src" / "repro"
    if not package.is_dir() and not (root / "repro").is_dir():
        print(
            f"repro-lint graph: no src/repro package under {root}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    analyzer = ProgramAnalyzer(ProgramIndex.from_root(root))
    graph = analyzer.graph()
    render = render_graph_dot if args.format == "dot" else render_graph_json
    text = render(graph)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return EXIT_OK


def _lint_main(argv: Optional[Sequence[str]]) -> int:
    args = build_parser().parse_args(argv if argv is None else list(argv))

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        for rule in PROGRAM_RULES:
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        return EXIT_OK

    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    root = Path(args.root)
    targets = [Path(p) for p in args.paths]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return EXIT_USAGE

    files = list(iter_python_files(targets))
    if args.changed_only:
        try:
            changed = _changed_files(root)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"repro-lint: --changed-only needs git: {exc}", file=sys.stderr)
            return EXIT_USAGE
        kept = []
        for file in files:
            try:
                rel = file.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            if rel in changed:
                kept.append(file)
        files = kept

    findings = _lint_files(files, root, args.jobs)

    if not args.no_program:
        package = root / "src" / "repro"
        if package.is_dir() or (root / "repro").is_dir():
            findings.extend(ProgramAnalyzer(ProgramIndex.from_root(root)).run())
            findings.sort()

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_OK

    baselined = 0
    if not args.no_baseline:
        findings, baselined = Baseline.load(baseline_path).apply(findings)

    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(render(findings, baselined))
    if args.sarif_out:
        Path(args.sarif_out).write_text(
            render_sarif(findings, baselined) + "\n", encoding="utf-8"
        )
    return EXIT_FINDINGS if findings else EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    try:
        if args and args[0] == "graph":
            return _graph_main(args[1:])
        return _lint_main(args)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"repro-lint: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    raise SystemExit(main())
