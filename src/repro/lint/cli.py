"""``repro-lint`` command-line interface.

Exit codes: 0 — clean (modulo baseline), 1 — new findings, 2 — usage
error.  Run from the repository root so rule scoping (``src/repro`` vs
``tests``) sees the canonical relative paths.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import default_rules

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro package: RNG "
            "discipline, wall-clock ban, mutable defaults, nondeterministic "
            "iteration, unit discipline, float equality in tests."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name:<18} {rule.summary}")
        return 0

    root = Path(args.root)
    targets = [Path(p) for p in args.paths]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine()
    findings = engine.lint_paths(targets, root=root)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baselined = 0
    if not args.no_baseline:
        findings, baselined = Baseline.load(baseline_path).apply(findings)

    render = render_json if args.format == "json" else render_text
    print(render(findings, baselined))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
