"""Static invariant checker for the repro package (``repro-lint``).

A custom :mod:`ast`-based pass enforcing the determinism, RNG, and unit
contracts that the dataset pipeline's bit-identical reproducibility
rests on.  See ``docs/determinism.md`` for the contract, the rule table,
suppressions, and baseline handling.
"""

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.engine import Finding, LintEngine
from repro.lint.program import PROGRAM_RULES, ProgramAnalyzer, ProgramIndex
from repro.lint.rules import Rule, default_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "PROGRAM_RULES",
    "ProgramAnalyzer",
    "ProgramIndex",
    "Rule",
    "default_rules",
    "main",
]
