"""The declared import-layer DAG (the RPL201 contract).

Every module under ``src/repro`` belongs to exactly one *layer*; a
module may import only from its own layer and from the layers its layer
declares as dependencies.  The spec below is the single source of
truth — ``docs/static-analysis.md`` carries a human-readable copy that
``tools/check_docs.py`` cross-checks bidirectionally, and
:mod:`repro.lint.program` enforces it over the whole tree (RPL201).

Layers are matched by **longest dotted prefix**, so a package can span
several layers: ``repro.dataset.store`` is ``datastore`` while
``repro.dataset.builder`` is ``dataset``, and
``repro.resilience.supervisor`` sits *above* ``repro.dataset.parallel``
even though the rest of ``repro.resilience`` sits below it — that is
exactly the cycle the lazy imports in ``repro/resilience/__init__.py``
break at runtime, made explicit here.

CLI modules (any module whose last component is ``cli`` or
``__main__``) form a pseudo-layer on top: they may import anything, but
nothing may import *them* except the ``__init__``/``__main__`` of their
own package (re-exporting ``main`` is fine; depending on a CLI is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: Name of the pseudo-layer for ``*.cli`` / ``*.__main__`` modules.
CLI_LAYER = "cli"


@dataclass(frozen=True)
class LayerSpec:
    """One layer: its name, module prefixes, and allowed dependencies."""

    name: str
    prefixes: Tuple[str, ...]
    deps: Tuple[str, ...]


#: The layer DAG, bottom-up.  ``deps`` may only name layers declared
#: earlier in this tuple — validated by :func:`validate_layers`.
LAYERS: Tuple[LayerSpec, ...] = (
    LayerSpec("foundation", ("repro",), ()),
    LayerSpec("lint", ("repro.lint",), ("foundation",)),
    LayerSpec("obs", ("repro.obs",), ("foundation",)),
    LayerSpec("geo", ("repro.geo",), ("foundation",)),
    LayerSpec("services", ("repro.services",), ("foundation", "geo")),
    LayerSpec("network", ("repro.network",), ("foundation", "geo", "obs")),
    LayerSpec(
        "dpi",
        ("repro.dpi",),
        ("foundation", "services", "network", "obs"),
    ),
    LayerSpec(
        "datastore",
        (
            "repro.dataset.store",
            "repro.dataset.accumulate",
            "repro.dataset.merge",
            "repro.dataset.filters",
        ),
        ("foundation", "geo"),
    ),
    LayerSpec(
        "resilience",
        ("repro.resilience",),
        ("foundation", "obs", "datastore"),
    ),
    LayerSpec(
        "traffic",
        ("repro.traffic",),
        (
            "foundation",
            "geo",
            "services",
            "network",
            "dpi",
            "obs",
            "datastore",
        ),
    ),
    LayerSpec(
        "shard-exec",
        ("repro.dataset.aggregation", "repro.dataset.parallel"),
        (
            "foundation",
            "geo",
            "services",
            "network",
            "dpi",
            "obs",
            "datastore",
            "resilience",
            "traffic",
        ),
    ),
    LayerSpec(
        "supervisor",
        ("repro.resilience.supervisor",),
        ("foundation", "obs", "datastore", "resilience", "shard-exec"),
    ),
    LayerSpec(
        "dataset",
        ("repro.dataset",),
        (
            "foundation",
            "geo",
            "services",
            "network",
            "dpi",
            "obs",
            "datastore",
            "resilience",
            "traffic",
            "shard-exec",
            "supervisor",
        ),
    ),
    LayerSpec(
        "analysis",
        ("repro.core", "repro.apps", "repro.report"),
        ("foundation", "geo", "services", "datastore"),
    ),
    LayerSpec(
        "fidelity-contract",
        ("repro.fidelity.contract", "repro.fidelity.extract"),
        ("foundation",),
    ),
    LayerSpec(
        "experiments",
        ("repro.experiments",),
        (
            "foundation",
            "obs",
            "geo",
            "services",
            "datastore",
            "traffic",
            "dataset",
            "analysis",
            "fidelity-contract",
        ),
    ),
    LayerSpec(
        "fidelity",
        ("repro.fidelity",),
        ("foundation", "obs", "experiments", "fidelity-contract"),
    ),
    LayerSpec(
        "serve",
        ("repro.serve",),
        ("foundation", "obs", "geo", "datastore", "resilience", "analysis"),
    ),
    LayerSpec(
        "bench",
        ("repro.bench",),
        ("foundation", "obs", "geo", "dataset", "serve"),
    ),
)


def is_cli_module(module: str) -> bool:
    """Whether ``module`` belongs to the CLI pseudo-layer."""
    return module.rsplit(".", 1)[-1] in ("cli", "__main__")


def layer_of(module: str) -> Optional[str]:
    """The layer of ``module`` by longest-prefix match (None if outside).

    CLI modules always map to :data:`CLI_LAYER` regardless of prefix.
    """
    if is_cli_module(module):
        return CLI_LAYER
    best: Optional[LayerSpec] = None
    best_len = -1
    for spec in LAYERS:
        for prefix in spec.prefixes:
            if module == prefix or module.startswith(prefix + "."):
                depth = prefix.count(".")
                if depth > best_len:
                    best, best_len = spec, depth
    return best.name if best is not None else None


def layer_deps() -> Dict[str, Tuple[str, ...]]:
    """Map layer name -> allowed dependency layers."""
    return {spec.name: spec.deps for spec in LAYERS}


def validate_layers(layers: Sequence[LayerSpec] = LAYERS) -> None:
    """Raise ``ValueError`` unless the spec is a well-formed DAG.

    Layers are declared bottom-up, so acyclicity reduces to: every
    ``deps`` entry names a layer declared strictly earlier.
    """
    seen: Dict[str, int] = {}
    for i, spec in enumerate(layers):
        if spec.name in seen:
            raise ValueError(f"duplicate layer {spec.name!r}")
        if spec.name == CLI_LAYER:
            raise ValueError(f"layer name {CLI_LAYER!r} is reserved")
        for dep in spec.deps:
            if dep not in seen:
                raise ValueError(
                    f"layer {spec.name!r} depends on {dep!r}, which is not "
                    "declared earlier (cycle or typo)"
                )
        seen[spec.name] = i


__all__ = [
    "CLI_LAYER",
    "LAYERS",
    "LayerSpec",
    "is_cli_module",
    "layer_of",
    "layer_deps",
    "validate_layers",
]
