"""Whole-program static analysis: the RPL2xx rule family.

Where :mod:`repro.lint.engine` checks one file at a time, this module
parses the **entire package once**, builds a project-wide import graph
plus a symbol table of string-literal metric names, event kinds, span
names and exit codes, and cross-checks them against the contracts the
repository declares in code:

========  ==========================================================
RPL201    import-layering conformance against the layer DAG declared
          in :mod:`repro.lint.layers` (CLI modules are top-only)
RPL202    determinism dataflow — wall-clock values
          (:mod:`repro.obs.clock`) and unseeded RNG must not reach
          dataset/event-log/metric writes (interprocedural taint)
RPL203    every emitted metric name / event kind must exist in the
          declared contract (``repro.obs.metrics.SPECS`` /
          ``repro.obs.events.KINDS``), with matching kind
RPL204    every declared metric / event kind must have at least one
          emission site — dead contract entries fail
RPL205    CLI exit-code conformance against
          ``repro._exit.CLI_EXIT_MATRIX``
========  ==========================================================

The pass is deterministic: modules, edges and findings are processed
in sorted order, so output (text/JSON/SARIF, and the ``repro-lint
graph`` export) is byte-identical across runs and ``--jobs`` values.
Like the rest of ``repro.lint`` it is stdlib-only.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import (
    Finding,
    fingerprint_findings,
    iter_python_files,
    parse_suppressions,
)
from repro.lint.layers import (
    CLI_LAYER,
    LAYERS,
    is_cli_module,
    layer_deps,
    layer_of,
    validate_layers,
)

#: Modules the contract extractors read.
METRICS_MODULE = "repro.obs.metrics"
EVENTS_MODULE = "repro.obs.events"
EXIT_MODULE = "repro._exit"

#: Functions whose call result is wall-clock/RNG *taint* (RPL202).
_CLOCK_PREFIX = "repro.obs.clock."
_UNSEEDED_RNG = "repro._rng.as_generator"

#: Fully-qualified emission entry points (after alias resolution).
_COUNTER_FQNS = ("repro.obs.add", "repro.obs.runtime.add")
_GAUGE_FQNS = ("repro.obs.set_gauge", "repro.obs.runtime.set_gauge")
_HIST_FQNS = (
    "repro.obs.observe",
    "repro.obs.runtime.observe",
    "repro.obs.merge_histogram",
    "repro.obs.runtime.merge_histogram",
)
_SPAN_FQNS = ("repro.obs.span", "repro.obs.runtime.span")
_EVENT_FQNS = ("repro.obs.log_event", "repro.obs.runtime.log_event")
_JSONL_SINKS = (
    EVENTS_MODULE + ".write_jsonl",
    EVENTS_MODULE + ".render_jsonl",
)
_NUMPY_SINKS = ("numpy.save", "numpy.savez", "numpy.savez_compressed")


@dataclass(frozen=True)
class ProgramRule:
    """Descriptor of one whole-program rule (for docs/SARIF/--list-rules)."""

    code: str
    name: str
    summary: str


PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    ProgramRule(
        "RPL201",
        "import-layering",
        "modules may only import their layer's declared dependencies; "
        "CLI modules are top-only",
    ),
    ProgramRule(
        "RPL202",
        "determinism-dataflow",
        "wall-clock or unseeded-RNG values must not flow into dataset, "
        "metric, or event-log writes",
    ),
    ProgramRule(
        "RPL203",
        "undeclared-emission",
        "emitted metric names and event kinds must exist in the "
        "declared contract, with matching kind",
    ),
    ProgramRule(
        "RPL204",
        "dead-contract-entry",
        "every declared metric and event kind needs at least one "
        "emission site",
    ),
    ProgramRule(
        "RPL205",
        "cli-exit-codes",
        "CLI return/sys.exit literals must match repro._exit."
        "CLI_EXIT_MATRIX, both directions",
    ),
)


def module_name(relpath: str) -> Optional[str]:
    """Dotted module name for a repo-relative path (None if outside).

    Accepts both ``src/repro/...`` and ``repro/...`` prefixes;
    ``__init__.py`` maps to its package.
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts or parts[0] != "repro" or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One resolved repro-internal import site."""

    target: str
    line: int
    col: int


class ModuleInfo:
    """One parsed module plus its per-module symbol information."""

    __slots__ = (
        "name",
        "relpath",
        "source",
        "lines",
        "tree",
        "is_package",
        "imports",
        "aliases",
    )

    def __init__(self, name: str, relpath: str, source: str, tree: ast.AST):
        self.name = name
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.is_package = relpath.endswith("__init__.py")
        self.imports: List[ImportEdge] = []
        #: Local name -> fully-qualified dotted target (modules *and*
        #: imported attributes, e.g. ``now_s -> repro.obs.clock.now_s``).
        self.aliases: Dict[str, str] = {}


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-Name bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class ProgramIndex:
    """Every module of the package, parsed once, imports resolved."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        self._resolve_imports()

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProgramIndex":
        """Build an index from ``{relpath: source}`` (fixture-friendly).

        Unparseable files are skipped — the per-file engine already
        reports them as RPL000.
        """
        modules: Dict[str, ModuleInfo] = {}
        for relpath in sorted(sources):
            name = module_name(relpath)
            if name is None:
                continue
            try:
                tree = ast.parse(sources[relpath])
            except SyntaxError:
                continue
            modules[name] = ModuleInfo(name, relpath, sources[relpath], tree)
        return cls(modules)

    @classmethod
    def from_root(cls, root: Path) -> "ProgramIndex":
        """Index every module under ``<root>/src/repro`` (or ``repro``)."""
        root = Path(root)
        package = root / "src" / "repro"
        if not package.is_dir():
            package = root / "repro"
        sources: Dict[str, str] = {}
        for path in iter_python_files([package]):
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
            sources[relpath] = path.read_text(encoding="utf-8")
        return cls.from_sources(sources)

    def _resolve_imports(self) -> None:
        for name in sorted(self.modules):
            info = self.modules[name]
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._record(info, node, alias.name)
                        local = alias.asname or alias.name.split(".")[0]
                        info.aliases[local] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    base = self._from_base(info, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        candidate = f"{base}.{alias.name}"
                        target = candidate if candidate in self.modules else base
                        self._record(info, node, target)
                        info.aliases[alias.asname or alias.name] = candidate

    def _from_base(self, info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
        """The absolute module a ``from X import ...`` reads from."""
        if not node.level:
            return node.module
        anchor = info.name.split(".")
        if not info.is_package:
            anchor = anchor[:-1]
        anchor = anchor[: len(anchor) - (node.level - 1)]
        if not anchor:
            return None
        if node.module:
            anchor = anchor + node.module.split(".")
        return ".".join(anchor)

    def _record(self, info: ModuleInfo, node: ast.AST, target: str) -> None:
        if target != "repro" and not target.startswith("repro."):
            return
        info.imports.append(
            ImportEdge(
                target=target,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
            )
        )

    def containing_module(self, target: str) -> Optional[str]:
        """Longest indexed module that is ``target`` or a prefix of it."""
        while target:
            if target in self.modules:
                return target
            target, _, _ = target.rpartition(".")
        return None

    def resolve_call(self, info: ModuleInfo, func: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a call target, or None."""
        chain = _attr_chain(func)
        if chain is None:
            return None
        head = info.aliases.get(chain[0], chain[0])
        return ".".join((head,) + chain[1:])


# ---------------------------------------------------------------------------
# Contract extraction (static mirrors of the runtime contracts)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricContract:
    """Statically-extracted mirror of one ``MetricSpec``."""

    name: str
    kind: str  # "COUNTER" | "GAUGE"
    determinism: str  # "EVENTS" | "DERIVED" | "TIMING"
    line: int


def _enum_member(node: ast.AST, aliases: Mapping[str, str]) -> Optional[str]:
    """``MetricKind.COUNTER`` or an alias name (``_C``) -> member name."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


def extract_metric_contract(
    index: ProgramIndex,
) -> Optional[Dict[str, MetricContract]]:
    """Parse ``MetricSpec(...)`` calls out of the metrics module's AST."""
    info = index.modules.get(METRICS_MODULE)
    if info is None:
        return None
    aliases: Dict[str, str] = {}
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(target.elts) == len(node.value.elts)
            ):
                for t, v in zip(target.elts, node.value.elts):
                    if isinstance(t, ast.Name) and isinstance(v, ast.Attribute):
                        aliases[t.id] = v.attr
    contract: Dict[str, MetricContract] = {}
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain or chain[-1] != "MetricSpec" or len(node.args) < 5:
            continue
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
            continue
        kind = _enum_member(node.args[1], aliases)
        determinism = _enum_member(node.args[4], aliases)
        if kind is None or determinism is None:
            continue
        contract[name_node.value] = MetricContract(
            name=name_node.value,
            kind=kind,
            determinism=determinism,
            line=node.lineno,
        )
    return contract or None


def extract_event_kinds(index: ProgramIndex) -> Optional[Tuple[Dict[str, int], str]]:
    """``(kind -> declaration line, relpath)`` from ``events.KINDS``."""
    info = index.modules.get(EVENTS_MODULE)
    if info is None:
        return None
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "KINDS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            kinds: Dict[str, int] = {}
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    kinds[elt.value] = elt.lineno
            if kinds:
                return kinds, info.relpath
    return None


def extract_exit_matrix(
    index: ProgramIndex,
) -> Optional[Tuple[Dict[str, Tuple[Set[int], int]], str]]:
    """``(cli module -> (codes, line), relpath)`` from ``CLI_EXIT_MATRIX``."""
    info = index.modules.get(EXIT_MODULE)
    if info is None:
        return None
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.AnnAssign) and not isinstance(node, ast.Assign):
            continue
        targets = (
            [node.target] if isinstance(node, ast.AnnAssign) else node.targets
        )
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "CLI_EXIT_MATRIX" not in names or not isinstance(node.value, ast.Dict):
            continue
        matrix: Dict[str, Tuple[Set[int], int]] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            codes: Set[int] = set()
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                        codes.add(elt.value)
            matrix[key.value] = (codes, key.lineno)
        if matrix:
            return matrix, info.relpath
    return None


# ---------------------------------------------------------------------------
# Symbol table: emissions, exit codes, taint scopes
# ---------------------------------------------------------------------------

#: How a metric/event name literal was written at the call site.
#: ``("lit", name)`` | ``("fstr", prefix, suffix)`` | ``("dyn",)``
NameForm = Tuple[str, ...]


def _name_form(node: Optional[ast.AST]) -> NameForm:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ("lit", node.value)
    if isinstance(node, ast.JoinedStr):
        values = node.values
        prefix = ""
        suffix = ""
        if values and isinstance(values[0], ast.Constant):
            prefix = str(values[0].value)
        if len(values) > 1 and isinstance(values[-1], ast.Constant):
            suffix = str(values[-1].value)
        return ("fstr", prefix, suffix)
    return ("dyn",)


def _matches(form: NameForm, name: str) -> bool:
    """Whether a declared ``name`` could be produced by ``form``."""
    if form[0] == "lit":
        return form[1] == name
    if form[0] == "fstr":
        prefix, suffix = form[1], form[2]
        return (
            name.startswith(prefix)
            and name.endswith(suffix)
            and len(name) >= len(prefix) + len(suffix)
        )
    return False


@dataclass(frozen=True)
class Emission:
    """One metric/span/event emission site."""

    channel: str  # "counter" | "gauge" | "hist" | "span" | "event"
    form: NameForm
    module: str
    line: int
    col: int


@dataclass(frozen=True)
class ExitSite:
    """One literal exit code in a CLI module."""

    code: int
    line: int
    col: int


def extract_exit_constants(index: ProgramIndex) -> Dict[str, int]:
    """``repro._exit``'s integer constants (``EXIT_OK`` -> 0, ...)."""
    info = index.modules.get(EXIT_MODULE)
    constants: Dict[str, int] = {}
    if info is None:
        return constants
    for node in info.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if (
            isinstance(node.value, ast.Constant)
            and type(node.value.value) is int
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _exit_code_literals(
    node: ast.AST,
    info: ModuleInfo,
    constants: Mapping[str, int],
) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(code, line, col)`` for the exit codes an expression names.

    Covers plain int literals, conditional expressions, and names that
    resolve (via the module's imports) to ``repro._exit`` constants.
    """
    if isinstance(node, ast.Constant) and type(node.value) is int:
        yield node.value, node.lineno, node.col_offset + 1
    elif isinstance(node, ast.IfExp):
        yield from _exit_code_literals(node.body, info, constants)
        yield from _exit_code_literals(node.orelse, info, constants)
    elif isinstance(node, ast.BoolOp):
        for value in node.values:
            yield from _exit_code_literals(value, info, constants)
    elif isinstance(node, ast.Name):
        fqn = info.aliases.get(node.id, "")
        if fqn.startswith(EXIT_MODULE + "."):
            tail = fqn[len(EXIT_MODULE) + 1 :]
            if tail in constants:
                yield constants[tail], node.lineno, node.col_offset + 1


class SymbolTable:
    """Project-wide emission/exit-code symbol table."""

    def __init__(self) -> None:
        self.emissions: List[Emission] = []
        self.exit_sites: Dict[str, List[ExitSite]] = {}

    @classmethod
    def build(cls, index: ProgramIndex) -> "SymbolTable":
        table = cls()
        constants = extract_exit_constants(index)
        for name in sorted(index.modules):
            info = index.modules[name]
            table._scan_module(index, info, constants)
        return table

    def _scan_module(
        self,
        index: ProgramIndex,
        info: ModuleInfo,
        constants: Mapping[str, int],
    ) -> None:
        collect_exits = is_cli_module(info.name) and info.name.endswith(".cli")
        sites: List[ExitSite] = []
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                self._scan_call(index, info, node)
                if collect_exits:
                    fqn = index.resolve_call(info, node.func)
                    if fqn in ("sys.exit", "SystemExit") and node.args:
                        for code, line, col in _exit_code_literals(
                            node.args[0], info, constants
                        ):
                            sites.append(ExitSite(code, line, col))
            elif collect_exits and isinstance(node, ast.Return) and node.value:
                for code, line, col in _exit_code_literals(
                    node.value, info, constants
                ):
                    sites.append(ExitSite(code, line, col))
        if collect_exits:
            self.exit_sites[info.name] = sites

    def _scan_call(
        self, index: ProgramIndex, info: ModuleInfo, node: ast.Call
    ) -> None:
        fqn = index.resolve_call(info, node.func)
        if fqn is None:
            return
        channel = None
        if fqn in _COUNTER_FQNS:
            channel = "counter"
        elif fqn in _GAUGE_FQNS:
            channel = "gauge"
        elif fqn in _HIST_FQNS:
            channel = "hist"
        elif fqn in _SPAN_FQNS:
            channel = "span"
        elif fqn in _EVENT_FQNS:
            channel = "event"
        elif (
            fqn.endswith(".events.append")
            and info.name.startswith("repro.obs")
            and node.args
            and isinstance(node.args[0], ast.Tuple)
            and node.args[0].elts
        ):
            # The runtime appends raw ("kind", name, value) tuples.
            form = _name_form(node.args[0].elts[0])
            self.emissions.append(
                Emission("event", form, info.name, node.lineno, node.col_offset + 1)
            )
            return
        if channel is None:
            return
        form = _name_form(node.args[0] if node.args else None)
        self.emissions.append(
            Emission(channel, form, info.name, node.lineno, node.col_offset + 1)
        )


# ---------------------------------------------------------------------------
# RPL202 — interprocedural determinism-taint pass
# ---------------------------------------------------------------------------


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _Scope:
    """Taint state of one function (or module) body."""

    __slots__ = ("info", "node", "fqn", "tainted", "returns_tainted")

    def __init__(self, info: ModuleInfo, node: ast.AST, fqn: Optional[str]):
        self.info = info
        self.node = node
        self.fqn = fqn  # resolvable name for cross-module summaries
        self.tainted: Set[str] = set()
        self.returns_tainted = False


class TaintPass:
    """Tracks wall-clock / unseeded-RNG values to write sinks (RPL202).

    Sources taint the expression they appear in; assignments propagate
    taint to names; calls propagate taint through arguments and — via a
    fixpoint over per-function summaries — through the return values of
    module-level functions across the whole program.  ``repro.obs`` and
    ``repro._rng`` themselves are exempt (they *implement* the clock
    and the seed policy).
    """

    def __init__(self, index: ProgramIndex, contract: Optional[Dict[str, MetricContract]]):
        self.index = index
        self.contract = contract
        self.scopes: List[_Scope] = []
        self.summaries: Dict[str, bool] = {}
        for name in sorted(index.modules):
            if name.startswith("repro.obs") or name == "repro._rng":
                continue
            info = index.modules[name]
            self.scopes.append(_Scope(info, info.tree, None))
            for node in ast.walk(info.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fqn = None
                    if node in info.tree.body:  # module-level: resolvable
                        fqn = f"{name}.{node.name}"
                        self.summaries[fqn] = False
                    self.scopes.append(_Scope(info, node, fqn))

    # -- expression-level taint ------------------------------------------

    def _call_is_source(self, scope: _Scope, node: ast.Call) -> bool:
        fqn = self.index.resolve_call(scope.info, node.func)
        if fqn is None:
            return False
        if fqn.startswith(_CLOCK_PREFIX):
            return True
        if fqn == _UNSEEDED_RNG:
            if not node.args and not node.keywords:
                return True
            if node.args and (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                return True
        return False

    def _expr_tainted(self, scope: _Scope, expr: Optional[ast.AST]) -> bool:
        if expr is None:
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in scope.tainted:
                return True
            if isinstance(node, ast.Call):
                if self._call_is_source(scope, node):
                    return True
                fqn = self.index.resolve_call(scope.info, node.func)
                if fqn is not None and self.summaries.get(fqn):
                    return True
        return False

    # -- fixpoint over assignments and summaries -------------------------

    def _propagate_scope(self, scope: _Scope) -> bool:
        changed = False
        for node in _scope_nodes(scope.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.NamedExpr):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.Return):
                if not scope.returns_tainted and self._expr_tainted(
                    scope, node.value
                ):
                    scope.returns_tainted = True
                    changed = True
                continue
            else:
                continue
            if not self._expr_tainted(scope, value):
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id not in scope.tainted
                    ):
                        scope.tainted.add(leaf.id)
                        changed = True
        return changed

    def _fixpoint(self) -> None:
        for _ in range(32):  # depth bound; real chains are short
            changed = False
            for scope in self.scopes:
                if self._propagate_scope(scope):
                    changed = True
                if scope.fqn is not None and scope.returns_tainted:
                    if not self.summaries.get(scope.fqn):
                        self.summaries[scope.fqn] = True
                        changed = True
            if not changed:
                return

    # -- sink detection ---------------------------------------------------

    def _metric_exempt(self, form: NameForm) -> bool:
        """TIMING-class metrics may legitimately carry clock values."""
        if self.contract is None:
            return False
        matches = [c for n, c in self.contract.items() if _matches(form, n)]
        return bool(matches) and all(c.determinism == "TIMING" for c in matches)

    def _check_sink(
        self, scope: _Scope, node: ast.Call, report
    ) -> None:
        fqn = self.index.resolve_call(scope.info, node.func)
        chain = _attr_chain(node.func)
        args = list(node.args) + [kw.value for kw in node.keywords]
        sink: Optional[str] = None
        if fqn in _NUMPY_SINKS or (fqn or "").startswith("numpy.savez"):
            sink = "a dataset write (numpy save)"
        elif fqn in _JSONL_SINKS:
            sink = "the structured event log"
        elif fqn in _EVENT_FQNS:
            sink = "the structured event log (obs.log_event)"
        elif fqn in _COUNTER_FQNS or fqn in _GAUGE_FQNS or fqn in _HIST_FQNS:
            if self._metric_exempt(_name_form(node.args[0] if node.args else None)):
                return
            sink = "a contract metric"
            args = args[1:]  # the name itself is checked by RPL203
        elif (
            chain is not None
            and len(chain) >= 2
            and chain[-1] == "save"
            and fqn not in _NUMPY_SINKS
        ):
            sink = "a dataset write (.save)"
        if sink is None:
            return
        for arg in args:
            if self._expr_tainted(scope, arg):
                report(
                    scope.info,
                    node,
                    "RPL202",
                    "wall-clock or unseeded-RNG value flows into "
                    f"{sink} — derive it from seed material or declare "
                    "the metric timing-class",
                )
                return

    def run(self, report) -> None:
        self._fixpoint()
        for scope in self.scopes:
            for node in _scope_nodes(scope.node):
                if isinstance(node, ast.Call):
                    self._check_sink(scope, node, report)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class ProgramAnalyzer:
    """Runs RPL201–205 over a :class:`ProgramIndex`."""

    def __init__(self, index: ProgramIndex):
        validate_layers()
        self.index = index
        self.symbols = SymbolTable.build(index)
        self.metric_contract = extract_metric_contract(index)
        self.event_kinds = extract_event_kinds(index)
        self.exit_matrix = extract_exit_matrix(index)
        self._findings: List[Finding] = []

    # -- reporting --------------------------------------------------------

    def _report(
        self, info: ModuleInfo, node_or_line, code: str, message: str
    ) -> None:
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0) + 1
        elif isinstance(node_or_line, tuple):
            line, col = node_or_line
        else:
            line, col = node_or_line, 1
        self._findings.append(
            Finding(path=info.relpath, line=line, col=col, code=code, message=message)
        )

    def run(self) -> List[Finding]:
        """All program findings, suppression-filtered and fingerprinted."""
        self._findings = []
        self._check_layers()
        TaintPass(self.index, self.metric_contract).run(self._report)
        self._check_emissions()
        self._check_dead_contract()
        self._check_exit_codes()
        by_path: Dict[str, List[Finding]] = {}
        for f in self._findings:
            by_path.setdefault(f.path, []).append(f)
        out: List[Finding] = []
        modules_by_path = {
            info.relpath: info for info in self.index.modules.values()
        }
        for path in sorted(by_path):
            info = modules_by_path.get(path)
            suppressions = (
                parse_suppressions(info.source) if info is not None else {}
            )
            kept = [
                f
                for f in by_path[path]
                if not (
                    (codes := suppressions.get(f.line))
                    and ("all" in codes or f.code in codes)
                )
            ]
            out.extend(
                fingerprint_findings(
                    kept, info.lines if info is not None else []
                )
            )
        return sorted(out)

    # -- RPL201 -----------------------------------------------------------

    def _check_layers(self) -> None:
        deps = layer_deps()
        for name in sorted(self.index.modules):
            info = self.index.modules[name]
            src_layer = layer_of(name)
            if src_layer is None:
                self._report(
                    info,
                    1,
                    "RPL201",
                    f"module {name} is not assigned to any declared layer "
                    "(repro.lint.layers.LAYERS)",
                )
                continue
            for edge in info.imports:
                target = self.index.containing_module(edge.target)
                if target is None or target == name:
                    continue
                if is_cli_module(target):
                    parent = target.rsplit(".", 1)[0]
                    if name != parent and src_layer != CLI_LAYER:
                        self._report(
                            info,
                            (edge.line, edge.col),
                            "RPL201",
                            f"{name} imports CLI module {target} — only "
                            "a package's own __init__/__main__ may",
                        )
                    continue
                if src_layer == CLI_LAYER:
                    continue  # CLIs may import anything non-CLI
                dst_layer = layer_of(target)
                if dst_layer is None or dst_layer == src_layer:
                    continue
                if dst_layer not in deps[src_layer]:
                    self._report(
                        info,
                        (edge.line, edge.col),
                        "RPL201",
                        f"layer '{src_layer}' may not import layer "
                        f"'{dst_layer}' ({name} -> {target})",
                    )

    # -- RPL203 -----------------------------------------------------------

    def _check_emissions(self) -> None:
        contract = self.metric_contract
        kinds = self.event_kinds[0] if self.event_kinds else None
        modules_by_name = self.index.modules
        for em in self.symbols.emissions:
            info = modules_by_name[em.module]
            where = (em.line, em.col)
            if em.channel in ("counter", "gauge", "hist"):
                if contract is None:
                    continue
                if em.form[0] == "dyn":
                    self._report(
                        info,
                        where,
                        "RPL203",
                        "metric name is not a string literal — the static "
                        "contract check cannot see it",
                    )
                    continue
                matches = [
                    c for n, c in contract.items() if _matches(em.form, n)
                ]
                label = (
                    repr(em.form[1])
                    if em.form[0] == "lit"
                    else f"f-string {em.form[1]!r}…{em.form[2]!r}"
                )
                if not matches:
                    self._report(
                        info,
                        where,
                        "RPL203",
                        f"metric {label} is not declared in "
                        "repro.obs.metrics.SPECS",
                    )
                    continue
                want = {
                    "counter": "COUNTER",
                    "gauge": "GAUGE",
                    "hist": "HISTOGRAM",
                }[em.channel]
                bad = [c for c in matches if c.kind != want]
                if bad:
                    self._report(
                        info,
                        where,
                        "RPL203",
                        f"metric {label} is declared {bad[0].kind} but "
                        f"emitted as a {want.lower()}",
                    )
            elif em.channel == "event":
                if kinds is None:
                    continue
                if em.form[0] == "lit" and em.form[1] not in kinds:
                    self._report(
                        info,
                        where,
                        "RPL203",
                        f"event kind {em.form[1]!r} is not declared in "
                        "repro.obs.events.KINDS",
                    )
                elif em.form[0] == "dyn" and em.module != "repro.obs.runtime":
                    # runtime.log_event forwards its caller's kind; the
                    # call sites themselves are what the rule checks.
                    self._report(
                        info,
                        where,
                        "RPL203",
                        "event kind is not a string literal — the static "
                        "contract check cannot see it",
                    )

    # -- RPL204 -----------------------------------------------------------

    def _check_dead_contract(self) -> None:
        if self.metric_contract is not None:
            metrics_info = self.index.modules[METRICS_MODULE]
            for name in sorted(self.metric_contract):
                spec = self.metric_contract[name]
                channel = {
                    "COUNTER": "counter",
                    "GAUGE": "gauge",
                    "HISTOGRAM": "hist",
                }.get(spec.kind, "gauge")
                emitted = any(
                    em.channel == channel and _matches(em.form, name)
                    for em in self.symbols.emissions
                )
                if not emitted:
                    self._report(
                        metrics_info,
                        spec.line,
                        "RPL204",
                        f"metric {name!r} is declared but has no emission "
                        "site anywhere in the tree (dead contract entry)",
                    )
        if self.event_kinds is not None:
            kinds, relpath = self.event_kinds
            events_info = self.index.modules[EVENTS_MODULE]
            for kind in sorted(kinds):
                emitted = any(
                    em.channel == "event" and _matches(em.form, kind)
                    for em in self.symbols.emissions
                )
                if not emitted:
                    self._report(
                        events_info,
                        kinds[kind],
                        "RPL204",
                        f"event kind {kind!r} is declared in KINDS but "
                        "never emitted",
                    )

    # -- RPL205 -----------------------------------------------------------

    def _check_exit_codes(self) -> None:
        if self.exit_matrix is None:
            return
        matrix, matrix_relpath = self.exit_matrix
        exit_info = self.index.modules[EXIT_MODULE]
        for cli_name in sorted(self.symbols.exit_sites):
            info = self.index.modules[cli_name]
            sites = self.symbols.exit_sites[cli_name]
            declared = matrix.get(cli_name)
            if declared is None:
                self._report(
                    info,
                    1,
                    "RPL205",
                    f"CLI module {cli_name} is not covered by "
                    "repro._exit.CLI_EXIT_MATRIX",
                )
                continue
            codes, _ = declared
            seen: Set[int] = set()
            for site in sites:
                seen.add(site.code)
                if site.code not in codes:
                    self._report(
                        info,
                        (site.line, site.col),
                        "RPL205",
                        f"exit code {site.code} is not declared for "
                        f"{cli_name} in repro._exit.CLI_EXIT_MATRIX",
                    )
            for code in sorted(codes - seen):
                self._report(
                    info,
                    1,
                    "RPL205",
                    f"{cli_name} declares exit code {code} but no "
                    "return/sys.exit literal produces it",
                )
        for cli_name in sorted(matrix):
            if cli_name not in self.index.modules:
                self._report(
                    exit_info,
                    matrix[cli_name][1],
                    "RPL205",
                    f"CLI_EXIT_MATRIX entry {cli_name!r} does not match "
                    "any module in the tree",
                )

    # -- graph export -----------------------------------------------------

    def graph(self) -> Dict[str, Any]:
        """The layer/import graph plus the symbol table, JSON-ready."""
        modules = []
        edges = []
        for name in sorted(self.index.modules):
            info = self.index.modules[name]
            modules.append(
                {
                    "name": name,
                    "relpath": info.relpath,
                    "layer": layer_of(name),
                }
            )
            seen: Set[str] = set()
            for edge in info.imports:
                target = self.index.containing_module(edge.target)
                if target is None or target == name or target in seen:
                    continue
                seen.add(target)
                edges.append({"src": name, "dst": target, "line": edge.line})
        edges.sort(key=lambda e: (e["src"], e["dst"]))
        layers = [
            {
                "name": spec.name,
                "prefixes": list(spec.prefixes),
                "deps": list(spec.deps),
            }
            for spec in LAYERS
        ]
        symbols = {
            "metrics": sorted(
                {
                    em.form[1]
                    for em in self.symbols.emissions
                    if em.channel in ("counter", "gauge", "hist")
                    and em.form[0] == "lit"
                }
            ),
            "events": sorted(
                {
                    em.form[1]
                    for em in self.symbols.emissions
                    if em.channel == "event" and em.form[0] == "lit"
                }
            ),
            "spans": sorted(
                {
                    em.form[1]
                    for em in self.symbols.emissions
                    if em.channel == "span" and em.form[0] == "lit"
                }
            ),
            "exit_codes": {
                name: sorted({s.code for s in sites})
                for name, sites in sorted(self.symbols.exit_sites.items())
            },
        }
        return {
            "layers": layers,
            "modules": modules,
            "edges": edges,
            "symbols": symbols,
        }


def render_graph_json(graph: Dict[str, Any]) -> str:
    """Deterministic JSON form of :meth:`ProgramAnalyzer.graph`."""
    return json.dumps(graph, indent=2, sort_keys=True)


def render_graph_dot(graph: Dict[str, Any]) -> str:
    """Layer-level Graphviz digraph (edges weighted by import count)."""
    module_layer = {m["name"]: m["layer"] for m in graph["modules"]}
    counts: Dict[Tuple[str, str], int] = {}
    for edge in graph["edges"]:
        src = module_layer.get(edge["src"])
        dst = module_layer.get(edge["dst"])
        if src is None or dst is None or src == dst:
            continue
        counts[(src, dst)] = counts.get((src, dst), 0) + 1
    sizes: Dict[str, int] = {}
    for layer in module_layer.values():
        if layer is not None:
            sizes[layer] = sizes.get(layer, 0) + 1
    lines = ["digraph repro_layers {", "  rankdir=BT;", "  node [shape=box];"]
    for name in sorted(sizes):
        label = f"{name}\\n({sizes[name]} modules)"
        lines.append(f'  "{name}" [label="{label}"];')
    for (src, dst) in sorted(counts):
        lines.append(f'  "{src}" -> "{dst}" [label="{counts[(src, dst)]}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def analyze_tree(root: Path) -> List[Finding]:
    """Convenience: index ``root`` and run the whole-program pass."""
    return ProgramAnalyzer(ProgramIndex.from_root(root)).run()


__all__ = [
    "EVENTS_MODULE",
    "EXIT_MODULE",
    "METRICS_MODULE",
    "Emission",
    "ImportEdge",
    "MetricContract",
    "ModuleInfo",
    "PROGRAM_RULES",
    "ProgramAnalyzer",
    "ProgramIndex",
    "ProgramRule",
    "SymbolTable",
    "analyze_tree",
    "extract_event_kinds",
    "extract_exit_constants",
    "extract_exit_matrix",
    "extract_metric_contract",
    "module_name",
    "render_graph_dot",
    "render_graph_json",
]
