"""Single-walk AST lint engine.

The engine parses each file once, attaches parent links, and dispatches
every node to the rules that registered a ``visit_<NodeType>`` handler —
all rules therefore share one AST walk per file.  Findings carry a
stable rule code and ``file:line:col`` coordinates; per-line
``# repro-lint: disable=CODE`` comments suppress them at the source.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

#: Comment marker that introduces an inline suppression, e.g.
#: ``# repro-lint: disable=RPL001`` or ``# repro-lint: disable=RPL001,RPL003``
#: or ``# repro-lint: disable=all``.
DISABLE_MARKER = "repro-lint:"

#: Attribute used to link each AST node to its parent (set once per tree).
_PARENT_ATTR = "_repro_lint_parent"

#: Hex digits kept from the fingerprint hash — plenty against collision
#: within one repository while keeping baselines diff-friendly.
FINGERPRINT_LEN = 16


def finding_fingerprint(relpath: str, code: str, source_line: str) -> str:
    """Stable identity of one finding: ``(relpath, code, normalized line)``.

    The source line is whitespace-normalized so reformatting does not
    invalidate a baseline entry; the line *number* is deliberately left
    out so unrelated edits above a finding do not either.
    """
    normalized = " ".join(source_line.split())
    digest = hashlib.sha256(
        f"{relpath}\x00{code}\x00{normalized}".encode("utf-8")
    ).hexdigest()
    return digest[:FINGERPRINT_LEN]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``fingerprint`` is the stable baseline identity (see
    :func:`finding_fingerprint`); it is derived, so equality and
    ordering on the location fields stay meaningful.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    fingerprint: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def fingerprint_findings(
    findings: Sequence["Finding"], source_lines: Sequence[str]
) -> List["Finding"]:
    """Attach fingerprints computed from each finding's source line."""
    out: List[Finding] = []
    for f in findings:
        line_text = (
            source_lines[f.line - 1] if 0 < f.line <= len(source_lines) else ""
        )
        out.append(
            Finding(
                path=f.path,
                line=f.line,
                col=f.col,
                code=f.code,
                message=f.message,
                fingerprint=finding_fingerprint(f.path, f.code, line_text),
            )
        )
    return out


class FileContext:
    """Per-file state shared by all rules during one walk."""

    def __init__(self, relpath: str, tree: ast.AST):
        self.relpath = relpath.replace("\\", "/")
        self.tree = tree
        self.findings: List[Finding] = []
        parts = self.relpath.split("/")
        #: True for package code under ``src/repro`` (or ``repro/``).
        self.in_src = self.relpath.startswith(("src/repro/", "repro/"))
        #: True for test code.
        self.in_tests = "tests" in parts
        self.filename = parts[-1]

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """Return the parent of ``node`` (engine-attached; None at the root)."""
    return getattr(node, _PARENT_ATTR, None)


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT_ATTR, node)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (``{"all"}`` for all).

    Comments are located with :mod:`tokenize`, so markers inside string
    literals are never misread as suppressions.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or DISABLE_MARKER not in tok.string:
                continue
            _, _, directive = tok.string.partition(DISABLE_MARKER)
            directive = directive.strip()
            if not directive.startswith("disable="):
                continue
            codes = {
                c.strip()
                for c in directive[len("disable=") :].split(",")
                if c.strip()
            }
            if codes:
                out.setdefault(tok.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError):
        pass
    return out


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        else:
            yield path


@dataclass
class LintEngine:
    """Runs a rule set over files, one AST walk per file."""

    rules: Sequence = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rules:
            from repro.lint.rules import default_rules

            self.rules = default_rules()

    def lint_source(self, source: str, relpath: str) -> List[Finding]:
        """Lint one module given as text; ``relpath`` scopes the rules."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return fingerprint_findings(
                [
                    Finding(
                        path=relpath.replace("\\", "/"),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        code="RPL000",
                        message=f"file does not parse: {exc.msg}",
                    )
                ],
                source.splitlines(),
            )
        _attach_parents(tree)
        ctx = FileContext(relpath, tree)
        handlers: Dict[str, List] = {}
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for name in dir(rule):
                if name.startswith("visit_"):
                    handlers.setdefault(name[len("visit_") :], []).append(
                        getattr(rule, name)
                    )
        if handlers:
            for node in ast.walk(tree):
                for handler in handlers.get(type(node).__name__, ()):
                    handler(node, ctx)
        suppressions = parse_suppressions(source)
        findings = [
            f
            for f in ctx.findings
            if not (
                (codes := suppressions.get(f.line))
                and ("all" in codes or f.code in codes)
            )
        ]
        return sorted(fingerprint_findings(findings, source.splitlines()))

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        """Lint one file; paths in findings are relative to ``root``."""
        path = Path(path)
        root = Path(root) if root is not None else Path.cwd()
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return self.lint_source(path.read_text(encoding="utf-8"), relpath)

    def lint_paths(
        self, paths: Sequence[Path], root: Optional[Path] = None
    ) -> List[Finding]:
        """Lint every ``.py`` file under ``paths`` (files or directories)."""
        findings: List[Finding] = []
        for file in iter_python_files([Path(p) for p in paths]):
            findings.extend(self.lint_file(file, root=root))
        return sorted(findings)


__all__ = [
    "DISABLE_MARKER",
    "FINGERPRINT_LEN",
    "Finding",
    "FileContext",
    "LintEngine",
    "finding_fingerprint",
    "fingerprint_findings",
    "iter_python_files",
    "parent_of",
    "parse_suppressions",
]
