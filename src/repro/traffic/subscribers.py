"""Synthetic subscriber population.

Subscribers have a home commune (drawn from the resident distribution), a
behavioural class driving their weekly mobility, a device capability
(4G-capable or 3G-only), a per-service adoption set, and an activity
scale (heavy/light users).  The session-level generator walks these
subscribers through their week.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro.geo.country import Country
from repro.geo.urbanization import UrbanizationClass
from repro.traffic.intensity import IntensityModel


class SubscriberClass(enum.Enum):
    """Behavioural classes with distinct weekly itineraries."""

    RESIDENT = "resident"  # stays in/near the home commune
    COMMUTER = "commuter"  # weekday home -> work -> home
    STUDENT = "student"  # weekday school rhythm with breaks
    TGV_TRAVELLER = "tgv"  # takes high-speed trains on some days


#: Class mix by home urbanization level.  Students and commuters
#: concentrate where there are schools and jobs; TGV travellers are rare
#: everywhere (and irrelevant to where they live — what matters is the
#: traffic they generate along the line).
_CLASS_MIX: Dict[UrbanizationClass, Tuple[Tuple[SubscriberClass, float], ...]] = {
    UrbanizationClass.URBAN: (
        (SubscriberClass.RESIDENT, 0.52),
        (SubscriberClass.COMMUTER, 0.30),
        (SubscriberClass.STUDENT, 0.15),
        (SubscriberClass.TGV_TRAVELLER, 0.03),
    ),
    UrbanizationClass.SEMI_URBAN: (
        (SubscriberClass.RESIDENT, 0.50),
        (SubscriberClass.COMMUTER, 0.35),
        (SubscriberClass.STUDENT, 0.13),
        (SubscriberClass.TGV_TRAVELLER, 0.02),
    ),
    UrbanizationClass.RURAL: (
        (SubscriberClass.RESIDENT, 0.62),
        (SubscriberClass.COMMUTER, 0.28),
        (SubscriberClass.STUDENT, 0.09),
        (SubscriberClass.TGV_TRAVELLER, 0.01),
    ),
    UrbanizationClass.TGV: (
        (SubscriberClass.RESIDENT, 0.60),
        (SubscriberClass.COMMUTER, 0.29),
        (SubscriberClass.STUDENT, 0.09),
        (SubscriberClass.TGV_TRAVELLER, 0.02),
    ),
}


@dataclass(frozen=True)
class Subscriber:
    """One synthetic subscriber."""

    imsi_hash: int
    home_commune: int
    subscriber_class: SubscriberClass
    has_4g_device: bool
    #: Lognormal heavy/light-user multiplier on all volumes.
    activity_scale: float
    #: Indices (into the head-service list) of adopted services.
    adopted_services: Tuple[int, ...]
    #: Work/school commune for commuters and students; None otherwise.
    work_commune: Optional[int] = None


class SubscriberPopulation:
    """A set of subscribers plus the lookups the generator needs."""

    def __init__(self, subscribers: List[Subscriber], country: Country):
        if not subscribers:
            raise ValueError("population cannot be empty")
        self.subscribers = subscribers
        self.country = country

    def __len__(self) -> int:
        return len(self.subscribers)

    def __iter__(self):
        return iter(self.subscribers)

    def counts_by_class(self) -> Dict[SubscriberClass, int]:
        counts = {cls: 0 for cls in SubscriberClass}
        for sub in self.subscribers:
            counts[sub.subscriber_class] += 1
        return counts

    def home_counts(self) -> np.ndarray:
        """Number of subscribers homed in each commune."""
        counts = np.zeros(self.country.n_communes, dtype=int)
        for sub in self.subscribers:
            counts[sub.home_commune] += 1
        return counts


def _draw_class(
    rng: np.random.Generator, cls: UrbanizationClass
) -> SubscriberClass:
    mix = _CLASS_MIX[cls]
    r = rng.random()
    acc = 0.0
    for subscriber_class, share in mix:
        acc += share
        if r < acc:
            return subscriber_class
    return mix[-1][0]


def _pick_work_commune(
    country: Country, home: int, rng: np.random.Generator
) -> int:
    """Pick a plausible work/school commune: a denser commune nearby.

    Candidates are drawn among communes within a commuting radius,
    weighted by population (jobs follow people); falls back to the home
    commune when it is already the local maximum.
    """
    grid = country.grid
    xy = grid.coordinates_km
    home_xy = xy[home]
    d = np.linalg.norm(xy - home_xy, axis=1)
    radius = 30.0
    candidates = np.nonzero((d <= radius) & (d > 0))[0]
    if candidates.size == 0:
        return home
    weights = country.population.residents[candidates]
    weights = weights / weights.sum()
    return int(rng.choice(candidates, p=weights))


def synthesize_population(
    country: Country,
    model: IntensityModel,
    n_subscribers: int,
    seed: SeedLike = None,
) -> SubscriberPopulation:
    """Draw ``n_subscribers`` subscribers consistent with the country.

    Home communes follow the resident distribution; classes follow the
    urbanization-dependent mix; service adoption follows the intensity
    model's per-commune adoption rates, so the session-level workload
    reproduces the same spatial sparsity as the volume model.
    """
    if n_subscribers < 1:
        raise ValueError(f"n_subscribers must be >= 1, got {n_subscribers}")
    rng = as_generator(seed)
    home_rng = spawn(rng, "population.homes")
    class_rng = spawn(rng, "population.classes")
    device_rng = spawn(rng, "population.devices")
    adoption_rng = spawn(rng, "population.adoption")
    work_rng = spawn(rng, "population.work")
    scale_rng = spawn(rng, "population.scale")

    residents = country.population.residents
    homes = home_rng.choice(
        country.n_communes, size=n_subscribers, p=residents / residents.sum()
    )
    n_head = model.adoption.shape[1]

    subscribers: List[Subscriber] = []
    for i in range(n_subscribers):
        home = int(homes[i])
        urb = country.class_of(home)
        subscriber_class = _draw_class(class_rng, urb)
        adopted = tuple(
            int(j)
            for j in range(n_head)
            if adoption_rng.random() < model.adoption[home, j]
        )
        work = None
        if subscriber_class in (SubscriberClass.COMMUTER, SubscriberClass.STUDENT):
            work = _pick_work_commune(country, home, work_rng)
        subscribers.append(
            Subscriber(
                imsi_hash=int(1_000_000_007 * (i + 1) % (2**61 - 1)),
                home_commune=home,
                subscriber_class=subscriber_class,
                has_4g_device=bool(device_rng.random() < 0.62),
                activity_scale=float(scale_rng.lognormal(mean=-0.125, sigma=0.5)),
                adopted_services=adopted,
                work_commune=work,
            )
        )
    return SubscriberPopulation(subscribers, country)


__all__ = [
    "SubscriberClass",
    "Subscriber",
    "SubscriberPopulation",
    "synthesize_population",
]
