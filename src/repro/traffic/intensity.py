"""The shared statistical model behind both workload resolutions.

:class:`IntensityModel` turns the service profiles into concrete numbers:

- ``per_subscriber_volume[c, s]`` — expected weekly bytes a subscriber
  resident in commune ``c`` exchanges with head service ``s``
  (adoption × per-adopter volume, modulated by urbanization class,
  population density, technology gating and spatially-correlated noise);
- ``temporal_weights[s, t]`` — the normalized weekly demand curve of
  each head service, plus per-urbanization-class variants (near-identical
  for urban/semi-urban/rural, train-schedule-gated for TGV communes).

Both the closed-form volume model and the session-level generator draw
from this object, which is what makes the two resolutions agree (tested
in ``tests/integration/test_model_agreement.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro._time import TimeAxis
from repro.geo.country import Country
from repro.geo.coverage import Technology
from repro.geo.urbanization import UrbanizationClass
from repro.services.catalog import ServiceCatalog
from repro.services.profiles import ProfileLibrary

#: Scale of the country-wide shared lognormal field (common to all
#: services); drives the strong pairwise spatial correlations of Fig. 10.
SHARED_FIELD_SIGMA = 1.0

#: Strength of the per-class temporal perturbation for urban, semi-urban
#: and rural communes (small: the paper finds timing barely depends on
#: urbanization).
CLASS_TEMPORAL_EPSILON = {
    UrbanizationClass.URBAN: 0.00,
    UrbanizationClass.SEMI_URBAN: 0.03,
    UrbanizationClass.RURAL: 0.07,
}

#: Uplink topical-peak scaling by service category: sharing-oriented
#: services burst upstream around social moments, streaming barely does.
UPLINK_PEAK_SCALE = {
    "social": 1.30,
    "messaging": 1.30,
    "cloud": 1.20,
    "streaming": 0.75,
}


def train_schedule_gate(axis: TimeAxis) -> np.ndarray:
    """Weekly gating curve of high-speed-rail ridership.

    Trains run roughly 6am-10pm with departure waves in the morning,
    around midday and in the late afternoon; weekend ridership leans to
    Friday/Sunday evening returns.  TGV communes see traffic only while
    trains pass, so their demand curves are the product of the service
    curve and this gate — which is why the paper finds TGV temporal
    dynamics uncorrelated with everybody else's (Fig. 11, bottom).
    """
    hours = axis.hours() % 24.0
    gate = np.zeros(axis.n_bins)
    in_service = (hours >= 6.0) & (hours <= 22.0)
    gate[in_service] = 0.25
    for centre, width, height in ((7.5, 1.2, 1.0), (12.5, 1.5, 0.6), (17.8, 1.5, 1.0)):
        gate += height * np.exp(-0.5 * ((hours - centre) / width) ** 2)
    gate[~in_service] *= 0.05
    return gate


def _class_perturbation(axis: TimeAxis, cls: UrbanizationClass) -> np.ndarray:
    """Small deterministic per-class reshaping of the daily curve.

    Rural evenings start earlier and mornings sharper; semi-urban sits in
    between.  The perturbation is smooth and class-specific, so series of
    the same service in different classes stay strongly correlated but
    not identical.
    """
    hours = axis.hours() % 24.0
    phase = {  # hours of small positive/negative pressure per class
        UrbanizationClass.URBAN: 0.0,
        UrbanizationClass.SEMI_URBAN: 0.4,
        UrbanizationClass.RURAL: 0.9,
    }.get(cls, 0.0)
    return np.sin(2.0 * np.pi * (hours - 19.0 + phase) / 24.0)


@dataclass
class IntensityModel:
    """Concrete intensities for one (country, catalog, profiles) triple."""

    country: Country
    catalog: ServiceCatalog
    profiles: ProfileLibrary
    axis: TimeAxis
    total_weekly_bytes: float
    #: (n_communes, n_head) expected weekly DL bytes per resident subscriber.
    per_subscriber_dl: np.ndarray
    #: (n_communes, n_head) expected weekly UL bytes per resident subscriber.
    per_subscriber_ul: np.ndarray
    #: (n_head, n_bins) normalized national temporal weights (downlink).
    temporal_weights: np.ndarray
    #: class -> (n_head, n_bins) normalized temporal weights (downlink).
    class_temporal_weights: Dict[UrbanizationClass, np.ndarray]
    #: (n_communes,) expected adopter share actually drawn per service —
    #: kept for the session-level generator's adoption sampling.
    adoption: np.ndarray  # (n_communes, n_head)
    #: Uplink variants: same base rhythms, direction-scaled peaks.
    temporal_weights_ul: Optional[np.ndarray] = None
    class_temporal_weights_ul: Optional[Dict[UrbanizationClass, np.ndarray]] = None

    @property
    def head_names(self) -> List[str]:
        return [s.name for s in self.catalog.head_services]

    def expected_commune_volume(self, direction: str) -> np.ndarray:
        """(n_communes, n_head) expected weekly commune volume."""
        per_sub = self.per_subscriber_dl if direction == "dl" else self.per_subscriber_ul
        if direction not in ("dl", "ul"):
            raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")
        subs = self.country.subscribers_per_commune()
        return per_sub * subs[:, None]

    def temporal_for_commune(self, commune_id: int) -> np.ndarray:
        """(n_head, n_bins) temporal weights for one commune's class."""
        cls = self.country.class_of(commune_id)
        return self.class_temporal_weights[cls]

    def class_weights_for(
        self, direction: str
    ) -> Dict[UrbanizationClass, np.ndarray]:
        """Per-class temporal weights for one direction."""
        if direction == "dl":
            return self.class_temporal_weights
        if direction == "ul":
            return self.class_temporal_weights_ul or self.class_temporal_weights
        raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")


#: Nationwide weekly mobile data volume at full (30 M subscriber) scale,
#: ~2016 French levels.  Scaled-down countries get a proportional share so
#: per-subscriber volumes stay realistic at any tessellation size.
REFERENCE_WEEKLY_BYTES = 8.0e15


def build_intensity_model(
    country: Country,
    catalog: ServiceCatalog,
    profiles: ProfileLibrary,
    axis: TimeAxis = TimeAxis(1),
    total_weekly_bytes: Optional[float] = None,
    seed: SeedLike = None,
) -> IntensityModel:
    """Instantiate the shared statistical model.

    The per-subscriber volume matrix is calibrated so the national
    per-service totals match the catalog's volume shares exactly: the
    spatial structure redistributes each service's national volume, it
    never changes it — Fig. 2/3 therefore hold by construction while
    Figs. 8-11 emerge from the redistribution.

    ``total_weekly_bytes=None`` scales the reference nationwide volume by
    the country's population scale.
    """
    if total_weekly_bytes is None:
        total_weekly_bytes = REFERENCE_WEEKLY_BYTES * country.config.population_scale
    rng = as_generator(seed)
    field_rng = spawn(rng, "intensity.shared-field")
    noise_rng = spawn(rng, "intensity.private-noise")

    head = catalog.head_services
    n_communes = country.n_communes
    n_head = len(head)
    density = country.population.density_km2
    classes = country.urbanization.classes
    subs = country.subscribers_per_commune()

    # Density coupling is computed relative to each commune's *class
    # median* density: it creates the within-class gradient that
    # concentrates traffic on city cores (Fig. 8) and correlates services
    # (Fig. 10) without shifting the class-aggregate per-subscriber
    # levels that Fig. 11 pins to the class multipliers.
    class_median = np.ones(n_communes)
    for cls in UrbanizationClass:
        mask = classes == int(cls)
        if mask.any():
            class_median[mask] = np.median(density[mask])
    relative_density = np.maximum(density, 1e-9) / class_median

    shared_field = field_rng.normal(0.0, 1.0, size=n_communes)

    per_sub = {d: np.zeros((n_communes, n_head)) for d in ("dl", "ul")}
    adoption = np.zeros((n_communes, n_head))
    dl_shares = catalog.volume_vector("dl")
    ul_shares = catalog.volume_vector("ul")

    for j, service in enumerate(head):
        spatial = profiles.spatial_for(service.name)
        mult = np.array(
            [spatial.multiplier(UrbanizationClass(int(c))) for c in classes]
        )
        coupling = relative_density**spatial.density_exponent
        gate = np.ones(n_communes)
        if spatial.required_technology is Technology.G4:
            gate = np.where(country.coverage.has_4g, 1.0, spatial.fallback_share)
        noise = np.exp(
            SHARED_FIELD_SIGMA * spatial.shared_field_weight * shared_field
            + spatial.private_noise_sigma * noise_rng.normal(0.0, 1.0, n_communes)
        )
        # Pin each class's subscriber-weighted mean of the gradient+noise
        # term to 1, so the Fig. 11 class aggregates equal the class
        # multipliers (the gradient only redistributes *within* classes).
        gradient = coupling * noise
        for cls in UrbanizationClass:
            mask = classes == int(cls)
            if mask.any():
                weighted = float(
                    (gradient[mask] * subs[mask]).sum() / max(subs[mask].sum(), 1e-9)
                )
                if weighted > 0:
                    gradient[mask] /= weighted
        shape = mult * gate * gradient
        adoption[:, j] = np.clip(spatial.adoption_rate * np.sqrt(mult * gate), 0.0, 1.0)

        for direction, shares in (("dl", dl_shares), ("ul", ul_shares)):
            national = total_weekly_bytes * shares[service.service_id]
            commune_volume = shape * subs
            commune_volume = commune_volume / commune_volume.sum() * national
            per_sub[direction][:, j] = commune_volume / np.maximum(subs, 1e-9)

    def build_direction_curves(peak_scales):
        curves = np.zeros((n_head, axis.n_bins))
        for j, service in enumerate(head):
            curves[j] = profiles.temporal_for(service.name).weekly_curve(
                axis, peak_scale=peak_scales[j]
            )
        gate = train_schedule_gate(axis)
        by_class: Dict[UrbanizationClass, np.ndarray] = {}
        for cls in UrbanizationClass:
            if cls is UrbanizationClass.TGV:
                shaped = curves * gate[None, :]
            else:
                eps = CLASS_TEMPORAL_EPSILON[cls]
                perturb = 1.0 + eps * _class_perturbation(axis, cls)[None, :]
                shaped = curves * perturb
            by_class[cls] = shaped / shaped.sum(axis=1, keepdims=True)
        return curves, by_class

    temporal, class_weights = build_direction_curves(np.ones(n_head))
    # Uplink peaks harder for sharing-oriented services and softer for
    # consumption-oriented ones — the DL and UL weekly shapes stay close
    # but are not copies (the paper analyses them separately throughout).
    ul_scales = np.array(
        [UPLINK_PEAK_SCALE.get(s.category.value, 1.0) for s in head]
    )
    temporal_ul, class_weights_ul = build_direction_curves(ul_scales)

    return IntensityModel(
        country=country,
        catalog=catalog,
        profiles=profiles,
        axis=axis,
        total_weekly_bytes=total_weekly_bytes,
        per_subscriber_dl=per_sub["dl"],
        per_subscriber_ul=per_sub["ul"],
        temporal_weights=temporal,
        class_temporal_weights=class_weights,
        adoption=adoption,
        temporal_weights_ul=temporal_ul,
        class_temporal_weights_ul=class_weights_ul,
    )


__all__ = [
    "SHARED_FIELD_SIGMA",
    "CLASS_TEMPORAL_EPSILON",
    "train_schedule_gate",
    "IntensityModel",
    "build_intensity_model",
]
