"""Streaming trace persistence for session-level probe records.

Nationwide session-level traces do not fit in memory; the writer streams
:class:`~repro.network.probes.ProbeRecord` rows to a gzipped CSV and the
reader yields them back lazily, so the aggregation pipeline can run in
constant memory over arbitrarily large traces.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.geo.coverage import Technology
from repro.network.gtp import FlowDescriptor
from repro.network.probes import ProbeRecord

_FIELDS = (
    "timestamp_s",
    "imsi_hash",
    "commune_id",
    "technology",
    "flow_id",
    "sni",
    "host",
    "server_port",
    "protocol",
    "payload_hint",
    "dl_bytes",
    "ul_bytes",
)


class TraceWriter:
    """Streams probe records to a gzipped CSV file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = gzip.open(self.path, "wt", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(_FIELDS)
        self.rows_written = 0

    def write(self, record: ProbeRecord) -> None:
        """Append one record."""
        flow = record.flow
        self._writer.writerow(
            (
                f"{record.timestamp_s:.3f}",
                record.imsi_hash,
                record.commune_id,
                int(record.technology),
                flow.flow_id,
                flow.sni or "",
                flow.host or "",
                flow.server_port,
                flow.protocol,
                flow.payload_hint or "",
                f"{record.dl_bytes:.1f}",
                f"{record.ul_bytes:.1f}",
            )
        )
        self.rows_written += 1

    def write_all(self, records: Iterable[ProbeRecord]) -> int:
        """Append many records; returns the number written."""
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Lazily iterates probe records back from a gzipped CSV trace."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(f"trace file {self.path} does not exist")

    def __iter__(self) -> Iterator[ProbeRecord]:
        with gzip.open(self.path, "rt", newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if tuple(header or ()) != _FIELDS:
                raise ValueError(
                    f"{self.path} is not a repro trace (bad header: {header})"
                )
            for row in reader:
                yield _row_to_record(row)


def _row_to_record(row) -> ProbeRecord:
    (
        timestamp_s,
        imsi_hash,
        commune_id,
        technology,
        flow_id,
        sni,
        host,
        server_port,
        protocol,
        payload_hint,
        dl_bytes,
        ul_bytes,
    ) = row
    flow = FlowDescriptor(
        flow_id=int(flow_id),
        sni=sni or None,
        host=host or None,
        server_port=int(server_port),
        protocol=protocol,
        payload_hint=payload_hint or None,
    )
    return ProbeRecord(
        timestamp_s=float(timestamp_s),
        imsi_hash=int(imsi_hash),
        commune_id=int(commune_id),
        technology=Technology(int(technology)),
        flow=flow,
        dl_bytes=float(dl_bytes),
        ul_bytes=float(ul_bytes),
    )


__all__ = ["TraceWriter", "TraceReader"]
