"""Weekly itineraries.

The :class:`MobilityModel` answers one question for the session-level
generator: *where is subscriber X at hour t of the week?*  Itineraries
are deterministic per subscriber (drawn once from the subscriber's class
and a seed), piecewise-constant in time:

- **residents** stay in their home commune;
- **commuters** are at work 9am-6pm on working days (arriving through
  the 8am commute, leaving through the 6pm one);
- **students** follow the school rhythm (8am-5pm) — their mid-morning
  presence at school is what concentrates the morning-break usage peak
  of the student-heavy services;
- **TGV travellers** make return trips between two rail hubs on 1-3 days
  of the week, traversing the corridor communes during the ride.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._rng import SeedLike, as_generator
from repro._time import DAYS_PER_WEEK, HOURS_PER_DAY, WORKING_DAYS, hour_of_week
from repro.geo.country import Country
from repro.traffic.subscribers import Subscriber, SubscriberClass


@dataclass(frozen=True)
class Itinerary:
    """A piecewise-constant weekly location trajectory.

    ``breakpoints`` are hour-of-week values (sorted, starting at 0.0) and
    ``communes[i]`` is the commune occupied from ``breakpoints[i]`` until
    the next breakpoint.
    """

    breakpoints: Tuple[float, ...]
    communes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.breakpoints) != len(self.communes):
            raise ValueError("breakpoints and communes must have equal length")
        if not self.breakpoints or self.breakpoints[0] != 0.0:
            raise ValueError("itinerary must start at hour 0.0")
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ValueError("breakpoints must be sorted")

    def location_at(self, hour: float) -> int:
        """Commune occupied at a given hour-of-week."""
        if not 0 <= hour < DAYS_PER_WEEK * HOURS_PER_DAY:
            raise ValueError(f"hour must be in [0, 168), got {hour}")
        idx = bisect.bisect_right(self.breakpoints, hour) - 1
        return self.communes[idx]

    def locations_at(self, hours: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`location_at` over an array of hours."""
        hours = np.asarray(hours)
        if len(hours) and not (
            (hours >= 0).all() and (hours < DAYS_PER_WEEK * HOURS_PER_DAY).all()
        ):
            raise ValueError("hours must be in [0, 168)")
        idx = np.searchsorted(np.asarray(self.breakpoints), hours, side="right") - 1
        return np.asarray(self.communes, dtype=np.int64)[idx]

    def visited_communes(self) -> Tuple[int, ...]:
        """Distinct communes, in first-visit order."""
        seen: Dict[int, None] = {}
        for commune in self.communes:
            seen.setdefault(commune, None)
        return tuple(seen.keys())


def _segments_to_itinerary(
    segments: List[Tuple[float, int]]
) -> Itinerary:
    """Collapse (start_hour, commune) segments, merging repeats."""
    breakpoints: List[float] = []
    communes: List[int] = []
    for start, commune in segments:
        if communes and communes[-1] == commune:
            continue
        breakpoints.append(start)
        communes.append(commune)
    return Itinerary(tuple(breakpoints), tuple(communes))


class MobilityModel:
    """Builds and caches per-subscriber weekly itineraries."""

    def __init__(self, country: Country, seed: SeedLike = None):
        self._country = country
        self._rng = as_generator(seed)
        self._cache: Dict[int, Itinerary] = {}

    def itinerary_for(self, subscriber: Subscriber) -> Itinerary:
        """Return (building on first use) the subscriber's itinerary."""
        cached = self._cache.get(subscriber.imsi_hash)
        if cached is not None:
            return cached
        builder = {
            SubscriberClass.RESIDENT: self._resident,
            SubscriberClass.COMMUTER: self._commuter,
            SubscriberClass.STUDENT: self._student,
            SubscriberClass.TGV_TRAVELLER: self._tgv_traveller,
        }[subscriber.subscriber_class]
        itinerary = builder(subscriber)
        self._cache[subscriber.imsi_hash] = itinerary
        return itinerary

    def _resident(self, subscriber: Subscriber) -> Itinerary:
        return Itinerary((0.0,), (subscriber.home_commune,))

    def _daily_shuttle(
        self, subscriber: Subscriber, leave: float, back: float
    ) -> Itinerary:
        work = subscriber.work_commune
        if work is None or work == subscriber.home_commune:
            return self._resident(subscriber)
        segments: List[Tuple[float, int]] = [(0.0, subscriber.home_commune)]
        for day in WORKING_DAYS:
            segments.append((hour_of_week(day, leave), work))
            segments.append((hour_of_week(day, back), subscriber.home_commune))
        return _segments_to_itinerary(segments)

    def _commuter(self, subscriber: Subscriber) -> Itinerary:
        jitter = float(self._rng.uniform(-0.5, 0.5))
        return self._daily_shuttle(subscriber, 8.0 + jitter, 18.2 + jitter)

    def _student(self, subscriber: Subscriber) -> Itinerary:
        return self._daily_shuttle(subscriber, 7.8, 17.2)

    def _tgv_traveller(self, subscriber: Subscriber) -> Itinerary:
        rail = self._country.rail
        hubs = rail.hub_cities
        if len(hubs) < 2:
            return self._resident(subscriber)
        rng = self._rng
        origin, dest = rng.choice(len(hubs), size=2, replace=False)
        origin_rank = hubs[int(origin)].rank
        dest_rank = hubs[int(dest)].rank
        corridor = rail.communes_along(origin_rank, dest_rank, corridor_km=4.0)
        if corridor.size == 0:
            return self._resident(subscriber)

        n_trips = int(rng.integers(1, 4))
        trip_days = sorted(
            int(d) for d in rng.choice(DAYS_PER_WEEK, size=n_trips, replace=False)
        )
        segments: List[Tuple[float, int]] = [(0.0, subscriber.home_commune)]
        ride_hours = max(1.0, len(corridor) * 0.02)  # ~300 km/h over ~6 km cells
        for day in trip_days:
            depart = float(rng.choice((7.5, 12.5, 17.5)))
            self._append_ride(segments, day, depart, corridor, ride_hours)
            # Return ride in the evening, along the reversed corridor.
            return_depart = min(21.0, depart + ride_hours + 3.0)
            self._append_ride(
                segments, day, return_depart, corridor[::-1], ride_hours
            )
            arrive_home = hour_of_week(day, return_depart) + ride_hours
            if arrive_home < DAYS_PER_WEEK * HOURS_PER_DAY:
                segments.append((arrive_home, subscriber.home_commune))
        segments.sort(key=lambda item: item[0])
        return _segments_to_itinerary(segments)

    @staticmethod
    def _append_ride(
        segments: List[Tuple[float, int]],
        day: int,
        depart: float,
        corridor: Sequence[int],
        ride_hours: float,
    ) -> None:
        start = hour_of_week(day, depart)
        step = ride_hours / len(corridor)
        for k, commune in enumerate(corridor):
            t = start + k * step
            if t >= DAYS_PER_WEEK * HOURS_PER_DAY:
                break
            segments.append((t, int(commune)))

    def presence_matrix(
        self, subscribers: Sequence[Subscriber], bins_per_hour: int = 1
    ) -> np.ndarray:
        """(n_communes, n_bins) count of subscribers present per bin.

        A diagnostic/aggregation helper: integrates all itineraries onto a
        time grid.  Used by tests and by the dataset pipeline to estimate
        "average number of users per commune" the way the paper does.
        """
        n_bins = DAYS_PER_WEEK * HOURS_PER_DAY * bins_per_hour
        presence = np.zeros((self._country.n_communes, n_bins), dtype=np.int32)
        for subscriber in subscribers:
            itinerary = self.itinerary_for(subscriber)
            # Each bin counts the location at its start, so every
            # subscriber contributes exactly once per bin.
            breaks = list(itinerary.breakpoints) + [DAYS_PER_WEEK * HOURS_PER_DAY]
            for i, commune in enumerate(itinerary.communes):
                b0 = int(np.ceil(breaks[i] * bins_per_hour - 1e-9))
                b1 = int(np.ceil(breaks[i + 1] * bins_per_hour - 1e-9))
                presence[commune, b0:b1] += 1
        return presence


__all__ = ["Itinerary", "MobilityModel"]
