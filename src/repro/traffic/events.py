"""Nationwide special-event injection.

The paper deliberately measured a week "carefully selected so as to
avoid major nationwide events like holidays or strikes" (§2).  This
module makes that choice testable: it injects stylized nationwide
events into national demand series so analyses can demonstrate *why* a
clean week matters — events contaminate the topical-time signatures and
distort the clustering space.

Three event archetypes:

- **strike** — a working day behaves like a weekend: commute peaks
  collapse, midday flattens (transport strikes suppress mobility);
- **broadcast** — a shared evening spectacle (a cup final): a sharp
  synchronized evening surge across *social and messaging* services,
  while streaming dips (the TV carries the content);
- **holiday** — an extra weekend-like day with elevated streaming and
  depressed work-tool usage (mail, office services).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._time import TimeAxis
from repro.services.catalog import ServiceCategory

EVENT_KINDS = ("strike", "broadcast", "holiday")

#: Per-category multipliers applied during a broadcast-evening window.
_BROADCAST_FACTORS = {
    ServiceCategory.SOCIAL: 2.2,
    ServiceCategory.MESSAGING: 2.6,
    ServiceCategory.STREAMING: 0.65,
}

#: Per-category all-day multipliers on a holiday.
_HOLIDAY_FACTORS = {
    ServiceCategory.STREAMING: 1.35,
    ServiceCategory.GAMING: 1.3,
    ServiceCategory.MESSAGING: 0.75,
    ServiceCategory.WEB: 0.85,
}


@dataclass(frozen=True)
class EventSpec:
    """One nationwide event."""

    kind: str
    day: int  # 0 = Saturday

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )
        if not 0 <= self.day < 7:
            raise ValueError(f"day must be in [0, 7), got {self.day}")


def inject_event(
    series: np.ndarray,
    categories: Sequence[ServiceCategory],
    axis: TimeAxis,
    event: EventSpec,
) -> np.ndarray:
    """Return a copy of ``(n_services, n_bins)`` series with one event.

    ``categories[j]`` is the category of service row ``j``.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"expected (services, bins), got shape {series.shape}")
    if len(categories) != series.shape[0]:
        raise ValueError(
            f"{len(categories)} categories for {series.shape[0]} series"
        )
    out = series.copy()
    bins_per_day = 24 * axis.bins_per_hour
    day = slice(event.day * bins_per_day, (event.day + 1) * bins_per_day)
    hours = np.arange(bins_per_day) / axis.bins_per_hour

    if event.kind == "strike":
        # Commute and midday peaks collapse toward the day's baseline.
        damp = np.ones(bins_per_day)
        for centre in (8.0, 13.0, 18.0):
            damp -= 0.45 * np.exp(-0.5 * ((hours - centre) / 1.0) ** 2)
        out[:, day] *= damp[None, :]
    elif event.kind == "broadcast":
        window = np.exp(-0.5 * ((hours - 21.0) / 0.8) ** 2)
        for j, category in enumerate(categories):
            factor = _BROADCAST_FACTORS.get(category)
            if factor is not None:
                out[j, day] *= 1.0 + (factor - 1.0) * window
    elif event.kind == "holiday":
        for j, category in enumerate(categories):
            factor = _HOLIDAY_FACTORS.get(category, 1.0)
            out[j, day] *= factor
    return out


def inject_events(
    series: np.ndarray,
    categories: Sequence[ServiceCategory],
    axis: TimeAxis,
    events: Sequence[EventSpec],
) -> np.ndarray:
    """Apply several events in sequence."""
    out = np.asarray(series, dtype=float)
    for event in events:
        out = inject_event(out, categories, axis, event)
    return out


def event_week_distortion(
    clean: np.ndarray, eventful: np.ndarray
) -> float:
    """Mean relative L1 distortion between the two weeks' shapes.

    A summary of how much an event week deviates from a clean one after
    per-service normalization — the quantity the paper's week selection
    keeps near zero.
    """
    clean = np.asarray(clean, dtype=float)
    eventful = np.asarray(eventful, dtype=float)
    if clean.shape != eventful.shape:
        raise ValueError("weeks must have identical shapes")
    a = clean / clean.sum(axis=-1, keepdims=True)
    b = eventful / eventful.sum(axis=-1, keepdims=True)
    return float(np.abs(a - b).sum(axis=-1).mean())


__all__ = [
    "EVENT_KINDS",
    "EventSpec",
    "inject_event",
    "inject_events",
    "event_week_distortion",
]
