"""Session-level workload generation.

Drives synthetic subscribers through their week on the full network
path: each data session is established through the
:class:`~repro.network.session.SessionManager` (emitting the GTP-C
signalling a probe taps), exchanges fingerprinted flows (GTP-U), follows
the subscriber across communes (RA/TA handovers), and is torn down.

The per-(subscriber, service) volumes and session times derive from the
same :class:`~repro.traffic.intensity.IntensityModel` as the closed-form
volume model, so the two resolutions agree on their statistical
marginals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro._time import WEEK_HOURS
from repro.dpi.fingerprints import FingerprintDatabase
from repro.network.handover import HandoverManager
from repro.network.session import SessionManager
from repro.network.topology import NetworkTopology
from repro.traffic.intensity import IntensityModel
from repro.traffic.mobility import MobilityModel
from repro.traffic.subscribers import SubscriberPopulation


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the session-level workload."""

    #: Mean number of weekly sessions per (subscriber, adopted service).
    sessions_per_service: float = 6.0
    #: Mean flows per session (geometric).
    flows_per_session: float = 2.0
    #: Lognormal sigma of per-session volume jitter.
    session_volume_sigma: float = 0.8
    #: Sessions longer than this may span a mobility change (minutes).
    long_session_minutes: float = 45.0

    def __post_init__(self) -> None:
        if self.sessions_per_service <= 0:
            raise ValueError("sessions_per_service must be > 0")
        if self.flows_per_session < 1:
            raise ValueError("flows_per_session must be >= 1")


class SessionLevelGenerator:
    """Generates one measurement week of session-level traffic."""

    def __init__(
        self,
        model: IntensityModel,
        population: SubscriberPopulation,
        topology: NetworkTopology,
        fingerprints: FingerprintDatabase,
        config: WorkloadConfig = WorkloadConfig(),
        seed: SeedLike = None,
    ):
        self._model = model
        self._population = population
        self._topology = topology
        self._fingerprints = fingerprints
        self._config = config
        rng = as_generator(seed)
        self._rng = spawn(rng, "generator.main")
        self._session_manager = SessionManager(topology, spawn(rng, "generator.net"))
        self._mobility = MobilityModel(
            population.country, seed=spawn(rng, "generator.mobility")
        )
        self._handover = HandoverManager(topology, self._session_manager)
        self.sessions_generated = 0
        self.flows_generated = 0
        #: Optional localization auditor (see
        #: :mod:`repro.network.localization`); when set, every reported
        #: flow contributes a (true position, ULI cell) error sample.
        self.auditor = None

    @property
    def session_manager(self) -> SessionManager:
        """The session manager — attach probes here before running."""
        return self._session_manager

    @property
    def mobility(self) -> MobilityModel:
        return self._mobility

    def run_week(self, time_limit_hours: Optional[float] = None) -> None:
        """Generate the whole week of traffic for every subscriber.

        ``time_limit_hours`` truncates the generated week (useful in
        tests); sessions starting past the limit are skipped.
        """
        horizon = time_limit_hours if time_limit_hours is not None else WEEK_HOURS
        for subscriber in self._population:
            self._run_subscriber(subscriber, horizon)

    def _run_subscriber(self, subscriber, horizon: float) -> None:
        rng = self._rng
        model = self._model
        config = self._config
        itinerary = self._mobility.itinerary_for(subscriber)
        home = subscriber.home_commune
        home_cls = self._population.country.class_of(home)
        curves = model.class_temporal_weights[home_cls]
        bins_per_hour = model.axis.bins_per_hour
        adoption = model.adoption[home]

        for service_index in subscriber.adopted_services:
            # Per-adopter weekly volume: the commune-level expectation is
            # adoption * per-adopter, so divide the per-subscriber figure
            # by the local adoption rate.
            p_adopt = max(float(adoption[service_index]), 1e-6)
            weekly_dl = (
                float(model.per_subscriber_dl[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            weekly_ul = (
                float(model.per_subscriber_ul[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            n_sessions = int(rng.poisson(config.sessions_per_service))
            if n_sessions == 0 or weekly_dl + weekly_ul <= 0:
                continue

            weights = curves[service_index]
            bins = rng.choice(len(weights), size=n_sessions, p=weights / weights.sum())
            jitter = np.exp(
                rng.normal(0.0, config.session_volume_sigma, n_sessions)
            )
            jitter /= jitter.sum()
            service_name = model.head_names[service_index]

            for k in range(n_sessions):
                start_hour = (bins[k] + rng.random()) / bins_per_hour
                if start_hour >= horizon:
                    continue
                self._one_session(
                    subscriber,
                    itinerary,
                    service_name,
                    start_hour,
                    weekly_dl * float(jitter[k]),
                    weekly_ul * float(jitter[k]),
                )

    def _one_session(
        self,
        subscriber,
        itinerary,
        service_name: str,
        start_hour: float,
        dl_bytes: float,
        ul_bytes: float,
    ) -> None:
        rng = self._rng
        config = self._config
        commune = itinerary.location_at(start_hour)
        timestamp = start_hour * 3600.0
        session = self._session_manager.attach(
            imsi_hash=subscriber.imsi_hash,
            commune_id=commune,
            wants_4g=subscriber.has_4g_device,
            timestamp_s=timestamp,
        )
        self.sessions_generated += 1

        duration_minutes = float(rng.exponential(15.0)) + 1.0
        n_flows = 1 + int(rng.geometric(1.0 / config.flows_per_session) - 1)
        splits = rng.dirichlet(np.ones(n_flows))

        # Long sessions may span a mobility change, exercising the
        # handover path (and the ULI staleness it creates).
        span_move = duration_minutes > config.long_session_minutes
        mid_hour = min(start_hour + duration_minutes / 120.0, WEEK_HOURS - 1e-6)
        mid_commune = itinerary.location_at(mid_hour)

        for f in range(n_flows):
            flow = self._fingerprints.emit_flow(service_name)
            flow_time = timestamp + f * 30.0
            true_commune = commune
            if span_move and mid_commune != commune and f == n_flows - 1:
                session = self._handover.move(
                    session,
                    mid_commune,
                    subscriber.has_4g_device,
                    mid_hour * 3600.0,
                )
                flow_time = mid_hour * 3600.0
                true_commune = mid_commune
            self._session_manager.report_flow(
                session,
                flow,
                dl_bytes=dl_bytes * float(splits[f]),
                ul_bytes=ul_bytes * float(splits[f]),
                timestamp_s=flow_time,
            )
            self.flows_generated += 1
            if self.auditor is not None:
                self.auditor.record(true_commune, session.uli)

        end = timestamp + duration_minutes * 60.0
        self._session_manager.detach(session, timestamp_s=end)


__all__ = ["WorkloadConfig", "SessionLevelGenerator"]
