"""Session-level workload generation.

Drives synthetic subscribers through their week on the full network
path: each data session is established through the
:class:`~repro.network.session.SessionManager` (emitting the GTP-C
signalling a probe taps), exchanges fingerprinted flows (GTP-U), follows
the subscriber across communes (RA/TA handovers), and is torn down.

The per-(subscriber, service) volumes and session times derive from the
same :class:`~repro.traffic.intensity.IntensityModel` as the closed-form
volume model, so the two resolutions agree on their statistical
marginals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro._rng import SeedLike, as_generator, spawn
from repro._time import WEEK_HOURS
from repro.dpi.fingerprints import FingerprintDatabase
from repro.network.gtp import FlowDescriptor
from repro.network.handover import HandoverManager
from repro.network.session import SessionManager
from repro.network.topology import NetworkTopology
from repro.traffic.intensity import IntensityModel
from repro.traffic.mobility import MobilityModel
from repro.traffic.subscribers import SubscriberPopulation


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the session-level workload."""

    #: Mean number of weekly sessions per (subscriber, adopted service).
    sessions_per_service: float = 6.0
    #: Mean flows per session (geometric).
    flows_per_session: float = 2.0
    #: Lognormal sigma of per-session volume jitter.
    session_volume_sigma: float = 0.8
    #: Sessions longer than this may span a mobility change (minutes).
    long_session_minutes: float = 45.0

    def __post_init__(self) -> None:
        if self.sessions_per_service <= 0:
            raise ValueError("sessions_per_service must be > 0")
        if self.flows_per_session < 1:
            raise ValueError("flows_per_session must be >= 1")


class _SubscriberDraws:
    """One subscriber's drawn week, ready for emission.

    The draw phase (RNG consumption) and the emission phase (session
    manager calls) are split so the chunked path can buffer several
    subscribers' draws and emit them as one bulk batch without touching
    any RNG stream out of order.
    """

    __slots__ = (
        "imsi", "wants_4g", "communes", "timestamps", "durations",
        "n_flows", "flow_starts", "total_flows", "flow_times", "flow_dl",
        "flow_ul", "flow_ids", "snis", "hosts", "hints", "ports",
        "protocols", "spanning", "mid_hours", "mid_communes",
    )


class SessionLevelGenerator:
    """Generates one measurement week of session-level traffic."""

    def __init__(
        self,
        model: IntensityModel,
        population: SubscriberPopulation,
        topology: NetworkTopology,
        fingerprints: FingerprintDatabase,
        config: WorkloadConfig = WorkloadConfig(),
        seed: SeedLike = None,
    ):
        self._model = model
        self._population = population
        self._topology = topology
        self._fingerprints = fingerprints
        self._config = config
        rng = as_generator(seed)
        self._rng = spawn(rng, "generator.main")
        self._session_manager = SessionManager(topology, spawn(rng, "generator.net"))
        self._mobility = MobilityModel(
            population.country, seed=spawn(rng, "generator.mobility")
        )
        self._handover = HandoverManager(topology, self._session_manager)
        self._cdf_cache: Dict[object, np.ndarray] = {}
        self._head_names = list(model.head_names)
        self.sessions_generated = 0
        self.flows_generated = 0
        #: Optional localization auditor (see
        #: :mod:`repro.network.localization`); when set, every reported
        #: flow contributes a (true position, ULI cell) error sample.
        self.auditor = None

    @property
    def session_manager(self) -> SessionManager:
        """The session manager — attach probes here before running."""
        return self._session_manager

    @property
    def mobility(self) -> MobilityModel:
        return self._mobility

    def run_week(
        self,
        time_limit_hours: Optional[float] = None,
        batched: bool = True,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Generate the whole week of traffic for every subscriber.

        ``time_limit_hours`` truncates the generated week (useful in
        tests); sessions starting past the limit are skipped.

        ``batched=True`` (the default) drives each subscriber's week
        through the columnar session fast path — one bulk
        attach/report/detach round-trip per subscriber — with batched
        RNG draws from the same distributions as the per-session path.
        Handover-spanning long sessions and auditor-instrumented runs
        (``auditor`` set) always use the per-session path, which is also
        selectable with ``batched=False`` for baselines and debugging.
        The two modes draw from the shared stream in different orders,
        so they are statistically equivalent, not bit-identical.

        ``chunk_size`` (batched mode only) buffers subscribers' draws
        and emits one bulk attach/report/detach round-trip per
        ~``chunk_size`` flows instead of per subscriber.  Every RNG
        stream is consumed in exactly the per-subscriber order —
        vectorized draws concatenate across calls and the buffer is
        flushed before any handover-spanning subscriber takes the
        scalar path — so the emitted event stream is identical to the
        unchunked one for every chunk size.
        """
        horizon = time_limit_hours if time_limit_hours is not None else WEEK_HOURS
        with obs.span("generate"):
            if batched and self.auditor is None:
                if chunk_size is not None:
                    self._run_week_chunked(horizon, chunk_size)
                else:
                    for subscriber in self._population:
                        obs.add("generator.subscribers")
                        draws = self._draw_subscriber_batched(
                            subscriber, horizon
                        )
                        if draws is not None:
                            self._emit_subscriber(draws)
            else:
                for subscriber in self._population:
                    obs.add("generator.subscribers")
                    self._run_subscriber(subscriber, horizon)

    def _run_week_chunked(self, horizon: float, chunk_size: int) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        buffer: List[_SubscriberDraws] = []
        pending_flows = 0
        for subscriber in self._population:
            obs.add("generator.subscribers")
            draws = self._draw_subscriber_batched(subscriber, horizon)
            if draws is None:
                continue
            if draws.spanning is not None:
                # Handover-spanning sessions go through the scalar path;
                # flush the buffer first so the network RNG stream and
                # the probe's record order stay in subscriber order.
                pending_flows = self._flush_chunk(buffer)
                self._emit_subscriber(draws)
                continue
            buffer.append(draws)
            pending_flows += draws.total_flows
            if pending_flows >= chunk_size:
                pending_flows = self._flush_chunk(buffer)
        self._flush_chunk(buffer)

    def _flush_chunk(self, buffer: List[_SubscriberDraws]) -> int:
        """Emit buffered subscribers as one bulk batch; returns 0."""
        if not buffer:
            return 0
        sessions_per = np.asarray(
            [len(d.communes) for d in buffer], dtype=np.int64
        )
        imsi = np.repeat(
            np.asarray([d.imsi for d in buffer], dtype=np.int64), sessions_per
        )
        wants_4g = np.repeat(
            np.asarray([d.wants_4g for d in buffer], dtype=bool), sessions_per
        )
        communes = np.concatenate([d.communes for d in buffer])
        timestamps = np.concatenate([d.timestamps for d in buffer])
        durations = np.concatenate([d.durations for d in buffer])
        n_flows = np.concatenate([d.n_flows for d in buffer])
        manager = self._session_manager
        teids, tech_codes = manager.attach_bulk(
            imsi, communes, wants_4g, timestamps, subscribers=len(buffer)
        )
        manager.report_flows_bulk(
            session_teids=teids,
            flows_per_session=n_flows,
            timestamps_s=np.concatenate([d.flow_times for d in buffer]),
            dl_bytes=np.concatenate([d.flow_dl for d in buffer]),
            ul_bytes=np.concatenate([d.flow_ul for d in buffer]),
            flow_ids=[x for d in buffer for x in d.flow_ids],
            snis=[x for d in buffer for x in d.snis],
            hosts=[x for d in buffer for x in d.hosts],
            payload_hints=[x for d in buffer for x in d.hints],
            server_ports=[x for d in buffer for x in d.ports],
            protocols=[x for d in buffer for x in d.protocols],
        )
        manager.detach_bulk(imsi, teids, tech_codes, timestamps + durations * 60.0)
        buffer.clear()
        return 0

    def _temporal_cdfs(self, urbanization_class) -> np.ndarray:
        """Per-service temporal CDFs for one urbanization class.

        Cached inverse-transform tables: sampling a session's time bin
        becomes a ``searchsorted`` instead of a ``rng.choice(p=...)``.
        """
        cdfs = self._cdf_cache.get(urbanization_class)
        if cdfs is None:
            curves = self._model.class_temporal_weights[urbanization_class]
            cdfs = np.cumsum(curves, axis=1)
            cdfs /= cdfs[:, -1:]
            self._cdf_cache[urbanization_class] = cdfs
        return cdfs

    def _draw_subscriber_batched(
        self, subscriber, horizon: float
    ) -> Optional[_SubscriberDraws]:
        """Draw one subscriber's week (all RNG consumption, no emission)."""
        rng = self._rng
        model = self._model
        config = self._config
        itinerary = self._mobility.itinerary_for(subscriber)
        home = subscriber.home_commune
        home_cls = self._population.country.class_of(home)
        cdfs = self._temporal_cdfs(home_cls)
        bins_per_hour = model.axis.bins_per_hour
        adoption = model.adoption[home]

        services = list(subscriber.adopted_services)
        if not services:
            return None
        session_counts = rng.poisson(config.sessions_per_service, size=len(services))

        # Per-service session draws, concatenated into subscriber-level
        # flat arrays (sessions stay grouped by service).
        seg_services: List[int] = []
        seg_counts: List[int] = []
        seg_hours: List[np.ndarray] = []
        seg_dl: List[np.ndarray] = []
        seg_ul: List[np.ndarray] = []
        for j, service_index in enumerate(services):
            n_s = int(session_counts[j])
            p_adopt = max(float(adoption[service_index]), 1e-6)
            weekly_dl = (
                float(model.per_subscriber_dl[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            weekly_ul = (
                float(model.per_subscriber_ul[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            if n_s == 0 or weekly_dl + weekly_ul <= 0:
                continue
            bins = np.searchsorted(cdfs[service_index], rng.random(n_s), side="right")
            jitter = np.exp(rng.normal(0.0, config.session_volume_sigma, n_s))
            jitter /= jitter.sum()
            hours = (bins + rng.random(n_s)) / bins_per_hour
            keep = hours < horizon
            if not keep.any():
                continue
            seg_services.append(service_index)
            seg_counts.append(int(keep.sum()))
            seg_hours.append(hours[keep])
            seg_dl.append(weekly_dl * jitter[keep])
            seg_ul.append(weekly_ul * jitter[keep])
        if not seg_hours:
            return None

        hours = np.concatenate(seg_hours)
        dl_sessions = np.concatenate(seg_dl)
        ul_sessions = np.concatenate(seg_ul)
        n_sessions = len(hours)
        timestamps = hours * 3600.0
        communes = itinerary.locations_at(hours)

        durations = rng.exponential(15.0, n_sessions) + 1.0
        n_flows = rng.geometric(1.0 / config.flows_per_session, size=n_sessions)
        total_flows = int(n_flows.sum())
        flow_starts = np.concatenate(([0], np.cumsum(n_flows)))[:-1]

        # Per-flow volume splits: dirichlet(ones(k)) per session ==
        # segment-normalized standard exponentials.
        raw = rng.standard_exponential(total_flows)
        session_sums = np.add.reduceat(raw, flow_starts)
        splits = raw / np.repeat(session_sums, n_flows)
        flow_dl = np.repeat(dl_sessions, n_flows) * splits
        flow_ul = np.repeat(ul_sessions, n_flows) * splits
        within = np.arange(total_flows) - np.repeat(flow_starts, n_flows)
        flow_times = np.repeat(timestamps, n_flows) + 30.0 * within

        flow_ids: List[int] = []
        snis: List[Optional[str]] = []
        hosts: List[Optional[str]] = []
        hints: List[Optional[str]] = []
        ports: List[int] = []
        protocols: List[str] = []
        svc_seg_starts = np.concatenate(([0], np.cumsum(seg_counts)))[:-1]
        flows_per_service = np.add.reduceat(n_flows, svc_seg_starts)
        for service_index, count in zip(seg_services, flows_per_service.tolist()):
            ids_s, sni_s, host_s, hint_s, port_s, proto_s = (
                self._fingerprints.emit_flow_features(
                    self._head_names[service_index], int(count)
                )
            )
            flow_ids += ids_s
            snis += sni_s
            hosts += host_s
            hints += hint_s
            ports += port_s
            protocols += proto_s

        self.sessions_generated += n_sessions
        self.flows_generated += total_flows
        obs.add("generator.sessions", n_sessions)
        obs.add("generator.flows", total_flows)

        # Long sessions whose subscriber moves mid-session exercise the
        # scalar handover path; everything else rides the bulk path.
        spanning = durations > config.long_session_minutes
        mid_hours = mid_communes = None
        if spanning.any():
            mid_hours = np.minimum(hours + durations / 120.0, WEEK_HOURS - 1e-6)
            mid_communes = itinerary.locations_at(mid_hours)
            spanning &= mid_communes != communes

        draws = _SubscriberDraws()
        draws.imsi = subscriber.imsi_hash
        draws.wants_4g = subscriber.has_4g_device
        draws.communes = communes
        draws.timestamps = timestamps
        draws.durations = durations
        draws.n_flows = n_flows
        draws.flow_starts = flow_starts
        draws.total_flows = total_flows
        draws.flow_times = flow_times
        draws.flow_dl = flow_dl
        draws.flow_ul = flow_ul
        draws.flow_ids = flow_ids
        draws.snis = snis
        draws.hosts = hosts
        draws.hints = hints
        draws.ports = ports
        draws.protocols = protocols
        draws.spanning = spanning if spanning.any() else None
        draws.mid_hours = mid_hours
        draws.mid_communes = mid_communes
        return draws

    def _emit_subscriber(self, draws: _SubscriberDraws) -> None:
        """Emit one subscriber's drawn week through the session manager."""
        manager = self._session_manager
        imsi = draws.imsi
        wants_4g = draws.wants_4g
        communes = draws.communes
        timestamps = draws.timestamps
        durations = draws.durations
        n_flows = draws.n_flows
        flow_times = draws.flow_times
        flow_dl, flow_ul = draws.flow_dl, draws.flow_ul
        flow_ids, snis, hosts = draws.flow_ids, draws.snis, draws.hosts
        hints, ports, protocols = draws.hints, draws.ports, draws.protocols

        if draws.spanning is None:
            teids, tech_codes = manager.attach_bulk(
                imsi, communes, wants_4g, timestamps
            )
            manager.report_flows_bulk(
                session_teids=teids,
                flows_per_session=n_flows,
                timestamps_s=flow_times,
                dl_bytes=flow_dl,
                ul_bytes=flow_ul,
                flow_ids=flow_ids,
                snis=snis,
                hosts=hosts,
                payload_hints=hints,
                server_ports=ports,
                protocols=protocols,
            )
            manager.detach_bulk(
                imsi, teids, tech_codes, timestamps + durations * 60.0
            )
            return
        spanning = draws.spanning
        mid_hours, mid_communes = draws.mid_hours, draws.mid_communes
        flow_starts = draws.flow_starts
        bulk = ~spanning
        if bulk.any():
            keep_flows = np.repeat(bulk, n_flows)
            mask_list = keep_flows.tolist()
            teids, tech_codes = manager.attach_bulk(
                imsi, communes[bulk], wants_4g, timestamps[bulk]
            )
            manager.report_flows_bulk(
                session_teids=teids,
                flows_per_session=n_flows[bulk],
                timestamps_s=flow_times[keep_flows],
                dl_bytes=flow_dl[keep_flows],
                ul_bytes=flow_ul[keep_flows],
                flow_ids=list(itertools.compress(flow_ids, mask_list)),
                snis=list(itertools.compress(snis, mask_list)),
                hosts=list(itertools.compress(hosts, mask_list)),
                payload_hints=list(itertools.compress(hints, mask_list)),
                server_ports=list(itertools.compress(ports, mask_list)),
                protocols=list(itertools.compress(protocols, mask_list)),
            )
            manager.detach_bulk(
                imsi, teids, tech_codes, timestamps[bulk] + durations[bulk] * 60.0
            )
        for i in np.flatnonzero(spanning).tolist():
            session = manager.attach(
                imsi_hash=imsi,
                commune_id=int(communes[i]),
                wants_4g=wants_4g,
                timestamp_s=float(timestamps[i]),
            )
            base = int(flow_starts[i])
            k = int(n_flows[i])
            mid_s = float(mid_hours[i]) * 3600.0
            for f in range(k):
                idx = base + f
                flow_time = float(flow_times[idx])
                if f == k - 1:
                    session = self._handover.move(
                        session, int(mid_communes[i]), wants_4g, mid_s
                    )
                    flow_time = mid_s
                manager.report_flow(
                    session,
                    FlowDescriptor(
                        flow_id=flow_ids[idx],
                        sni=snis[idx],
                        host=hosts[idx],
                        server_port=ports[idx],
                        protocol=protocols[idx],
                        payload_hint=hints[idx],
                    ),
                    dl_bytes=float(flow_dl[idx]),
                    ul_bytes=float(flow_ul[idx]),
                    timestamp_s=flow_time,
                )
            manager.detach(
                session, timestamp_s=float(timestamps[i]) + float(durations[i]) * 60.0
            )

    def _run_subscriber(self, subscriber, horizon: float) -> None:
        rng = self._rng
        model = self._model
        config = self._config
        itinerary = self._mobility.itinerary_for(subscriber)
        home = subscriber.home_commune
        home_cls = self._population.country.class_of(home)
        curves = model.class_temporal_weights[home_cls]
        bins_per_hour = model.axis.bins_per_hour
        adoption = model.adoption[home]

        for service_index in subscriber.adopted_services:
            # Per-adopter weekly volume: the commune-level expectation is
            # adoption * per-adopter, so divide the per-subscriber figure
            # by the local adoption rate.
            p_adopt = max(float(adoption[service_index]), 1e-6)
            weekly_dl = (
                float(model.per_subscriber_dl[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            weekly_ul = (
                float(model.per_subscriber_ul[home, service_index])
                / p_adopt
                * subscriber.activity_scale
            )
            n_sessions = int(rng.poisson(config.sessions_per_service))
            if n_sessions == 0 or weekly_dl + weekly_ul <= 0:
                continue

            weights = curves[service_index]
            bins = rng.choice(len(weights), size=n_sessions, p=weights / weights.sum())
            jitter = np.exp(
                rng.normal(0.0, config.session_volume_sigma, n_sessions)
            )
            jitter /= jitter.sum()
            service_name = model.head_names[service_index]

            for k in range(n_sessions):
                start_hour = (bins[k] + rng.random()) / bins_per_hour
                if start_hour >= horizon:
                    continue
                self._one_session(
                    subscriber,
                    itinerary,
                    service_name,
                    start_hour,
                    weekly_dl * float(jitter[k]),
                    weekly_ul * float(jitter[k]),
                )

    def _one_session(
        self,
        subscriber,
        itinerary,
        service_name: str,
        start_hour: float,
        dl_bytes: float,
        ul_bytes: float,
    ) -> None:
        rng = self._rng
        config = self._config
        commune = itinerary.location_at(start_hour)
        timestamp = start_hour * 3600.0
        session = self._session_manager.attach(
            imsi_hash=subscriber.imsi_hash,
            commune_id=commune,
            wants_4g=subscriber.has_4g_device,
            timestamp_s=timestamp,
        )
        self.sessions_generated += 1
        obs.add("generator.sessions")

        duration_minutes = float(rng.exponential(15.0)) + 1.0
        n_flows = 1 + int(rng.geometric(1.0 / config.flows_per_session) - 1)
        splits = rng.dirichlet(np.ones(n_flows))

        # Long sessions may span a mobility change, exercising the
        # handover path (and the ULI staleness it creates).
        span_move = duration_minutes > config.long_session_minutes
        mid_hour = min(start_hour + duration_minutes / 120.0, WEEK_HOURS - 1e-6)
        mid_commune = itinerary.location_at(mid_hour)

        for f in range(n_flows):
            flow = self._fingerprints.emit_flow(service_name)
            flow_time = timestamp + f * 30.0
            true_commune = commune
            if span_move and mid_commune != commune and f == n_flows - 1:
                session = self._handover.move(
                    session,
                    mid_commune,
                    subscriber.has_4g_device,
                    mid_hour * 3600.0,
                )
                flow_time = mid_hour * 3600.0
                true_commune = mid_commune
            self._session_manager.report_flow(
                session,
                flow,
                dl_bytes=dl_bytes * float(splits[f]),
                ul_bytes=ul_bytes * float(splits[f]),
                timestamp_s=flow_time,
            )
            self.flows_generated += 1
            obs.add("generator.flows")
            if self.auditor is not None:
                self.auditor.record(true_commune, session.uli)

        end = timestamp + duration_minutes * 60.0
        self._session_manager.detach(session, timestamp_s=end)


__all__ = ["WorkloadConfig", "SessionLevelGenerator"]
