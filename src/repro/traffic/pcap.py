"""Pcap export of the simulated GTP traffic.

Real measurement pipelines are debugged with packet captures; this
module writes the simulator's control- and user-plane events as a
classic **pcap file** with wire-faithful framing — Ethernet / IPv4 /
UDP (port 2123 for GTP-C, 2152 for GTP-U) / GTP — so the synthetic
traffic opens in standard tooling (Wireshark dissects the GTP layer).

The G-PDU payload carries a compact TLV flow record (the simulator
accounts flows, not packets); its layout is documented in
:data:`FLOW_RECORD_MAGIC` and round-trips through :func:`read_pcap`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro._units import MICROS_PER_SECOND
from repro.network.gtp import FlowDescriptor, GtpcMessage, UserLocationInformation
from repro.network.probes import ProbeRecord
from repro.network.wire import (
    Gtpv1Header,
    WireFormatError,
    decode_control_message,
    decode_uli,
    encode_control_message,
    encode_uli,
)

GTPC_PORT = 2123
GTPU_PORT = 2152

_PCAP_GLOBAL = struct.Struct("<IHHiIII")
_PCAP_RECORD = struct.Struct("<IIII")
_PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1

#: Magic prefix of the custom flow-record payload inside G-PDUs.
FLOW_RECORD_MAGIC = b"RPRF"


def _ethernet_ipv4_udp(payload: bytes, sport: int, dport: int) -> bytes:
    """Frame a payload in Ethernet / IPv4 / UDP headers (checksums 0)."""
    ether = b"\x02\x00\x00\x00\x00\x01" + b"\x02\x00\x00\x00\x00\x02" + b"\x08\x00"
    udp_length = 8 + len(payload)
    udp = struct.pack("!HHHH", sport, dport, udp_length, 0)
    total_length = 20 + udp_length
    ipv4 = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,  # version 4, IHL 5
        0,
        total_length,
        0,
        0,
        64,  # TTL
        17,  # UDP
        0,  # checksum left zero (offload convention)
        bytes([10, 0, 0, 1]),
        bytes([10, 0, 0, 2]),
    )
    return ether + ipv4 + udp + payload


def _strip_ethernet_ipv4_udp(frame: bytes) -> Tuple[int, bytes]:
    """Return (udp destination port, payload) of a frame we wrote."""
    if len(frame) < 14 + 20 + 8:
        raise WireFormatError("frame shorter than Ethernet/IPv4/UDP headers")
    if frame[12:14] != b"\x08\x00":
        raise WireFormatError("not an IPv4 frame")
    ihl = (frame[14] & 0x0F) * 4
    udp_start = 14 + ihl
    dport = struct.unpack_from("!H", frame, udp_start + 2)[0]
    return dport, frame[udp_start + 8 :]


def _encode_flow_record(record: ProbeRecord) -> bytes:
    """Serialize the accounting payload carried inside a G-PDU."""
    flow = record.flow
    sni = (flow.sni or "").encode("utf-8")
    host = (flow.host or "").encode("utf-8")
    hint = (flow.payload_hint or "").encode("utf-8")
    return (
        FLOW_RECORD_MAGIC
        + struct.pack(
            "!dQIHBddHHH",
            record.timestamp_s,
            record.imsi_hash,
            flow.flow_id,
            flow.server_port,
            1 if flow.protocol == "udp" else 0,
            record.dl_bytes,
            record.ul_bytes,
            len(sni),
            len(host),
            len(hint),
        )
        + sni
        + host
        + hint
        + encode_uli(
            UserLocationInformation(
                technology=record.technology,
                routing_area_id=0,
                cell_id=0,
                cell_commune_id=record.commune_id,
            )
        )
    )


def _decode_flow_record(payload: bytes) -> ProbeRecord:
    if not payload.startswith(FLOW_RECORD_MAGIC):
        raise WireFormatError("G-PDU payload is not a repro flow record")
    fixed = struct.Struct("!dQIHBddHHH")
    offset = len(FLOW_RECORD_MAGIC)
    (
        timestamp_s,
        imsi_hash,
        flow_id,
        server_port,
        is_udp,
        dl_bytes,
        ul_bytes,
        sni_len,
        host_len,
        hint_len,
    ) = fixed.unpack_from(payload, offset)
    offset += fixed.size
    sni = payload[offset : offset + sni_len].decode("utf-8")
    offset += sni_len
    host = payload[offset : offset + host_len].decode("utf-8")
    offset += host_len
    hint = payload[offset : offset + hint_len].decode("utf-8")
    offset += hint_len
    uli, _ = decode_uli(payload[offset:])
    return ProbeRecord(
        timestamp_s=timestamp_s,
        imsi_hash=imsi_hash,
        commune_id=uli.cell_commune_id,
        technology=uli.technology,
        flow=FlowDescriptor(
            flow_id=flow_id,
            sni=sni or None,
            host=host or None,
            server_port=server_port,
            protocol="udp" if is_udp else "tcp",
            payload_hint=hint or None,
        ),
        dl_bytes=dl_bytes,
        ul_bytes=ul_bytes,
    )


class PcapWriter:
    """Writes GTP events as a pcap capture."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._fh.write(
            _PCAP_GLOBAL.pack(
                _PCAP_MAGIC, 2, 4, 0, 0, 65535, _LINKTYPE_ETHERNET
            )
        )
        self.packets_written = 0

    def _write_frame(self, timestamp_s: float, frame: bytes) -> None:
        seconds = int(timestamp_s)
        micros = int(round((timestamp_s - seconds) * MICROS_PER_SECOND))
        self._fh.write(
            _PCAP_RECORD.pack(seconds, micros, len(frame), len(frame))
        )
        self._fh.write(frame)
        self.packets_written += 1

    def write_control(self, message: GtpcMessage) -> None:
        """Write one GTP-C message as a UDP/2123 packet."""
        payload = encode_control_message(
            message.message_type.value,
            teid=message.teid,
            uli=message.uli,
            sequence=self.packets_written,
        )
        self._write_frame(
            message.timestamp_s,
            _ethernet_ipv4_udp(payload, GTPC_PORT, GTPC_PORT),
        )

    def write_user(self, record: ProbeRecord, teid: int = 0) -> None:
        """Write one accounted flow as a G-PDU on UDP/2152."""
        inner = _encode_flow_record(record)
        gpdu = (
            Gtpv1Header(
                message_type=255, teid=teid, payload_length=len(inner)
            ).encode()
            + inner
        )
        self._write_frame(
            record.timestamp_s, _ethernet_ipv4_udp(gpdu, GTPU_PORT, GTPU_PORT)
        )

    def write_records(self, records: Iterable[ProbeRecord]) -> int:
        count = 0
        for record in records:
            self.write_user(record)
            count += 1
        return count

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class PcapPacket:
    """One parsed capture packet."""

    timestamp_s: float
    kind: str  # "gtp-c" or "gtp-u"
    teid: int
    uli: Optional[UserLocationInformation] = None
    record: Optional[ProbeRecord] = None


def read_pcap(path: Union[str, Path]) -> List[PcapPacket]:
    """Parse a capture written by :class:`PcapWriter`."""
    data = Path(path).read_bytes()
    if len(data) < _PCAP_GLOBAL.size:
        raise WireFormatError("file shorter than a pcap global header")
    magic = struct.unpack_from("<I", data)[0]
    if magic != _PCAP_MAGIC:
        raise WireFormatError(f"bad pcap magic {magic:#x}")
    offset = _PCAP_GLOBAL.size
    packets: List[PcapPacket] = []
    while offset < len(data):
        if offset + _PCAP_RECORD.size > len(data):
            raise WireFormatError("truncated pcap record header")
        seconds, micros, caplen, _ = _PCAP_RECORD.unpack_from(data, offset)
        offset += _PCAP_RECORD.size
        frame = data[offset : offset + caplen]
        if len(frame) < caplen:
            raise WireFormatError("truncated pcap frame")
        offset += caplen
        timestamp = seconds + micros / MICROS_PER_SECOND
        dport, payload = _strip_ethernet_ipv4_udp(frame)
        if dport == GTPC_PORT:
            _, teid, uli = decode_control_message(payload)
            packets.append(
                PcapPacket(timestamp_s=timestamp, kind="gtp-c", teid=teid, uli=uli)
            )
        elif dport == GTPU_PORT:
            header, size = Gtpv1Header.decode(payload)
            record = _decode_flow_record(
                payload[size : size + header.payload_length]
            )
            packets.append(
                PcapPacket(
                    timestamp_s=timestamp,
                    kind="gtp-u",
                    teid=header.teid,
                    record=record,
                )
            )
        else:
            raise WireFormatError(f"unexpected UDP port {dport}")
    return packets


__all__ = [
    "GTPC_PORT",
    "GTPU_PORT",
    "FLOW_RECORD_MAGIC",
    "PcapWriter",
    "PcapPacket",
    "read_pcap",
]
