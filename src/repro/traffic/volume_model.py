"""Closed-form volume-level workload synthesis.

Builds the commune × service × time tensors of a
:class:`~repro.dataset.store.MobileTrafficDataset` directly from the
:class:`~repro.traffic.intensity.IntensityModel`, without simulating
individual sessions.  This is the resolution used for nationwide-scale
figure reproduction; the session-level pipeline validates it at reduced
scale (``tests/integration/test_model_agreement.py``).

The synthesis steps:

1. expected weekly commune volumes from the intensity model;
2. **adoption sampling** — each (commune, service) volume is scaled by
   ``Binomial(n_subscribers, adoption) / (n_subscribers * adoption)``,
   which leaves large communes untouched but makes low-adoption services
   vanish from small communes (the Fig. 8 skew);
3. temporal expansion with the commune class's demand curves (the TGV
   train-schedule gate included);
4. multiplicative measurement noise;
5. per-service renormalization so national totals match the catalog
   exactly (Fig. 2/3 hold by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro._time import TimeAxis
from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass
from repro.traffic.intensity import IntensityModel


@dataclass(frozen=True)
class VolumeModelConfig:
    """Knobs of the volume-level synthesis."""

    #: Multiplicative lognormal noise on each (commune, service, bin) cell.
    cell_noise_sigma: float = 0.05
    #: Multiplicative lognormal noise on each national (service, bin) —
    #: the measurement jitter that makes peak detection non-trivial.
    national_noise_sigma: float = 0.015
    #: Whether to sample adopters (disable for exact expected volumes).
    sample_adoption: bool = True
    #: Gamma shape of individual weekly usage.  Individual consumption is
    #: heavy-tailed; a commune with n adopters realizes
    #: ``Gamma(n * shape) / (n * shape)`` of its expected volume, so small
    #: communes fluctuate wildly while large ones converge to the mean —
    #: the second driver (besides adoption sampling) of the Fig. 8 skew.
    usage_shape: float = 0.35

    def __post_init__(self) -> None:
        if self.cell_noise_sigma < 0 or self.national_noise_sigma < 0:
            raise ValueError("noise sigmas must be >= 0")
        if self.usage_shape <= 0:
            raise ValueError(f"usage_shape must be > 0, got {self.usage_shape}")


def _adoption_factor(
    model: IntensityModel,
    usage_shape: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """(n_communes, n_head) realized/expected volume ratio.

    Combines adopter sampling (``Binomial(n_subs, adoption)``) with
    per-adopter usage variability (gamma-distributed individual weekly
    volumes): communes with no drawn adopter contribute zero, communes
    with few adopters realize a noisy multiple of the expectation.
    """
    subs = np.maximum(np.round(model.country.subscribers_per_commune()), 1).astype(
        np.int64
    )
    adoption = np.clip(model.adoption, 1e-9, 1.0)
    n = np.broadcast_to(subs[:, None], adoption.shape)
    adopters = rng.binomial(n, adoption)
    expected = n * adoption

    factor = np.zeros_like(expected, dtype=float)
    active = adopters > 0
    total_shape = adopters[active] * usage_shape
    usage = rng.gamma(shape=total_shape) / total_shape
    factor[active] = adopters[active] / expected[active] * usage
    return factor


def synthesize_volume_tensor(
    model: IntensityModel,
    direction: str,
    config: VolumeModelConfig = VolumeModelConfig(),
    seed: SeedLike = None,
) -> np.ndarray:
    """(C, S, T) float32 tensor of weekly traffic for one direction."""
    rng = as_generator(seed)
    adoption_rng = spawn(rng, f"volume.adoption.{direction}")
    cell_rng = spawn(rng, f"volume.cell.{direction}")
    national_rng = spawn(rng, f"volume.national.{direction}")

    expected = model.expected_commune_volume(direction)  # (C, S)
    if config.sample_adoption:
        expected = expected * _adoption_factor(
            model, config.usage_shape, adoption_rng
        )

    n_communes, n_head = expected.shape
    n_bins = model.axis.n_bins
    tensor = np.empty((n_communes, n_head, n_bins), dtype=np.float32)

    national_jitter = np.exp(
        national_rng.normal(0.0, config.national_noise_sigma, (n_head, n_bins))
    ).astype(np.float32)

    classes = model.country.urbanization.classes
    for cls in UrbanizationClass:
        mask = classes == int(cls)
        if not mask.any():
            continue
        curves = (
            model.class_weights_for(direction)[cls].astype(np.float32)
            * national_jitter
        )
        tensor[mask] = expected[mask].astype(np.float32)[:, :, None] * curves[None, :, :]

    if config.cell_noise_sigma > 0:
        noise = cell_rng.normal(
            0.0, config.cell_noise_sigma, size=tensor.shape
        ).astype(np.float32)
        tensor *= np.exp(noise)

    # Renormalize each service to its exact national total.
    targets = expected.sum(axis=0)
    actual = tensor.sum(axis=(0, 2))
    scale = np.divide(
        targets, actual, out=np.ones_like(targets), where=actual > 0
    ).astype(np.float32)
    tensor *= scale[None, :, None]
    return tensor


def _ar1_noise(
    rng: np.random.Generator, shape: tuple, sigma: float, rho: float
) -> np.ndarray:
    """AR(1) log-noise along the last axis.

    Aggregate traffic fluctuations are serially correlated (load moves
    smoothly over minutes), which matters to the smoothed z-score
    detector: correlated noise widens its trailing window's standard
    deviation instead of producing isolated spikes.
    """
    innovations = rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2), size=shape)
    out = np.empty(shape)
    out[..., 0] = rng.normal(0.0, sigma, size=shape[:-1])
    for t in range(1, shape[-1]):
        out[..., t] = rho * out[..., t - 1] + innovations[..., t]
    return out


def synthesize_national_series(
    model: IntensityModel,
    direction: str,
    noise_sigma: float = 0.06,
    noise_rho: float = 0.7,
    day_jitter_sigma: float = 0.10,
    seed: SeedLike = None,
) -> np.ndarray:
    """(n_head, n_bins) nationwide weekly series, without commune tensors.

    The nationwide aggregate of the volume model in closed form: each
    urbanization class contributes its share of every service's national
    volume with the class's own temporal curve, and AR(1)-correlated
    multiplicative measurement noise is applied on top.  Used by the
    temporal analyses (Figs. 4-7), which need fine time resolution but no
    spatial detail — a full (commune, service, fine-bin) tensor would not
    fit in memory at nationwide scale, exactly the reason the paper
    aggregates first.
    """
    if noise_sigma < 0:
        raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
    if not 0 <= noise_rho < 1:
        raise ValueError(f"noise_rho must be in [0, 1), got {noise_rho}")
    rng = as_generator(seed)
    expected = model.expected_commune_volume(direction)  # (C, S)
    classes = model.country.urbanization.classes
    n_head = expected.shape[1]
    series = np.zeros((n_head, model.axis.n_bins))
    for cls in UrbanizationClass:
        mask = classes == int(cls)
        if not mask.any():
            continue
        class_volume = expected[mask].sum(axis=0)  # (S,)
        series += class_volume[:, None] * model.class_weights_for(direction)[cls]
    if day_jitter_sigma > 0:
        # Day-level editorial jitter: content releases, news cycles and
        # campaigns shift whole days of a service's demand up or down,
        # independently across services.  This is the idiosyncratic
        # variation that keeps nationwide series from clustering cleanly.
        bins_per_day = series.shape[1] // 7
        day_factors = np.exp(
            rng.normal(0.0, day_jitter_sigma, size=(n_head, 7))
        )
        series *= np.repeat(day_factors, bins_per_day, axis=1)
    if noise_sigma > 0:
        series *= np.exp(_ar1_noise(rng, series.shape, noise_sigma, noise_rho))
    return series


def synthesize_volume_dataset(
    model: IntensityModel,
    config: VolumeModelConfig = VolumeModelConfig(),
    classified_fraction: float = 0.88,
    seed: SeedLike = None,
) -> MobileTrafficDataset:
    """Build a full :class:`MobileTrafficDataset` at volume resolution."""
    rng = as_generator(seed)
    country = model.country
    catalog = model.catalog

    dl = synthesize_volume_tensor(model, "dl", config, spawn(rng, "volume.dl"))
    ul = synthesize_volume_tensor(model, "ul", config, spawn(rng, "volume.ul"))

    national_dl = catalog.volume_vector("dl") * model.total_weekly_bytes
    national_ul = catalog.volume_vector("ul") * model.total_weekly_bytes
    # Head totals reflect the sampled tensors (adoption sampling shifts
    # them slightly from the nominal shares).
    head_ids = catalog.head_ids()
    national_dl = national_dl.copy()
    national_ul = national_ul.copy()
    national_dl[head_ids] = dl.sum(axis=(0, 2))
    national_ul[head_ids] = ul.sum(axis=(0, 2))

    return MobileTrafficDataset(
        axis=model.axis,
        head_names=model.head_names,
        all_service_names=[s.name for s in catalog],
        dl=dl,
        ul=ul,
        national_dl=national_dl,
        national_ul=national_ul,
        users=country.subscribers_per_commune(),
        commune_classes=country.urbanization.classes.copy(),
        density=country.population.density_km2.copy(),
        coordinates=country.grid.coordinates_km.copy(),
        has_3g=country.coverage.has_3g.copy(),
        has_4g=country.coverage.has_4g.copy(),
        classified_fraction=classified_fraction,
        meta={"total_weekly_bytes": model.total_weekly_bytes},
    )


__all__ = [
    "VolumeModelConfig",
    "synthesize_volume_tensor",
    "synthesize_national_series",
    "synthesize_volume_dataset",
]
