"""Workload generation.

Two resolutions share one statistical model (see DESIGN.md §5):

- :mod:`repro.traffic.intensity` — the shared model: expected
  per-subscriber weekly volume per (commune, service) and normalized
  temporal weights per (service, time bin), including the TGV and
  urbanization-class temporal modulations;
- :mod:`repro.traffic.subscribers` — synthetic subscriber population;
- :mod:`repro.traffic.mobility` — weekly itineraries (home, commuting,
  high-speed-rail travel);
- :mod:`repro.traffic.generator` — session-level workload: subscribers
  attach, move, and exchange flows through the network simulator;
- :mod:`repro.traffic.volume_model` — closed-form commune × service ×
  time tensors for nationwide-scale runs;
- :mod:`repro.traffic.trace` — a streaming record format for
  session-level traces.
"""

from repro.traffic.generator import SessionLevelGenerator, WorkloadConfig
from repro.traffic.intensity import IntensityModel, build_intensity_model
from repro.traffic.mobility import Itinerary, MobilityModel
from repro.traffic.subscribers import (
    Subscriber,
    SubscriberClass,
    SubscriberPopulation,
    synthesize_population,
)
from repro.traffic.trace import TraceReader, TraceWriter
from repro.traffic.volume_model import VolumeModelConfig, synthesize_volume_dataset

__all__ = [
    "IntensityModel",
    "build_intensity_model",
    "Subscriber",
    "SubscriberClass",
    "SubscriberPopulation",
    "synthesize_population",
    "Itinerary",
    "MobilityModel",
    "SessionLevelGenerator",
    "WorkloadConfig",
    "VolumeModelConfig",
    "synthesize_volume_dataset",
    "TraceWriter",
    "TraceReader",
]
