"""Text rendering of figures.

matplotlib is not available in the reproduction environment, so every
"figure" is emitted as data: aligned ASCII tables (:mod:`tables`),
sparkline-style series strips (:mod:`series`), and density grids
rendered as character maps (:mod:`maps`).  The benchmark harness prints
these, which is the textual equivalent of regenerating the paper's
plots.
"""

from repro.report.maps import render_grid
from repro.report.series import render_series, sparkline
from repro.report.tables import format_table

__all__ = ["format_table", "sparkline", "render_series", "render_grid"]
