"""Grayscale image export of spatial grids (no matplotlib required).

The Fig. 9 maps are density rasters; :func:`write_pgm` exports any
2-D grid as a **binary PGM** (portable graymap) — a format every image
viewer and converter opens — so the reproduction can ship actual map
images without plotting dependencies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np


def grid_to_gray(
    grid: np.ndarray,
    log_scale: bool = True,
    invert: bool = False,
) -> np.ndarray:
    """Map a grid to uint8 gray levels (NaN/empty cells -> 0).

    With ``log_scale`` the gray level tracks log10 of the value,
    matching the paper's logarithmic colour bars; ``invert`` renders
    high values dark (print-friendly).
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"expected a 2-D grid, got shape {grid.shape}")
    valid = np.isfinite(grid) & (grid > 0)
    gray = np.zeros(grid.shape, dtype=np.uint8)
    if not valid.any():
        return gray
    values = grid.copy()
    if log_scale:
        values[valid] = np.log10(values[valid])
    lo = float(values[valid].min())
    hi = float(values[valid].max())
    span = hi - lo if hi > lo else 1.0
    # Reserve 0 for empty cells; data occupies 1..255.
    levels = 1 + np.round(254 * (values[valid] - lo) / span).astype(np.int64)
    if invert:
        levels = 256 - levels
    gray[valid] = levels.astype(np.uint8)
    return gray


def write_pgm(
    grid: np.ndarray,
    path: Union[str, Path],
    log_scale: bool = True,
    invert: bool = False,
    flip_north_up: bool = True,
) -> Path:
    """Write a grid as a binary PGM (P5) image; returns the path.

    ``flip_north_up`` puts grid row 0 (the south edge in this package's
    convention) at the bottom of the image.
    """
    gray = grid_to_gray(grid, log_scale=log_scale, invert=invert)
    if flip_north_up:
        gray = gray[::-1]
    path = Path(path)
    header = f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + gray.tobytes())
    return path


def read_pgm(path: Union[str, Path]) -> np.ndarray:
    """Read back a binary PGM written by :func:`write_pgm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P5"):
        raise ValueError(f"{path} is not a binary PGM")
    parts = data.split(b"\n", 3)
    if len(parts) < 4:
        raise ValueError(f"{path} has a malformed PGM header")
    width, height = (int(v) for v in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ValueError(f"unsupported maxval {maxval}")
    pixels = np.frombuffer(parts[3][: width * height], dtype=np.uint8)
    if pixels.size != width * height:
        raise ValueError(f"{path} is truncated")
    return pixels.reshape(height, width)


def upscale(gray: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upscaling, for viewable map sizes."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return np.repeat(np.repeat(gray, factor, axis=0), factor, axis=1)


__all__ = ["grid_to_gray", "write_pgm", "read_pgm", "upscale"]
