"""Character rendering of spatial grids (the Fig. 9 maps, in text)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._units import format_bytes

_SHADES = " .:-=+*#%@"


def render_grid(
    grid: np.ndarray,
    title: Optional[str] = None,
    log_scale: bool = True,
    legend_units: str = "bytes",
) -> str:
    """Render a 2-D grid as shaded characters, darkest = highest.

    NaN cells (no communes) render as spaces.  With ``log_scale`` the
    shade tracks log10 of the value, matching the paper's logarithmic
    colour bars.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"expected a 2-D grid, got shape {grid.shape}")
    valid = np.isfinite(grid) & (grid > 0)
    lines = []
    if title:
        lines.append(title)
    if not valid.any():
        lines.append("(empty grid)")
        return "\n".join(lines)

    values = grid.copy()
    if log_scale:
        values[valid] = np.log10(values[valid])
    lo = float(values[valid].min())
    hi = float(values[valid].max())
    span = hi - lo if hi > lo else 1.0

    # Row 0 is the south edge; render north at the top.
    for row in range(grid.shape[0] - 1, -1, -1):
        chars = []
        for col in range(grid.shape[1]):
            if not valid[row, col]:
                chars.append(" ")
                continue
            level = (values[row, col] - lo) / span
            chars.append(_SHADES[min(len(_SHADES) - 1, int(level * len(_SHADES)))])
        lines.append("".join(chars))

    raw_lo = float(grid[valid].min())
    raw_hi = float(grid[valid].max())
    if legend_units == "bytes":
        legend = f"scale: ' '={format_bytes(raw_lo)}  '@'={format_bytes(raw_hi)}"
    else:
        legend = f"scale: ' '={raw_lo:.3g}  '@'={raw_hi:.3g} {legend_units}"
    lines.append(legend + ("  (log colour scale)" if log_scale else ""))
    return "\n".join(lines)


__all__ = ["render_grid"]
