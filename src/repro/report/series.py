"""Sparkline rendering of time series."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a series as a unicode block sparkline.

    ``width`` resamples the series (by bin averaging) to at most that
    many characters.
    """
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("need a non-empty 1-D series")
    if width is not None and width > 0 and data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() if b > a else data[min(a, data.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(np.nanmin(data)), float(np.nanmax(data))
    if hi <= lo:
        return _BLOCKS[1] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def render_series(
    label: str,
    values: Sequence[float],
    width: int = 84,
    markers: Optional[Sequence[int]] = None,
) -> str:
    """One labelled sparkline line, optionally with a marker strip.

    ``markers`` are bin indices (e.g. detected peak fronts); a second
    line carries ``^`` carets under the marked positions, which is how
    the Fig. 4 red lines appear in text form.
    """
    data = np.asarray(values, dtype=float)
    line = f"{label:>16s} {sparkline(data, width=width)}"
    if markers is None:
        return line
    strip = [" "] * min(width, data.size)
    scale = len(strip) / data.size
    for marker in markers:
        pos = min(len(strip) - 1, int(marker * scale))
        strip[pos] = "^"
    return line + "\n" + " " * 17 + "".join(strip)


__all__ = ["sparkline", "render_series"]
