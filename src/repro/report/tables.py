"""Aligned ASCII tables."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    max_col_width: int = 28,
) -> str:
    """Render rows as an aligned monospace table.

    Cells are stringified; floats keep whatever formatting the caller
    applied before passing them in (pass pre-formatted strings for
    control).  Overlong cells are truncated with an ellipsis.
    """
    if max_col_width < 4:
        raise ValueError(f"max_col_width must be >= 4, got {max_col_width}")

    def clip(value: object) -> str:
        text = str(value)
        if len(text) > max_col_width:
            return text[: max_col_width - 1] + "…"
        return text

    str_rows: List[List[str]] = [[clip(c) for c in row] for row in rows]
    str_headers = [clip(h) for h in headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(str_headers)}"
            )

    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(str_headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


__all__ = ["format_table"]
