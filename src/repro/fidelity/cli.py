"""``repro-scorecard`` command-line interface.

Examples::

    repro-scorecard run --seed 7 --communes 900 --out scorecard.json
    repro-scorecard run --seed 7 --events-out run.events.jsonl \\
        --trace-out run.trace.json
    repro-scorecard show scorecard.json
    repro-scorecard diff fidelity-baseline.json scorecard.json
    repro-scorecard gate scorecard.json --baseline fidelity-baseline.json
    repro-scorecard list-findings

Exit codes follow the shared contract in :mod:`repro._exit`: ``0``
success (for ``diff``/``gate``: no fidelity regression), ``1`` a
finding's verdict worsened vs the baseline, ``2`` usage error or
unreadable input, ``3`` internal failure.  Everything except ``run``
is stdlib-only; ``run`` imports the numpy experiment layer lazily.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._exit import EXIT_INTERNAL, EXIT_USAGE
from repro.fidelity import scorecard as fid
from repro.fidelity.contract import FINDINGS
from repro.obs import clock
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import runtime
from repro.obs import trace as obs_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scorecard",
        description=(
            "Run, inspect and gate the fidelity scorecard: every headline "
            "paper finding scored against its declared tolerance bands "
            "(docs/observability.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run the experiment layer and score every declared finding",
    )
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--communes",
        type=int,
        default=fid.DEFAULT_N_COMMUNES,
        help="tessellation size of the shared experiment context",
    )
    run.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the JSON scorecard here",
    )
    run.add_argument(
        "--obs-out",
        metavar="PATH",
        default=None,
        help="also write the repro-obs metrics dump of the run",
    )
    run.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="also record and write the structured JSONL event log",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write a Chrome-trace JSON of the run (Perfetto)",
    )
    run.add_argument(
        "--coverage-from",
        metavar="DATASET.npz",
        default=None,
        help="stamp the card's coverage block from a saved dataset's "
        "coverage.* meta (degraded builds report their loss here)",
    )
    run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the text report on stdout",
    )

    show = sub.add_parser("show", help="render a scorecard file as text")
    show.add_argument("scorecard", metavar="PATH")

    diff = sub.add_parser(
        "diff",
        help="compare two scorecards (baseline first, current second)",
    )
    diff.add_argument("baseline", metavar="BASELINE")
    diff.add_argument("current", metavar="CURRENT")

    gate = sub.add_parser(
        "gate",
        help=(
            "CI gate: exit nonzero when any finding's verdict worsened "
            "vs the committed baseline"
        ),
    )
    gate.add_argument("scorecard", metavar="PATH")
    gate.add_argument(
        "--baseline",
        metavar="PATH",
        default="fidelity-baseline.json",
        help="baseline scorecard (default: fidelity-baseline.json)",
    )

    sub.add_parser(
        "list-findings", help="print the declared findings contract"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    # Wall-clock stays out of the scorecard (it is byte-deterministic);
    # the elapsed time is reported on stderr and in the obs dump spans.
    started = clock.now_s()
    coverage = None
    if args.coverage_from:
        from repro.dataset.store import (
            CorruptDatasetError,
            MobileTrafficDataset,
        )
        from repro.resilience.coverage import coverage_block_from_meta

        try:
            coverage = coverage_block_from_meta(
                MobileTrafficDataset.load(args.coverage_from).meta
            )
        except CorruptDatasetError as exc:
            print(f"repro-scorecard: {exc}", file=sys.stderr)
            return 2
    with runtime.observed(log_events=args.events_out is not None) as session:
        card = fid.run_scorecard(
            seed=args.seed, n_communes=args.communes, coverage=coverage
        )
        dump = session.export(
            meta={
                "command": "scorecard-run",
                "seed": args.seed,
                "communes": args.communes,
            }
        )
        events = session.export_events()
    elapsed = clock.now_s() - started
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(fid.render_scorecard_json(card))
        print(
            f"scorecard written to {args.out} ({elapsed:.1f}s)",
            file=sys.stderr,
        )
    if args.obs_out:
        with open(args.obs_out, "w", encoding="utf-8") as handle:
            handle.write(obs_export.render_json(dump))
        print(f"obs dump written to {args.obs_out}", file=sys.stderr)
    if args.events_out:
        obs_events.write_jsonl(args.events_out, events)
        print(f"event log written to {args.events_out}", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(
                obs_trace.render_trace_json(obs_trace.to_chrome_trace(dump))
            )
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if not args.quiet:
        print(fid.render_scorecard_text(card))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    card = fid.load_scorecard(args.scorecard)
    print(fid.render_scorecard_text(card))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    result = fid.diff_scorecards(
        fid.load_scorecard(args.baseline), fid.load_scorecard(args.current)
    )
    print(result.render())
    return 0 if result.gate_ok else 1


def _cmd_gate(args: argparse.Namespace) -> int:
    result = fid.gate_scorecard(
        fid.load_scorecard(args.scorecard),
        fid.load_scorecard(args.baseline),
    )
    print(result.render())
    return 0 if result.gate_ok else 1


def _cmd_list_findings(args: argparse.Namespace) -> int:
    for spec in FINDINGS.values():
        accept = fid._format_band(spec.accept.to_list())
        warn = fid._format_band(spec.warn.to_list())
        print(
            f"{spec.name:<36s} {spec.unit:<12s} target {spec.target:<8g} "
            f"accept {accept:<16s} warn {warn:<16s} {spec.source}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "gate":
            return _cmd_gate(args)
        if args.command == "list-findings":
            return _cmd_list_findings(args)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-scorecard: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-scorecard: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
