"""Scorecard engine: run, render, diff, and gate fidelity scorecards.

A *scorecard* is the JSON-ready dict :func:`run_scorecard` produces::

    {
      "schema": "repro-fidelity/1",
      "meta":     {"seed", "n_communes", "tool"},
      "findings": {name: {"experiment", "unit", "value", "target",
                          "accept", "warn", "verdict", "source",
                          "description", "determinism"}},
      "summary":  {"pass", "warn", "fail", "total", "score"}
    }

Every finding value is a pure function of ``(seed, n_communes)``
(``determinism: seeded``) and the scorecard carries no timings, so
:func:`render_scorecard_json` output is byte-identical across runs.
Wall-clock lives where it belongs: the ``fidelity.experiments`` and
``fidelity.score`` spans of the surrounding obs session.

:func:`diff_scorecards` compares two scorecards finding by finding;
:func:`gate_scorecard` is the CI gate — it fails when any finding's
verdict *worsens* relative to the committed baseline
(``fidelity-baseline.json``), which includes every finding that leaves
its accept band, or disappears outright.

Only :func:`run_scorecard` imports the experiment layer (lazily);
everything else is stdlib-only so ``show``/``diff``/``gate`` work
without numpy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.fidelity.contract import (
    FINDINGS,
    FindingSpec,
    VERDICT_ORDER,
    evaluate,
)
from repro.fidelity.extract import extract

#: Schema tag written into every scorecard, bumped on layout change.
SCHEMA = "repro-fidelity/1"

#: Default tessellation size of a scorecard run: every figure's checks
#: are statistically stable here while a full run stays under a minute.
DEFAULT_N_COMMUNES = 900

_VERDICT_RANK = {verdict: rank for rank, verdict in enumerate(VERDICT_ORDER)}

_VERDICT_MARK = {"pass": "ok  ", "warn": "WARN", "fail": "FAIL"}


def _experiment_order() -> List[str]:
    """Experiment ids in contract (= paper) declaration order."""
    order: List[str] = []
    for spec in FINDINGS.values():
        if spec.experiment_id not in order:
            order.append(spec.experiment_id)
    return order


def _finding_entry(spec: FindingSpec, value: float, verdict: str) -> Dict[str, Any]:
    return {
        "experiment": spec.experiment_id,
        "unit": spec.unit,
        "value": value,
        "target": spec.target,
        "accept": spec.accept.to_list(),
        "warn": spec.warn.to_list(),
        "verdict": verdict,
        "source": spec.source,
        "description": spec.description,
        "determinism": spec.determinism,
    }


#: The ``coverage`` block of a scorecard built from a full-coverage run.
#: Every card carries the block (default: this one) so a clean build
#: and a recovered-then-clean build render byte-identically.
FULL_COVERAGE: Dict[str, Any] = {
    "fraction": 1.0,
    "n_shards": 1,
    "quarantined_shards": [],
    "subscribers_total": 0,
    "subscribers_lost": 0,
    "records_dropped": 0,
    "degraded": False,
}


def run_scorecard(
    seed: int = 7,
    n_communes: int = DEFAULT_N_COMMUNES,
    results: Optional[Dict[str, Any]] = None,
    coverage: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run the experiment layer and score every declared finding.

    ``results`` injects pre-computed experiment results (tests, or a
    caller who already ran the figures); by default the full layer runs:
    one shared context, every experiment the contract draws from.

    ``coverage`` stamps the dataset-coverage block of a degraded build
    (see :meth:`repro.resilience.coverage.CoverageReport.block` and the
    CLI's ``--coverage-from``); omitted, the card carries the
    :data:`FULL_COVERAGE` block, so the key set never varies.

    Raises ``KeyError``/``ValueError`` when an experiment or extractor
    does not cover its declared findings — a contract violation is a
    programming error, never a silent gap in the scorecard.
    """
    experiment_ids = _experiment_order()
    if results is None:
        from repro.experiments import build_default_context, run_figure

        with obs.span("fidelity.experiments"):
            ctx = build_default_context(seed=seed, n_communes=n_communes)
            results = {
                eid: run_figure(eid, ctx) for eid in experiment_ids
            }

    findings: Dict[str, Any] = {}
    counts = {"pass": 0, "warn": 0, "fail": 0}
    with obs.span("fidelity.score"):
        for eid in experiment_ids:
            if eid not in results:
                raise KeyError(
                    f"scorecard needs experiment {eid!r} but the run "
                    f"produced only {sorted(results)}"
                )
            values = extract(eid, results[eid])
            declared = [s for s in FINDINGS.values() if s.experiment_id == eid]
            declared_names = {s.name for s in declared}
            if set(values) != declared_names:
                raise ValueError(
                    f"extractor for {eid!r} returned {sorted(values)}, "
                    f"contract declares {sorted(declared_names)}"
                )
            for spec in declared:
                value = float(values[spec.name])
                verdict = evaluate(spec, value)
                counts[verdict] += 1
                obs.add(f"fidelity.findings_{verdict}")
                obs.log_event(
                    "verdict", spec.name, {"verdict": verdict, "value": value}
                )
                findings[spec.name] = _finding_entry(spec, value, verdict)

    total = sum(counts.values())
    score = counts["pass"] / total if total else 0.0
    obs.set_gauge("fidelity.score", score)
    return {
        "schema": SCHEMA,
        "meta": {
            "seed": seed,
            "n_communes": n_communes,
            "tool": "repro-scorecard",
        },
        "coverage": dict(FULL_COVERAGE) if coverage is None else coverage,
        "findings": findings,
        "summary": {**counts, "total": total, "score": score},
    }


def render_scorecard_json(scorecard: Dict[str, Any]) -> str:
    """Canonical JSON form (stable key order — scorecards diff bytewise)."""
    return json.dumps(scorecard, indent=2, sort_keys=True) + "\n"


def _format_band(band: List[Optional[float]]) -> str:
    lo = "-inf" if band[0] is None else f"{band[0]:g}"
    hi = "+inf" if band[1] is None else f"{band[1]:g}"
    return f"[{lo}, {hi}]"


def render_scorecard_text(scorecard: Dict[str, Any]) -> str:
    """Human-readable report, findings in contract order."""
    lines: List[str] = []
    meta = scorecard.get("meta", {})
    lines.append(
        f"fidelity scorecard — seed {meta.get('seed')}, "
        f"{meta.get('n_communes')} communes"
    )
    findings = scorecard.get("findings", {})
    ordered = [name for name in FINDINGS if name in findings]
    ordered += [name for name in sorted(findings) if name not in FINDINGS]
    for name in ordered:
        entry = findings[name]
        lines.append(
            f"  [{_VERDICT_MARK.get(entry['verdict'], entry['verdict'])}] "
            f"{name:<34s} {entry['value']:>10.4g} {entry['unit']:<10s} "
            f"target {entry['target']:g} "
            f"accept {_format_band(entry['accept'])} "
            f"({entry['source']})"
        )
    summary = scorecard.get("summary", {})
    if summary:
        lines.append(
            f"score: {summary.get('score', 0.0):.3f} "
            f"({summary.get('pass', 0)} pass, {summary.get('warn', 0)} warn, "
            f"{summary.get('fail', 0)} fail of {summary.get('total', 0)})"
        )
    coverage = scorecard.get("coverage")
    if coverage and coverage.get("degraded"):
        lines.append(
            f"coverage: DEGRADED — fraction {coverage.get('fraction', 1.0):.4f}, "
            f"quarantined shards {coverage.get('quarantined_shards')}, "
            f"{coverage.get('records_dropped', 0)} records dropped"
        )
    return "\n".join(lines)


@dataclass
class ScorecardDiff:
    """Outcome of comparing a scorecard against a baseline."""

    #: (name, baseline verdict, current verdict, baseline value,
    #: current value) for findings whose verdict changed.
    transitions: List[Tuple[str, str, str, float, float]] = field(
        default_factory=list
    )
    #: Findings present only in the baseline (coverage regressed).
    only_in_baseline: List[str] = field(default_factory=list)
    #: Findings present only in the current scorecard (new coverage).
    only_in_current: List[str] = field(default_factory=list)
    #: Schema or structural problems.
    problems: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Tuple[str, str, str, float, float]]:
        """Transitions whose verdict worsened (pass→warn, warn→fail, …)."""
        return [
            row
            for row in self.transitions
            if _VERDICT_RANK.get(row[2], 2) > _VERDICT_RANK.get(row[1], 2)
        ]

    @property
    def gate_ok(self) -> bool:
        """True when the current scorecard may land on the baseline."""
        return not (
            self.regressions or self.only_in_baseline or self.problems
        )

    def render(self) -> str:
        lines: List[str] = []
        for problem in self.problems:
            lines.append(f"PROBLEM {problem}")
        for name in self.only_in_baseline:
            lines.append(f"MISSING {name} (in baseline, not in current run)")
        for name in self.only_in_current:
            lines.append(f"NEW     {name} (not yet in the baseline)")
        regressed = {row[0] for row in self.regressions}
        for name, was, now, value_was, value_now in self.transitions:
            tag = "REGRESS" if name in regressed else "IMPROVE"
            lines.append(
                f"{tag} {name}: {was} -> {now} "
                f"(value {value_was:g} -> {value_now:g})"
            )
        lines.append(
            "gate OK — no finding left its verdict band"
            if self.gate_ok
            else "gate FAILED — fidelity regressed vs baseline"
        )
        return "\n".join(lines)


def diff_scorecards(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> ScorecardDiff:
    """Compare two scorecards finding by finding (baseline first)."""
    result = ScorecardDiff()
    for label, card in (("baseline", baseline), ("current", current)):
        schema = card.get("schema")
        if schema != SCHEMA:
            result.problems.append(
                f"{label} scorecard has schema {schema!r}, "
                f"expected {SCHEMA!r}"
            )
    findings_a = baseline.get("findings", {})
    findings_b = current.get("findings", {})
    result.only_in_baseline = sorted(set(findings_a) - set(findings_b))
    result.only_in_current = sorted(set(findings_b) - set(findings_a))
    for name in sorted(set(findings_a) & set(findings_b)):
        entry_a, entry_b = findings_a[name], findings_b[name]
        if entry_a["verdict"] != entry_b["verdict"]:
            result.transitions.append(
                (
                    name,
                    str(entry_a["verdict"]),
                    str(entry_b["verdict"]),
                    float(entry_a["value"]),
                    float(entry_b["value"]),
                )
            )
    return result


def gate_scorecard(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> ScorecardDiff:
    """The CI gate: current run vs the committed baseline scorecard."""
    return diff_scorecards(baseline, current)


def load_scorecard(path: str) -> Dict[str, Any]:
    """Read one scorecard file (the ``repro-fidelity`` JSON format)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: not a fidelity scorecard (expected an object)"
        )
    return payload


__all__ = [
    "DEFAULT_N_COMMUNES",
    "FULL_COVERAGE",
    "SCHEMA",
    "ScorecardDiff",
    "diff_scorecards",
    "gate_scorecard",
    "load_scorecard",
    "render_scorecard_json",
    "render_scorecard_text",
    "run_scorecard",
]
