"""Per-figure finding extractors and their registry.

Each experiment module registers one extractor: a callable that takes
the module's :class:`~repro.experiments.base.ExperimentResult` and
returns ``{finding name: measured value}`` for exactly the findings the
contract declares for that experiment.  Most experiments already
compute every headline quantity inside a paper-expectation check, so
the common registration is a one-liner mapping finding names to check
names (:func:`register_check_extractor`)::

    from repro.fidelity.extract import register_check_extractor

    register_check_extractor(EXPERIMENT_ID, {
        "fig10.dl_mean_r2": "dl mean pairwise r2",
        "fig10.ul_mean_r2": "ul mean pairwise r2",
    })

This module is stdlib-only and imports nothing from the experiment
layer — the experiment modules import *it*, so registration happens as
a side effect of ``import repro.experiments`` and the scorecard engine
finds the registry fully populated.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

#: Extractor signature: ExperimentResult -> {finding name: value}.  The
#: argument is typed ``Any`` to keep this module import-light.
Extractor = Callable[[Any], Dict[str, float]]

#: experiment id -> registered extractor.
EXTRACTORS: Dict[str, Extractor] = {}


def register_extractor(
    experiment_id: str,
) -> Callable[[Extractor], Extractor]:
    """Decorator registering an extractor for one experiment id."""

    def decorate(func: Extractor) -> Extractor:
        if experiment_id in EXTRACTORS:
            raise ValueError(
                f"extractor for experiment {experiment_id!r} already "
                "registered"
            )
        EXTRACTORS[experiment_id] = func
        return func

    return decorate


def check_value(result: Any, check_name: str) -> float:
    """The measured value of one named paper-expectation check."""
    for check in result.checks:
        if check.name == check_name:
            return float(check.measured)
    raise KeyError(
        f"experiment {result.experiment_id!r} produced no check named "
        f"{check_name!r} — known: {[c.name for c in result.checks]}"
    )


def register_check_extractor(
    experiment_id: str, mapping: Mapping[str, str]
) -> None:
    """Register an extractor that reads findings off named checks.

    ``mapping`` is ``{finding name: check name}``; the extractor pulls
    each check's measured value.  A missing check raises ``KeyError`` at
    extraction time — the scorecard fails loudly, never silently drops a
    finding.
    """
    items = tuple(mapping.items())

    @register_extractor(experiment_id)
    def _extract(result: Any) -> Dict[str, float]:
        return {
            finding: check_value(result, check) for finding, check in items
        }


def extract(experiment_id: str, result: Any) -> Dict[str, float]:
    """Run the registered extractor for one experiment."""
    try:
        extractor = EXTRACTORS[experiment_id]
    except KeyError:
        raise KeyError(
            f"no finding extractor registered for experiment "
            f"{experiment_id!r} — register one in its module "
            "(repro.fidelity.extract)"
        ) from None
    return {name: float(value) for name, value in extractor(result).items()}


__all__ = [
    "EXTRACTORS",
    "Extractor",
    "check_value",
    "extract",
    "register_check_extractor",
    "register_extractor",
]
