"""``python -m repro.fidelity`` — alias for the repro-scorecard CLI."""

from repro.fidelity.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
