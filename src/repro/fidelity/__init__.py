"""Fidelity scorecard: the observable paper-findings contract.

Tests assert that the code *runs*; this package asserts that the
reproduction is *on target*.  Every headline quantity of the paper —
mean spatial r² ≈ 0.60 DL / 0.53 UL (Fig. 10), the seven topical peak
times (Fig. 6), rural ≈ ½ urban per-subscriber volume and TGV ≥ 2×
(Fig. 11), the 88 % DPI coverage (§2), … — is declared once in
:data:`repro.fidelity.contract.FINDINGS` with its unit, paper-reported
target and accept/warn tolerance bands.  The scorecard engine
(:mod:`repro.fidelity.scorecard`) runs the experiment layer, extracts
each quantity through the per-figure extractors the experiment modules
register (:mod:`repro.fidelity.extract`), and emits a versioned JSON
scorecard with a pass/warn/fail verdict per finding.

``repro-scorecard`` is the CLI (``run`` / ``show`` / ``diff`` /
``gate``); ``gate`` exits nonzero when any finding's verdict worsens
against a committed baseline scorecard (``fidelity-baseline.json``), so
a change that silently drifts a figure fails CI even while every test
stays green.

:mod:`~repro.fidelity.contract` and :mod:`~repro.fidelity.extract` are
stdlib-only so tooling (``tools/check_docs.py``, ``show``/``diff``/
``gate``) can load the contract without the simulation stack; only
``run`` imports the experiment layer.
"""

from repro.fidelity.contract import (
    FINDINGS,
    Band,
    FindingSpec,
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_WARN,
    evaluate,
    finding_names,
    findings_for,
)
from repro.fidelity.extract import (
    EXTRACTORS,
    check_value,
    extract,
    register_check_extractor,
    register_extractor,
)
from repro.fidelity.scorecard import (
    SCHEMA,
    ScorecardDiff,
    diff_scorecards,
    gate_scorecard,
    load_scorecard,
    render_scorecard_json,
    render_scorecard_text,
    run_scorecard,
)

__all__ = [
    "Band",
    "EXTRACTORS",
    "FINDINGS",
    "FindingSpec",
    "SCHEMA",
    "ScorecardDiff",
    "VERDICT_FAIL",
    "VERDICT_PASS",
    "VERDICT_WARN",
    "check_value",
    "diff_scorecards",
    "evaluate",
    "extract",
    "finding_names",
    "findings_for",
    "gate_scorecard",
    "load_scorecard",
    "register_check_extractor",
    "register_extractor",
    "render_scorecard_json",
    "render_scorecard_text",
    "run_scorecard",
]
