"""The findings contract: every headline paper quantity, with bands.

One :class:`FindingSpec` per figure/text statistic the paper reports.
The spec carries the *paper's* number (``target``), the closed
``accept`` band inside which the reproduction counts as on-target, and
a wider closed ``warn`` band for drifting-but-not-broken.  The verdict
of a measured value is:

- ``pass`` — inside the accept band (edges **inclusive**: a value
  exactly on an accept bound passes);
- ``warn`` — outside accept but inside warn (again inclusive: exactly
  on a warn bound warns, never fails);
- ``fail`` — outside both bands, or not finite.

The accept bands deliberately match the experiment layer's
paper-expectation checks where one exists, so a scorecard ``pass``
and a green check never disagree; the warn band adds the early-warning
margin the checks don't have.

Determinism: every finding value is ``seeded`` — a pure function of the
scorecard's ``(seed, n_communes)`` — which is what makes the committed
baseline (``fidelity-baseline.json``) a meaningful gate.

This module is stdlib-only: ``tools/check_docs.py`` cross-checks the
table against ``docs/observability.md`` in both directions without
importing the simulation stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

VERDICT_PASS = "pass"
VERDICT_WARN = "warn"
VERDICT_FAIL = "fail"

#: Verdicts ordered best-to-worst; ``gate`` compares by this rank.
VERDICT_ORDER = (VERDICT_PASS, VERDICT_WARN, VERDICT_FAIL)

#: The determinism class of every current finding: a pure function of
#: the scorecard's ``(seed, n_communes)``.
DETERMINISM_SEEDED = "seeded"


@dataclass(frozen=True)
class Band:
    """A closed interval; ``None`` bounds are unbounded."""

    lo: Optional[float] = None
    hi: Optional[float] = None

    def contains(self, value: float) -> bool:
        """Inclusive membership: exactly-on-edge values are inside."""
        if not math.isfinite(value):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def encloses(self, other: "Band") -> bool:
        """True when every value of ``other`` is inside this band."""
        if self.lo is not None and (other.lo is None or other.lo < self.lo):
            return False
        if self.hi is not None and (other.hi is None or other.hi > self.hi):
            return False
        return True

    def to_list(self) -> List[Optional[float]]:
        return [self.lo, self.hi]


@dataclass(frozen=True)
class FindingSpec:
    """The declared contract of one paper finding."""

    name: str
    experiment_id: str
    unit: str
    #: The paper-reported value (or documented threshold for
    #: qualitative claims).
    target: float
    accept: Band
    warn: Band
    #: Figure/section of the paper the number comes from.
    source: str
    description: str
    determinism: str = DETERMINISM_SEEDED


def evaluate(spec: FindingSpec, value: float) -> str:
    """Verdict of a measured value under one spec (see module doc)."""
    if spec.accept.contains(value):
        return VERDICT_PASS
    if spec.warn.contains(value):
        return VERDICT_WARN
    return VERDICT_FAIL


def _finding_table(specs: Iterable[FindingSpec]) -> Dict[str, FindingSpec]:
    table: Dict[str, FindingSpec] = {}
    for spec in specs:
        if spec.name in table:
            raise ValueError(f"duplicate finding spec {spec.name!r}")
        if not spec.warn.encloses(spec.accept):
            raise ValueError(
                f"{spec.name}: warn band {spec.warn} must enclose the "
                f"accept band {spec.accept}"
            )
        if not spec.accept.contains(spec.target):
            raise ValueError(
                f"{spec.name}: paper target {spec.target} lies outside "
                f"the accept band {spec.accept}"
            )
        table[spec.name] = spec
    return table


def _spec(
    name: str,
    experiment_id: str,
    unit: str,
    target: float,
    accept_lo: Optional[float],
    accept_hi: Optional[float],
    warn_lo: Optional[float],
    warn_hi: Optional[float],
    source: str,
    description: str,
) -> FindingSpec:
    return FindingSpec(
        name=name,
        experiment_id=experiment_id,
        unit=unit,
        target=target,
        accept=Band(accept_lo, accept_hi),
        warn=Band(warn_lo, warn_hi),
        source=source,
        description=description,
    )


#: The full findings contract, in paper order.  Accept bands mirror the
#: experiment checks; warn bands add roughly half a band of margin.
FINDINGS: Dict[str, FindingSpec] = _finding_table(
    [
        # --- Fig. 2: service ranking ---------------------------------
        _spec(
            "fig2.dl_zipf_exponent", "fig2", "exponent",
            1.6, 1.15, 2.05, 0.9, 2.3,
            "Fig. 2, §3",
            "Zipf exponent fitted over the top half of the DL ranking",
        ),
        _spec(
            "fig2.dl_volume_span_decades", "fig2", "decades",
            10.0, 7.0, None, 5.5, None,
            "Fig. 2, §3",
            "orders of magnitude spanned by per-service DL volumes",
        ),
        # --- Fig. 3: top services ------------------------------------
        _spec(
            "fig3.video_dl_share", "fig3", "fraction",
            0.46, 0.40, 0.55, 0.33, 0.62,
            "Fig. 3, §3",
            "video streaming share of classified downlink volume",
        ),
        _spec(
            "fig3.uplink_fraction", "fig3", "fraction",
            0.05, None, 0.05, None, 0.08,
            "Fig. 3, §3",
            "uplink share of the total load (under one twentieth)",
        ),
        # --- Fig. 4: weekly time series ------------------------------
        _spec(
            "fig4.facebook_day_night_ratio", "fig4", "ratio",
            3.0, 2.0, None, 1.5, None,
            "Fig. 4, §4",
            "median daily max/min of the Facebook national series",
        ),
        _spec(
            "fig4.distinct_peak_arrangements", "fig4", "patterns",
            4.0, 3.0, None, 2.0, None,
            "Fig. 4, §4",
            "distinct topical-time patterns among the sample services",
        ),
        # --- Fig. 5: k-shape clustering ------------------------------
        _spec(
            "fig5.dl_best_silhouette", "fig5", "silhouette",
            0.3, None, 0.55, None, 0.65,
            "Fig. 5, §4",
            "best silhouette over all k (no stable grouping exists)",
        ),
        _spec(
            "fig5.dl_largest_cluster_share", "fig5", "fraction",
            0.5, None, 0.95, None, 0.98,
            "Fig. 5, §4",
            "largest-cluster share at the smallest k (no catch-all)",
        ),
        # --- Fig. 6: topical peak times ------------------------------
        _spec(
            "fig6.strong_recurring_moments", "fig6", "moments",
            7.0, 5.0, 9.0, 4.0, 10.0,
            "Fig. 6, §4",
            "recurring peak moments derived from the data (paper: 7)",
        ),
        _spec(
            "fig6.midday_service_share", "fig6", "fraction",
            0.9, 0.75, 1.0, 0.6, 1.0,
            "Fig. 6, §4",
            "share of services peaking at workday midday (almost all)",
        ),
        # --- Fig. 7: peak intensities --------------------------------
        _spec(
            "fig7.strongest_midday_peak", "fig7", "fraction",
            1.0, 0.8, None, 0.6, None,
            "Fig. 7, §4",
            "strongest midday peak intensity (reaches/exceeds 100 %)",
        ),
        _spec(
            "fig7.median_weekend_midday_peak", "fig7", "fraction",
            0.3, None, 1.2, None, 1.5,
            "Fig. 7, §4",
            "median weekend-midday intensity (a few tens of percent)",
        ),
        # --- Fig. 8: Twitter geography -------------------------------
        _spec(
            "fig8.top1pct_commune_share", "fig8", "fraction",
            0.5, 0.40, None, 0.30, None,
            "Fig. 8, §5",
            "Twitter DL share of the top 1 % of communes (over 50 %)",
        ),
        _spec(
            "fig8.top10pct_commune_share", "fig8", "fraction",
            0.9, 0.75, None, 0.60, None,
            "Fig. 8, §5",
            "Twitter DL share of the top 10 % of communes (over 90 %)",
        ),
        # --- Fig. 9: demand maps -------------------------------------
        _spec(
            "fig9.commune_coverage_4g", "fig9", "fraction",
            0.55, 0.25, 0.85, 0.15, 0.95,
            "Fig. 9, §5",
            "4G commune coverage (concentrated on cities and arteries)",
        ),
        _spec(
            "fig9.netflix_urban_rural_contrast", "fig9", "ratio",
            8.0, 6.0, None, 4.0, None,
            "Fig. 9, §5",
            "Netflix urban/rural per-subscriber ratio (rural absence)",
        ),
        # --- Fig. 10: spatial correlation ----------------------------
        _spec(
            "fig10.dl_mean_r2", "fig10", "r2",
            0.60, 0.42, 0.78, 0.35, 0.85,
            "Fig. 10, §5",
            "mean pairwise spatial r2 between services, downlink",
        ),
        _spec(
            "fig10.ul_mean_r2", "fig10", "r2",
            0.53, 0.35, 0.71, 0.28, 0.78,
            "Fig. 10, §5",
            "mean pairwise spatial r2 between services, uplink",
        ),
        # --- Fig. 11: urbanization -----------------------------------
        _spec(
            "fig11.semi_urban_volume_ratio", "fig11", "ratio",
            1.0, 0.75, 1.15, 0.6, 1.3,
            "Fig. 11, §6",
            "semi-urban/urban per-subscriber volume ratio (close to 1)",
        ),
        _spec(
            "fig11.rural_volume_ratio", "fig11", "ratio",
            0.5, 0.30, 0.70, 0.2, 0.8,
            "Fig. 11, §6",
            "rural/urban per-subscriber volume ratio (about one half)",
        ),
        _spec(
            "fig11.tgv_volume_ratio", "fig11", "ratio",
            2.0, 1.8, None, 1.4, None,
            "Fig. 11, §6",
            "TGV/urban per-subscriber volume ratio (twice or more)",
        ),
        _spec(
            "fig11.non_tgv_temporal_r2", "fig11", "r2",
            0.9, 0.75, None, 0.65, None,
            "Fig. 11, §6",
            "mean temporal r2 among urban/semi-urban/rural regions",
        ),
        # --- §2-§3 text statistics -----------------------------------
        _spec(
            "text.dpi_byte_coverage", "text", "fraction",
            0.88, 0.83, 0.93, 0.78, 0.96,
            "§2",
            "fraction of traffic volume the DPI engine classifies",
        ),
        _spec(
            "text.median_uli_error_km", "text", "km",
            3.0, 0.5, 6.0, 0.25, 8.0,
            "§3",
            "median ULI localization error of the probe chain",
        ),
    ]
)


def finding_names() -> List[str]:
    """All declared finding names, sorted."""
    return sorted(FINDINGS)


def findings_for(experiment_id: str) -> List[FindingSpec]:
    """The specs one experiment must produce, in declaration order."""
    return [
        spec for spec in FINDINGS.values()
        if spec.experiment_id == experiment_id
    ]


def covered_experiments() -> List[str]:
    """Experiment ids the contract draws findings from, sorted."""
    return sorted({spec.experiment_id for spec in FINDINGS.values()})


__all__ = [
    "Band",
    "DETERMINISM_SEEDED",
    "FINDINGS",
    "FindingSpec",
    "VERDICT_FAIL",
    "VERDICT_ORDER",
    "VERDICT_PASS",
    "VERDICT_WARN",
    "covered_experiments",
    "evaluate",
    "finding_names",
    "findings_for",
]
