"""Network-slice dimensioning from per-service demand dynamics.

A network slice is an isolated end-to-end virtual network dedicated to
one service (or service class).  Static slicing reserves each slice's
peak demand permanently; demand-aware orchestration reallocates
capacity as demand moves.  The value of the latter is bounded by how
*complementary* the per-service demands are — exactly the heterogeneity
the paper quantifies (different services peak at different topical
times, Figs. 6-7, while sharing geography, Fig. 10).

This module computes, from a dataset:

- per-slice dimensioning: peak, mean, and peak-to-mean ratio per
  service (optionally per urbanization class or per commune subset);
- the **multiplexing gain**: sum of per-slice peaks over the joint
  peak — the headroom demand-aware orchestration can reclaim;
- overbooked capacity schedules: the capacity needed per time bin at a
  given per-slice isolation guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass


@dataclass(frozen=True)
class SlicePlan:
    """Dimensioning of one service's slice."""

    service_name: str
    peak_volume: float  # per-bin peak demand
    mean_volume: float
    peak_bin: int
    peak_to_mean: float

    def __post_init__(self) -> None:
        if self.peak_volume < self.mean_volume - 1e-9:
            raise ValueError("peak cannot be below mean")


@dataclass(frozen=True)
class SliceDimensioning:
    """A full dimensioning study over a set of services."""

    plans: List[SlicePlan]
    #: (n_services, n_bins) demand series used.
    series: np.ndarray
    #: Joint per-bin demand.
    joint: np.ndarray

    @property
    def static_capacity(self) -> float:
        """Capacity when every slice is dimensioned at its own peak."""
        return float(sum(p.peak_volume for p in self.plans))

    @property
    def joint_peak(self) -> float:
        """Capacity a perfectly shared infrastructure needs."""
        return float(self.joint.max())

    @property
    def multiplexing_gain(self) -> float:
        """static_capacity / joint_peak (≥ 1)."""
        return self.static_capacity / self.joint_peak

    def plan_for(self, service_name: str) -> SlicePlan:
        for plan in self.plans:
            if plan.service_name == service_name:
                return plan
        raise KeyError(f"no slice plan for {service_name!r}")

    def schedule(self, isolation_margin: float = 0.0) -> np.ndarray:
        """Per-bin capacity of a demand-aware schedule.

        ``isolation_margin`` adds a fractional guard band per slice (an
        SLA-style guarantee against reallocation latency): the scheduled
        capacity at bin t is ``(1 + margin) * joint_demand(t)``.
        """
        if isolation_margin < 0:
            raise ValueError(
                f"isolation_margin must be >= 0, got {isolation_margin}"
            )
        return (1.0 + isolation_margin) * self.joint

    def savings_over_static(self, isolation_margin: float = 0.0) -> float:
        """Fraction of static capacity a demand-aware schedule avoids."""
        needed = float(self.schedule(isolation_margin).max())
        return 1.0 - needed / self.static_capacity


def dimension_slices(
    dataset: MobileTrafficDataset,
    direction: str = "dl",
    services: Optional[Sequence[str]] = None,
    region: Optional[UrbanizationClass] = None,
) -> SliceDimensioning:
    """Dimension one slice per service over (part of) the country.

    ``region`` restricts the demand to one urbanization class — slice
    orchestration is per-area in edge deployments, and the gains differ
    by region (TGV corridors are the most bursty).
    """
    names = list(services) if services is not None else list(dataset.head_names)
    tensor = dataset.tensor(direction)
    if region is not None:
        mask = dataset.class_mask(region)
        if not mask.any():
            raise ValueError(f"dataset has no {region.label} communes")
        tensor = tensor[mask]
    series = np.stack(
        [
            tensor[:, dataset.head_index(name), :].sum(axis=0).astype(float)
            for name in names
        ]
    )
    plans = []
    for j, name in enumerate(names):
        peak_bin = int(series[j].argmax())
        peak = float(series[j, peak_bin])
        mean = float(series[j].mean())
        plans.append(
            SlicePlan(
                service_name=name,
                peak_volume=peak,
                mean_volume=mean,
                peak_bin=peak_bin,
                peak_to_mean=peak / mean if mean > 0 else float("inf"),
            )
        )
    return SliceDimensioning(
        plans=plans, series=series, joint=series.sum(axis=0)
    )


def multiplexing_gain(
    dataset: MobileTrafficDataset,
    direction: str = "dl",
    region: Optional[UrbanizationClass] = None,
) -> float:
    """Shortcut: the multiplexing gain over all head services."""
    return dimension_slices(dataset, direction, region=region).multiplexing_gain


def gain_by_region(
    dataset: MobileTrafficDataset, direction: str = "dl"
) -> Dict[UrbanizationClass, float]:
    """Multiplexing gain per urbanization class (where present)."""
    out: Dict[UrbanizationClass, float] = {}
    for cls in UrbanizationClass:
        if dataset.class_mask(cls).any():
            out[cls] = multiplexing_gain(dataset, direction, region=cls)
    return out


__all__ = [
    "SlicePlan",
    "SliceDimensioning",
    "dimension_slices",
    "multiplexing_gain",
    "gain_by_region",
]
