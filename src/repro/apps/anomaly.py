"""Demand anomaly detection.

The operational counterpart of the paper's clean-week requirement: a
network operator consuming these analyses continuously needs to know
*when a week is not clean*.  The detector scores each (service, day)
against the service's own seasonal profile — the same structure the
predictability module exploits — and flags days whose residual is
inconsistent with the service's normal day-to-day variability.

Ground truth for the tests comes from :mod:`repro.traffic.events`: an
injected strike or broadcast evening must be flagged on the right day
and (for broadcasts) for the right service categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro._time import DAY_NAMES, TimeAxis


@dataclass(frozen=True)
class DayAnomaly:
    """One flagged (service, day) cell."""

    service_name: str
    day: int  # 0 = Saturday
    score: float  # robust z-score of the day's residual

    @property
    def day_name(self) -> str:
        return DAY_NAMES[self.day]


def day_residuals(series: np.ndarray, axis: TimeAxis) -> np.ndarray:
    """(7,) mean absolute relative deviation of each day from its peers.

    Each day's curve is compared against the mean curve of the *other*
    days of the same type (weekend vs working day), normalized to shape
    (levels out; the paper's analyses are shape-driven).
    """
    series = np.asarray(series, dtype=float)
    bins_per_day = 24 * axis.bins_per_hour
    if series.shape[-1] != 7 * bins_per_day:
        raise ValueError("series does not span one week on this axis")
    days = series.reshape(7, bins_per_day)
    sums = days.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        raise ValueError("every day needs positive volume")
    shapes = days / sums

    residuals = np.zeros(7)
    groups = ((0, 1), (2, 3, 4, 5, 6))
    for group in groups:
        for day in group:
            peers = [d for d in group if d != day]
            reference = shapes[peers].mean(axis=0)
            residuals[day] = float(
                np.abs(shapes[day] - reference).sum() / reference.sum()
            )
    return residuals


def detect_anomalous_days(
    series: np.ndarray,
    axis: TimeAxis,
    service_name: str = "",
    threshold: float = 3.5,
) -> List[DayAnomaly]:
    """Flag days whose shape residual is an outlier for this service.

    Scores are robust z-scores (median / MAD over the 7 days), so one
    bad day cannot hide itself by inflating the baseline.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    residuals = day_residuals(series, axis)
    median = float(np.median(residuals))
    mad = float(np.median(np.abs(residuals - median)))
    scale = 1.4826 * mad if mad > 0 else max(median, 1e-9) * 0.1
    scores = (residuals - median) / scale
    return [
        DayAnomaly(service_name=service_name, day=day, score=float(score))
        for day, score in enumerate(scores)
        if score > threshold
    ]


def scan_dataset_days(
    national_series: np.ndarray,
    service_names: Sequence[str],
    axis: TimeAxis,
    threshold: float = 3.5,
) -> Dict[int, List[DayAnomaly]]:
    """Scan all services; returns day -> flagged anomalies.

    A day flagged across many services is a nationwide event (strike,
    broadcast); a single-service flag is service-local (an outage or a
    release).
    """
    national_series = np.asarray(national_series, dtype=float)
    if national_series.shape[0] != len(service_names):
        raise ValueError(
            f"{national_series.shape[0]} series for "
            f"{len(service_names)} names"
        )
    by_day: Dict[int, List[DayAnomaly]] = {}
    for j, name in enumerate(service_names):
        for anomaly in detect_anomalous_days(
            national_series[j], axis, name, threshold=threshold
        ):
            by_day.setdefault(anomaly.day, []).append(anomaly)
    return by_day


def nationwide_events(
    by_day: Dict[int, List[DayAnomaly]],
    n_services: int,
    min_share: float = 0.3,
) -> List[int]:
    """Days flagged for at least ``min_share`` of the services."""
    if not 0 < min_share <= 1:
        raise ValueError(f"min_share must be in (0, 1], got {min_share}")
    return sorted(
        day
        for day, anomalies in by_day.items()
        if len(anomalies) / n_services >= min_share
    )


__all__ = [
    "DayAnomaly",
    "day_residuals",
    "detect_anomalous_days",
    "scan_dataset_days",
    "nationwide_events",
]
