"""Land-use analysis from mobile service usage signatures.

Communes are characterized by *what mix* of services their subscribers
consume, not by how much: the paper's Fig. 11 shows the level is set by
urbanization while the follow-up literature (e.g. Furno et al., "A Tale
of Ten Cities") clusters areas by such signatures to recover land use.
This module provides:

- :func:`commune_signatures` — per-commune feature vectors (normalized
  log service mix, optionally augmented with temporal shape features);
- :func:`cluster_communes` — k-means over signatures (implemented here;
  scikit-learn is not a dependency);
- :func:`classify_by_centroids` — nearest-centroid classification, e.g.
  to recover urbanization classes from usage alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.dataset.store import MobileTrafficDataset


def commune_signatures(
    dataset: MobileTrafficDataset,
    direction: str = "dl",
    include_temporal: bool = False,
    min_users: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build per-commune usage-signature vectors.

    Returns ``(signatures, commune_ids)``: communes with fewer than
    ``min_users`` observed subscribers are dropped (their mixes are
    sampling noise).  The base signature is the commune's log-scaled
    per-subscriber service mix, L1-normalized; with
    ``include_temporal=True`` four coarse temporal shares (night,
    morning, afternoon, evening) of the commune's total demand are
    appended.
    """
    if min_users < 0:
        raise ValueError(f"min_users must be >= 0, got {min_users}")
    keep = np.nonzero(dataset.users >= min_users)[0]
    if keep.size == 0:
        raise ValueError("no commune passes the min_users filter")
    matrix = dataset.per_subscriber_matrix(direction)[keep]
    features = np.log1p(matrix)
    norms = features.sum(axis=1, keepdims=True)
    features = np.divide(features, norms, out=np.zeros_like(features), where=norms > 0)

    if include_temporal:
        tensor = dataset.tensor(direction)[keep].sum(axis=1)  # (kept, bins)
        bins_per_hour = dataset.axis.bins_per_hour
        hour_of_bin = (np.arange(dataset.n_bins) / bins_per_hour) % 24
        shares = []
        for lo, hi in ((0, 6), (6, 12), (12, 18), (18, 24)):
            window = (hour_of_bin >= lo) & (hour_of_bin < hi)
            shares.append(tensor[:, window].sum(axis=1))
        temporal = np.stack(shares, axis=1)
        totals = temporal.sum(axis=1, keepdims=True)
        temporal = np.divide(
            temporal, totals, out=np.zeros_like(temporal), where=totals > 0
        )
        features = np.concatenate([features, temporal], axis=1)
    return features, keep


@dataclass(frozen=True)
class SignatureClustering:
    """Outcome of clustering commune signatures."""

    labels: np.ndarray  # (n_kept,) cluster per signature
    centroids: np.ndarray  # (k, n_features)
    commune_ids: np.ndarray  # (n_kept,) commune of each signature
    inertia: float

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_of_commune(self, commune_id: int) -> Optional[int]:
        """Cluster of a commune, or None if it was filtered out."""
        hits = np.nonzero(self.commune_ids == commune_id)[0]
        if hits.size == 0:
            return None
        return int(self.labels[hits[0]])

    def sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++-style seeding."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]))
    centroids[0] = data[int(rng.integers(n))]
    for c in range(1, k):
        d2 = np.min(
            ((data[:, None, :] - centroids[None, :c, :]) ** 2).sum(axis=2), axis=1
        )
        total = d2.sum()
        if total <= 0:
            centroids[c] = data[int(rng.integers(n))]
        else:
            centroids[c] = data[int(rng.choice(n, p=d2 / total))]

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        for c in range(k):
            if not np.any(new_labels == c):
                new_labels[int(distances[:, c].argmax())] = c
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        for c in range(k):
            centroids[c] = data[labels == c].mean(axis=0)
    inertia = float(
        ((data - centroids[labels]) ** 2).sum()
    )
    return labels, centroids, inertia


def cluster_communes(
    dataset: MobileTrafficDataset,
    k: int,
    direction: str = "dl",
    include_temporal: bool = False,
    min_users: float = 1.0,
    n_restarts: int = 3,
    seed: SeedLike = None,
) -> SignatureClustering:
    """K-means clustering of commune usage signatures."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    features, commune_ids = commune_signatures(
        dataset, direction, include_temporal=include_temporal, min_users=min_users
    )
    if k > features.shape[0]:
        raise ValueError(
            f"k={k} exceeds the {features.shape[0]} retained communes"
        )
    rng = as_generator(seed)
    best = None
    for _ in range(max(1, n_restarts)):
        labels, centroids, inertia = _kmeans(features, k, rng)
        if best is None or inertia < best[2]:
            best = (labels, centroids, inertia)
    labels, centroids, inertia = best
    return SignatureClustering(
        labels=labels,
        centroids=centroids,
        commune_ids=commune_ids,
        inertia=inertia,
    )


def classify_by_centroids(
    features: np.ndarray,
    labels: np.ndarray,
    train_index: np.ndarray,
    test_index: np.ndarray,
) -> np.ndarray:
    """Nearest-centroid classification of signatures.

    Centroids are estimated per label over ``train_index``; the function
    returns predicted labels for ``test_index``.  Used to measure how
    much land-use information usage signatures carry.
    """
    classes = np.unique(labels[train_index])
    if classes.size == 0:
        raise ValueError("empty training set")
    centroids = np.stack(
        [
            features[train_index[labels[train_index] == cls]].mean(axis=0)
            for cls in classes
        ]
    )
    distances = np.linalg.norm(
        features[test_index][:, None, :] - centroids[None, :, :], axis=2
    )
    return classes[distances.argmin(axis=1)]


__all__ = [
    "commune_signatures",
    "SignatureClustering",
    "cluster_communes",
    "classify_by_centroids",
]
