"""Application layer: what the paper's findings are *for*.

The introduction motivates the study with two consumer domains; this
package implements both as reusable analyses over a
:class:`~repro.dataset.store.MobileTrafficDataset`:

- :mod:`repro.apps.slicing` — network-slice dimensioning: per-service
  peak capacity, multiplexing gains from temporal complementarity, and
  demand-aware capacity schedules ("an effective orchestration of
  network slices builds on the ... complementarity of the demands");
- :mod:`repro.apps.signatures` — land-use analysis from usage
  signatures: commune feature vectors, k-means clustering, and
  urbanization-class recovery ("unveiling interplays between the
  digital and physical worlds ... relevant to urban development or
  planning").
"""

from repro.apps.anomaly import (
    DayAnomaly,
    detect_anomalous_days,
    nationwide_events,
    scan_dataset_days,
)
from repro.apps.signatures import (
    SignatureClustering,
    classify_by_centroids,
    cluster_communes,
    commune_signatures,
)
from repro.apps.slicing import (
    SliceDimensioning,
    SlicePlan,
    dimension_slices,
    multiplexing_gain,
)

__all__ = [
    "DayAnomaly",
    "detect_anomalous_days",
    "scan_dataset_days",
    "nationwide_events",
    "SlicePlan",
    "SliceDimensioning",
    "dimension_slices",
    "multiplexing_gain",
    "commune_signatures",
    "cluster_communes",
    "classify_by_centroids",
    "SignatureClustering",
]
