"""Mobile service catalog and usage models.

The paper's dataset contains >500 detected services, of which 20 head
services (over 60 % of total traffic) are analysed individually.  This
package provides:

- :mod:`repro.services.catalog` — the service registry: the 20 named head
  services with categories and directional volume shares, plus a
  Zipf-tailed long tail of anonymous services;
- :mod:`repro.services.zipf` — the rank-volume law of Fig. 2 (Zipf head,
  sharper-than-Zipf tail cutoff);
- :mod:`repro.services.profiles` — per-service temporal profiles (base
  diurnal rhythm + peaks at the paper's seven topical times) and spatial
  profiles (urbanization affinity, density coupling, technology gating).
"""

from repro.services.catalog import (
    HEAD_SERVICE_NAMES,
    Service,
    ServiceCatalog,
    ServiceCategory,
    build_catalog,
)
from repro.services.profiles import (
    ProfileLibrary,
    SpatialProfile,
    TemporalProfile,
    TopicalTime,
    build_profile_library,
)
from repro.services.zipf import RankVolumeLaw, build_rank_volume_law

__all__ = [
    "Service",
    "ServiceCategory",
    "ServiceCatalog",
    "HEAD_SERVICE_NAMES",
    "build_catalog",
    "RankVolumeLaw",
    "build_rank_volume_law",
    "TopicalTime",
    "TemporalProfile",
    "SpatialProfile",
    "ProfileLibrary",
    "build_profile_library",
]
