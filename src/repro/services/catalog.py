"""Service registry.

The 20 head services are those named in the paper (Figs. 3, 6, 7, 10, 11);
their categories follow Fig. 3's legend, and their relative volume shares
are set so that the paper's headline statistics hold:

- video streaming ≈ 46 % of downlink (§3);
- social networks and messaging occupy the top-three uplink positions
  (SnapChat and Facebook explicitly named, §3);
- uplink is less than one twentieth of the total load (§3, footnote 2);
- the head covers over 60 % of the overall network traffic (§3).

The remaining ~480 tail services carry Zipf-tailed volumes (Fig. 2) and
are anonymous (the paper never names them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.services.zipf import RankVolumeLaw, build_rank_volume_law


class ServiceCategory(enum.Enum):
    """Service categories, as per the legend of Fig. 3."""

    STREAMING = "streaming"
    SOCIAL = "social"
    MESSAGING = "messaging"
    CLOUD = "cloud"
    WEB = "web"
    STORE = "store"
    GAMING = "gaming"
    OTHER = "other"


@dataclass(frozen=True)
class Service:
    """One mobile service.

    ``dl_share`` / ``ul_share`` are the service's fractions of the total
    *classified* traffic in each direction.  Head services carry the
    paper-calibrated shares; tail services carry Zipf-law shares.
    """

    service_id: int
    name: str
    category: ServiceCategory
    dl_share: float
    ul_share: float
    is_head: bool

    def __post_init__(self) -> None:
        if self.dl_share < 0 or self.ul_share < 0:
            raise ValueError(f"negative share for service {self.name!r}")


# name -> (category, dl share of classified DL, ul share of classified UL)
# DL shares: video streaming (YouTube + iTunes + Facebook Video +
# Instagram video + Netflix) sums to ~46.3 % of DL.
# UL shares: SnapChat, Facebook, WhatsApp are the top three.
_HEAD_SPEC = (
    ("YouTube", ServiceCategory.STREAMING, 0.2300, 0.0600),
    ("iTunes", ServiceCategory.STREAMING, 0.0850, 0.0250),
    ("Facebook Video", ServiceCategory.STREAMING, 0.0620, 0.0400),
    ("Instagram video", ServiceCategory.STREAMING, 0.0480, 0.0350),
    ("Netflix", ServiceCategory.STREAMING, 0.0380, 0.0050),
    ("Audio", ServiceCategory.STREAMING, 0.0290, 0.0150),
    ("Facebook", ServiceCategory.SOCIAL, 0.0700, 0.1200),
    ("Twitter", ServiceCategory.SOCIAL, 0.0220, 0.0500),
    ("Google Services", ServiceCategory.WEB, 0.0320, 0.0450),
    ("Instagram", ServiceCategory.SOCIAL, 0.0260, 0.0800),
    ("News", ServiceCategory.WEB, 0.0160, 0.0100),
    ("Adult", ServiceCategory.WEB, 0.0210, 0.0080),
    ("Apple store", ServiceCategory.STORE, 0.0180, 0.0130),
    ("Google Play", ServiceCategory.STORE, 0.0150, 0.0120),
    ("iCloud", ServiceCategory.CLOUD, 0.0080, 0.0750),
    ("SnapChat", ServiceCategory.SOCIAL, 0.0310, 0.1400),
    ("WhatsApp", ServiceCategory.MESSAGING, 0.0070, 0.0900),
    ("Mail", ServiceCategory.MESSAGING, 0.0090, 0.0300),
    ("MMS", ServiceCategory.MESSAGING, 0.0030, 0.0200),
    ("Pokemon Go", ServiceCategory.GAMING, 0.0050, 0.0070),
)

#: The paper's 20 head services, in Fig. 7 x-axis order.
HEAD_SERVICE_NAMES = tuple(name for name, _, _, _ in _HEAD_SPEC)


class ServiceCatalog:
    """The full service registry: head services plus anonymous tail."""

    def __init__(self, services: Sequence[Service], uplink_fraction: float):
        if not services:
            raise ValueError("catalog cannot be empty")
        if not 0 < uplink_fraction < 0.5:
            raise ValueError(
                f"uplink_fraction must be in (0, 0.5), got {uplink_fraction}"
            )
        self._services: List[Service] = list(services)
        self._by_name: Dict[str, Service] = {s.name: s for s in self._services}
        if len(self._by_name) != len(self._services):
            raise ValueError("duplicate service names in catalog")
        self.uplink_fraction = float(uplink_fraction)

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def __getitem__(self, service_id: int) -> Service:
        return self._services[service_id]

    def by_name(self, name: str) -> Service:
        """Look up a service by its display name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}") from None

    @property
    def head_services(self) -> List[Service]:
        """The 20 named head services, in registry order."""
        return [s for s in self._services if s.is_head]

    @property
    def tail_services(self) -> List[Service]:
        """The anonymous tail services."""
        return [s for s in self._services if not s.is_head]

    def head_ids(self) -> np.ndarray:
        """Dense ids of the head services."""
        return np.array([s.service_id for s in self.head_services], dtype=int)

    def in_category(self, category: ServiceCategory) -> List[Service]:
        """All services of a category."""
        return [s for s in self._services if s.category is category]

    def volume_vector(self, direction: str) -> np.ndarray:
        """Per-service share of total (DL+UL) classified traffic.

        ``direction`` is ``"dl"`` or ``"ul"``.  Downlink shares sum to
        ``1 - uplink_fraction``; uplink shares sum to ``uplink_fraction``,
        so that uplink carries less than one twentieth of the total load
        with the default fraction.
        """
        if direction == "dl":
            shares = np.array([s.dl_share for s in self._services])
            return shares * (1.0 - self.uplink_fraction)
        if direction == "ul":
            shares = np.array([s.ul_share for s in self._services])
            return shares * self.uplink_fraction
        raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")

    def category_share(self, category: ServiceCategory, direction: str) -> float:
        """Share of a category within one direction's classified traffic."""
        members = {s.service_id for s in self.in_category(category)}
        shares = np.array(
            [
                s.dl_share if direction == "dl" else s.ul_share
                for s in self._services
                if s.service_id in members
            ]
        )
        return float(shares.sum())

    def head_share(self, direction: str) -> float:
        """Share of head services within one direction's classified traffic."""
        attr = "dl_share" if direction == "dl" else "ul_share"
        if direction not in ("dl", "ul"):
            raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")
        return float(sum(getattr(s, attr) for s in self.head_services))


def build_catalog(
    n_services: int = 520,
    uplink_fraction: float = 0.045,
    dl_law: Optional[RankVolumeLaw] = None,
    ul_law: Optional[RankVolumeLaw] = None,
) -> ServiceCatalog:
    """Build the full catalog: 20 head services + a Zipf-tailed long tail.

    Tail volumes follow :class:`RankVolumeLaw` (Zipf with exponent 1.69 DL
    / 1.55 UL over the top half of ranks, sharper decay beyond — Fig. 2),
    renormalized so the tail carries whatever classified volume the head
    leaves over.
    """
    n_head = len(_HEAD_SPEC)
    if n_services <= n_head:
        raise ValueError(
            f"n_services must exceed the {n_head} head services, got {n_services}"
        )
    n_tail = n_services - n_head
    dl_law = dl_law or build_rank_volume_law(n_services, exponent=1.69)
    ul_law = ul_law or build_rank_volume_law(n_services, exponent=1.55)

    head_dl = sum(spec[2] for spec in _HEAD_SPEC)
    head_ul = sum(spec[3] for spec in _HEAD_SPEC)

    # Tail shares continue the rank-volume law from rank n_head+1 onward.
    tail_dl = dl_law.volumes[n_head:]
    tail_ul = ul_law.volumes[n_head:]
    tail_dl = tail_dl / tail_dl.sum() * (1.0 - head_dl)
    tail_ul = tail_ul / tail_ul.sum() * (1.0 - head_ul)

    services: List[Service] = []
    for idx, (name, category, dl, ul) in enumerate(_HEAD_SPEC):
        services.append(
            Service(
                service_id=idx,
                name=name,
                category=category,
                dl_share=dl,
                ul_share=ul,
                is_head=True,
            )
        )
    for t in range(n_tail):
        services.append(
            Service(
                service_id=n_head + t,
                name=f"service-{n_head + t:04d}",
                category=ServiceCategory.OTHER,
                dl_share=float(tail_dl[t]),
                ul_share=float(tail_ul[t]),
                is_head=False,
            )
        )
    return ServiceCatalog(services, uplink_fraction=uplink_fraction)


__all__ = [
    "ServiceCategory",
    "Service",
    "ServiceCatalog",
    "HEAD_SERVICE_NAMES",
    "build_catalog",
]
