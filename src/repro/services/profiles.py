"""Per-service temporal and spatial usage profiles.

These profiles are the generative model behind every figure of the paper.
They encode, for each head service:

**Temporal profile** — a normalized weekly demand curve built from

- a base diurnal rhythm (overnight trough, daytime plateau, evening
  shoulder), with separate weekday and weekend shapes;
- additive activity peaks at a service-specific subset of the paper's
  seven *topical times* (Fig. 6): weekday morning commute (8am), morning
  break (10am), midday (1pm), afternoon commute (6pm) and evening (9pm),
  plus weekend midday (1pm) and weekend evening (9pm), each with a
  service-specific amplitude (Fig. 7).

Because every service carries a different peak signature and base-shape
parameters, the 20 nationwide series are mutually distinctive — which is
what makes the paper's k-shape clustering inconclusive (Fig. 5).

**Spatial profile** — per-subscriber demand intensity as a function of
where the subscriber is:

- urbanization-class multipliers (urban ≈ semi-urban, rural ≈ half,
  TGV ≥ double — Fig. 11 top);
- a mild coupling with population density shared across services (this
  drives the strong pairwise spatial correlations of Fig. 10);
- technology gating (Netflix requires 4G, hence its urban-only footprint
  in Fig. 9) and a uniformity flag (iCloud background uploads are
  density-independent, hence its low correlation with everything else).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro._time import TimeAxis, WEEKEND_DAYS, WORKING_DAYS
from repro.geo.coverage import Technology
from repro.geo.urbanization import UrbanizationClass
from repro.services.catalog import HEAD_SERVICE_NAMES


class TopicalTime(enum.Enum):
    """The seven peak moments the paper finds across all services (§4)."""

    MORNING_COMMUTE = "Morning commuting"  # 8am, working days
    MORNING_BREAK = "Morning break"  # 10am, working days
    MIDDAY = "Midday"  # 1pm, working days
    AFTERNOON_COMMUTE = "Afternoon commuting"  # 6pm, working days
    EVENING = "Evening"  # 9pm, working days
    WEEKEND_MIDDAY = "Weekend midday"  # 1pm, weekends
    WEEKEND_EVENING = "Weekend evening"  # 9pm, weekends

    @property
    def hour(self) -> float:
        """Hour of day of the topical time."""
        return _TOPICAL_HOURS[self]

    @property
    def days(self) -> Tuple[int, ...]:
        """Days of the dataset week (0 = Saturday) on which it occurs."""
        if self in (TopicalTime.WEEKEND_MIDDAY, TopicalTime.WEEKEND_EVENING):
            return WEEKEND_DAYS
        return WORKING_DAYS


_TOPICAL_HOURS = {
    TopicalTime.MORNING_COMMUTE: 8.0,
    TopicalTime.MORNING_BREAK: 10.0,
    TopicalTime.MIDDAY: 13.0,
    TopicalTime.AFTERNOON_COMMUTE: 18.0,
    TopicalTime.EVENING: 21.0,
    TopicalTime.WEEKEND_MIDDAY: 13.0,
    TopicalTime.WEEKEND_EVENING: 21.0,
}

#: Half-width (hours) of the interval the paper's z-score detector tags
#: around a topical time; also the width of the generated peak bumps.
PEAK_HALF_WIDTH_HOURS = 1.0


@dataclass(frozen=True)
class TemporalProfile:
    """Weekly demand shape of one service."""

    name: str
    #: Peak amplitude at each topical time, as a fraction of the local
    #: base level (0 = the service does not peak there).
    peaks: Mapping[TopicalTime, float]
    #: Overnight demand floor relative to the daytime plateau.
    night_floor: float = 0.38
    #: Height of the evening shoulder relative to the daytime plateau.
    evening_shoulder: float = 0.35
    #: Hour of the evening shoulder's centre.
    evening_hour: float = 20.5
    #: Weekend demand level relative to weekdays.
    weekend_factor: float = 0.9
    #: Hour of day around which the diurnal bump centres.
    day_center: float = 14.5
    #: Concentration of the diurnal bump (von Mises kappa): higher means
    #: a sharper morning rise and evening fall.
    day_kappa: float = 1.0

    def __post_init__(self) -> None:
        for topical, amplitude in self.peaks.items():
            if amplitude < 0:
                raise ValueError(
                    f"negative peak amplitude for {self.name!r} at {topical}"
                )
        if not 0 < self.night_floor < 1:
            raise ValueError(f"night_floor must be in (0, 1), got {self.night_floor}")
        if self.day_kappa <= 0:
            raise ValueError(f"day_kappa must be > 0, got {self.day_kappa}")

    def base_day_curve(self, hours: np.ndarray, weekend: bool) -> np.ndarray:
        """Base diurnal curve (no topical peaks) for one day type.

        The curve is built from 24h-periodic components (a von Mises
        diurnal bump plus a circular-Gaussian evening shoulder), so
        concatenated days join continuously at midnight — a jump there
        would read as a spurious activity peak to the z-score detector.
        """
        hours = np.asarray(hours, dtype=float)
        centre = self.day_center + (1.0 if weekend else 0.0)
        angle = 2.0 * np.pi * (hours - centre) / 24.0
        bump = np.exp(self.day_kappa * (np.cos(angle) - 1.0))
        low = float(np.exp(-2.0 * self.day_kappa))
        bump = (bump - low) / (1.0 - low)
        shoulder = self.evening_shoulder * _circular_bump(
            hours, self.evening_hour, 1.8
        )
        curve = self.night_floor + (1.0 - self.night_floor) * bump + shoulder
        if weekend:
            curve = self.night_floor + (curve - self.night_floor) * self.weekend_factor
        return curve

    def weekly_curve(self, axis: TimeAxis, peak_scale: float = 1.0) -> np.ndarray:
        """Normalized weekly demand curve (sums to 1) on ``axis``.

        ``peak_scale`` multiplies every topical-peak amplitude; the
        uplink direction of a service shares its base rhythm but peaks
        harder or softer (content sharing vs content consumption), which
        is what keeps the paper's DL and UL analyses from being copies
        of each other.
        """
        if peak_scale < 0:
            raise ValueError(f"peak_scale must be >= 0, got {peak_scale}")
        hours = np.arange(24 * axis.bins_per_hour) / axis.bins_per_hour
        weekday = self.base_day_curve(hours, weekend=False)
        weekend = self.base_day_curve(hours, weekend=True)

        days = []
        for day in range(7):
            is_weekend = day in WEEKEND_DAYS
            base = (weekend if is_weekend else weekday).copy()
            for topical, amplitude in self.peaks.items():
                amplitude = amplitude * peak_scale
                if amplitude <= 0 or day not in topical.days:
                    continue
                local = base[
                    _nearest_bin(hours, topical.hour, axis.bins_per_hour)
                ]
                base = base + amplitude * local * _gaussian_bump(
                    hours, topical.hour, PEAK_HALF_WIDTH_HOURS / 2.0
                )
            days.append(base)
        curve = np.concatenate(days)
        return curve / curve.sum()

    def peak_set(self) -> Tuple[TopicalTime, ...]:
        """Topical times at which this service genuinely peaks."""
        return tuple(t for t, a in self.peaks.items() if a > 0)


def _gaussian_bump(hours: np.ndarray, centre: float, sigma: float) -> np.ndarray:
    return np.exp(-0.5 * ((hours - centre) / sigma) ** 2)


def _circular_bump(hours: np.ndarray, centre: float, sigma: float) -> np.ndarray:
    """Gaussian bump in circular (24 h wrap-around) hour distance."""
    delta = np.abs(hours - centre)
    delta = np.minimum(delta, 24.0 - delta)
    return np.exp(-0.5 * (delta / sigma) ** 2)


def _nearest_bin(hours: np.ndarray, hour: float, bins_per_hour: int) -> int:
    return min(len(hours) - 1, int(round(hour * bins_per_hour)))


@dataclass(frozen=True)
class SpatialProfile:
    """Where, and how intensely, one service is consumed."""

    name: str
    #: Per-subscriber intensity multiplier per urbanization class.
    class_multipliers: Mapping[UrbanizationClass, float]
    #: Exponent of the (density / national mean)^gamma coupling.
    density_exponent: float = 1.20
    #: Minimum technology the service needs to be usable.
    required_technology: Technology = Technology.G3
    #: Residual usage share in communes lacking the required technology
    #: (e.g. Netflix at very low rates over 3G).
    fallback_share: float = 1.0
    #: Weight of the country-wide shared spatial field in this service's
    #: per-commune variation; 0 makes the service spatially uniform.
    shared_field_weight: float = 1.0
    #: Standard deviation of the service-private lognormal noise.
    private_noise_sigma: float = 0.35
    #: Fraction of subscribers who use the service at all.  Low-adoption
    #: services vanish from small communes (no adopters drawn), which is
    #: what makes the paper's per-subscriber CDFs (Fig. 8) span from a
    #: few KB to tens of MB across communes.
    adoption_rate: float = 0.35

    def __post_init__(self) -> None:
        for cls in UrbanizationClass:
            if cls not in self.class_multipliers:
                raise ValueError(
                    f"spatial profile {self.name!r} misses class {cls.label}"
                )
        if not 0 <= self.fallback_share <= 1:
            raise ValueError(
                f"fallback_share must be in [0, 1], got {self.fallback_share}"
            )
        if not 0 < self.adoption_rate <= 1:
            raise ValueError(
                f"adoption_rate must be in (0, 1], got {self.adoption_rate}"
            )

    def multiplier(self, cls: UrbanizationClass) -> float:
        """Class multiplier accessor."""
        return float(self.class_multipliers[cls])


def _peaks(**kwargs: float) -> Dict[TopicalTime, float]:
    """Shorthand building a peak map from keyword aliases."""
    alias = {
        "mc": TopicalTime.MORNING_COMMUTE,
        "mb": TopicalTime.MORNING_BREAK,
        "md": TopicalTime.MIDDAY,
        "ac": TopicalTime.AFTERNOON_COMMUTE,
        "ev": TopicalTime.EVENING,
        "wm": TopicalTime.WEEKEND_MIDDAY,
        "we": TopicalTime.WEEKEND_EVENING,
    }
    return {alias[k]: float(v) for k, v in kwargs.items() if v > 0}


# Peak signatures (Fig. 6) and intensities (Fig. 7).  Almost every service
# peaks at weekday midday; commuting and weekend-evening peaks hit large
# (but different) service subsets; the morning-break peak singles out the
# student-heavy services (SnapChat, Instagram, Facebook, Twitter).
_TEMPORAL_SPEC: Dict[str, dict] = {
    "YouTube": dict(
        peaks=_peaks(mb=0.30, md=0.80, ac=0.30, ev=0.60, wm=0.30, we=0.45),
        night_floor=0.40, evening_shoulder=0.45, weekend_factor=1.05,
    ),
    "iTunes": dict(
        peaks=_peaks(mc=0.20, md=0.60, ev=0.50, we=0.30),
        night_floor=0.35, evening_shoulder=0.40, weekend_factor=0.95,
    ),
    "Facebook Video": dict(
        peaks=_peaks(mb=0.35, md=0.90, ac=0.40, ev=0.40, we=0.45),
        night_floor=0.36, evening_shoulder=0.35, weekend_factor=1.0,
    ),
    "Instagram video": dict(
        peaks=_peaks(mb=0.40, md=0.70, ac=0.45, ev=0.50, wm=0.30),
        night_floor=0.42, evening_shoulder=0.40, weekend_factor=1.1,
    ),
    "Netflix": dict(
        peaks=_peaks(md=0.30, ev=0.80, we=0.52),
        night_floor=0.32, evening_shoulder=0.80, evening_hour=21.2,
        weekend_factor=1.15,
    ),
    "Audio": dict(
        peaks=_peaks(mc=0.90, md=0.50, ac=0.45),
        night_floor=0.30, evening_shoulder=0.15, weekend_factor=0.7, day_center=13.0,
    ),
    "Facebook": dict(
        peaks=_peaks(mc=0.30, mb=0.45, md=1.20, ac=0.40, ev=0.30, wm=0.45,
                     we=0.38),
        night_floor=0.38, evening_shoulder=0.30, weekend_factor=0.95,
    ),
    "Twitter": dict(
        peaks=_peaks(mc=0.50, mb=0.35, md=0.90, ac=0.30, ev=0.20, wm=0.22),
        night_floor=0.40, evening_shoulder=0.25, weekend_factor=0.85,
    ),
    "Google Services": dict(
        peaks=_peaks(mc=0.60, md=1.00, ac=0.35, wm=0.15),
        night_floor=0.34, evening_shoulder=0.20, weekend_factor=0.8, day_center=13.5,
    ),
    "Instagram": dict(
        peaks=_peaks(mb=0.50, md=0.80, ac=0.40, ev=0.40, wm=0.38, we=0.52),
        night_floor=0.44, evening_shoulder=0.35, weekend_factor=1.1,
    ),
    "News": dict(
        peaks=_peaks(mc=1.10, mb=0.30, md=0.90, ac=0.30, wm=0.22),
        night_floor=0.32, evening_shoulder=0.15, weekend_factor=0.75, day_center=12.0, day_kappa=1.2,
    ),
    "Adult": dict(
        peaks=_peaks(md=0.40, ev=0.70, we=0.45),
        night_floor=0.55, evening_shoulder=0.60, evening_hour=22.0,
        weekend_factor=1.0,
    ),
    "Apple store": dict(
        peaks=_peaks(md=1.30, ev=0.30, wm=0.30),
        night_floor=0.32, evening_shoulder=0.25, weekend_factor=0.9,
    ),
    "Google Play": dict(
        peaks=_peaks(md=1.10, ac=0.25, ev=0.30, wm=0.22, we=0.15),
        night_floor=0.33, evening_shoulder=0.25, weekend_factor=0.9,
    ),
    "iCloud": dict(
        peaks=_peaks(md=0.50, ev=0.40, wm=0.15, we=0.22),
        night_floor=0.60, evening_shoulder=0.25, weekend_factor=0.95,
    ),
    "SnapChat": dict(
        peaks=_peaks(mc=0.25, mb=0.50, md=1.00, ac=0.45, ev=0.35, wm=0.30,
                     we=0.45),
        night_floor=0.40, evening_shoulder=0.35, weekend_factor=1.05,
    ),
    "WhatsApp": dict(
        peaks=_peaks(mc=0.35, mb=0.25, md=1.10, ac=0.40, ev=0.30, we=0.30),
        night_floor=0.35, evening_shoulder=0.30, weekend_factor=0.95,
    ),
    "Mail": dict(
        peaks=_peaks(mc=0.80, mb=0.30, md=1.00, ac=0.25),
        night_floor=0.36, evening_shoulder=0.12, weekend_factor=0.6, day_center=12.5, day_kappa=1.2,
    ),
    "MMS": dict(
        peaks=_peaks(mc=0.30, md=0.90, ac=0.30, ev=0.20, wm=0.38, we=0.15),
        night_floor=0.30, evening_shoulder=0.20, weekend_factor=0.9,
    ),
    "Pokemon Go": dict(
        peaks=_peaks(md=0.60, ac=0.50, ev=0.50, we=0.38),
        night_floor=0.28, evening_shoulder=0.40, evening_hour=19.5,
        weekend_factor=1.2,
    ),
}


def _classes(urban: float, semi: float, rural: float, tgv: float) -> dict:
    return {
        UrbanizationClass.URBAN: urban,
        UrbanizationClass.SEMI_URBAN: semi,
        UrbanizationClass.RURAL: rural,
        UrbanizationClass.TGV: tgv,
    }


# Spatial profiles (Figs. 9-11).  The default pattern — urban ≈ semi-urban,
# rural about a half, TGV at least double — is shared by almost every
# service; Netflix and iCloud are the two outliers the paper singles out.
_DEFAULT_CLASSES = _classes(urban=1.0, semi=0.95, rural=0.50, tgv=2.30)

# Service adoption rates: fraction of subscribers using the service at all.
_ADOPTION = {
    "YouTube": 0.60, "iTunes": 0.35, "Facebook Video": 0.50,
    "Instagram video": 0.28, "Netflix": 0.03, "Audio": 0.20,
    "Facebook": 0.55, "Twitter": 0.08, "Google Services": 0.80,
    "Instagram": 0.30, "News": 0.20, "Adult": 0.15, "Apple store": 0.50,
    "Google Play": 0.50, "iCloud": 0.30, "SnapChat": 0.25,
    "WhatsApp": 0.35, "Mail": 0.45, "MMS": 0.50, "Pokemon Go": 0.10,
}

_SPATIAL_SPEC: Dict[str, dict] = {
    name: dict(class_multipliers=_DEFAULT_CLASSES, adoption_rate=_ADOPTION[name])
    for name in HEAD_SERVICE_NAMES
}
_SPATIAL_SPEC["Netflix"] = dict(
    class_multipliers=_classes(urban=1.0, semi=0.55, rural=0.04, tgv=1.80),
    density_exponent=1.50,
    required_technology=Technology.G4,
    fallback_share=0.05,
    shared_field_weight=0.55,
    private_noise_sigma=0.55,
    adoption_rate=_ADOPTION["Netflix"],
)
_SPATIAL_SPEC["iCloud"] = dict(
    class_multipliers=_classes(urban=1.0, semi=1.0, rural=0.93, tgv=1.05),
    density_exponent=0.0,
    shared_field_weight=0.10,
    private_noise_sigma=0.30,
    adoption_rate=_ADOPTION["iCloud"],
)
# Pokemon Go skews urban (the game needs points of interest) but not as
# starkly as Netflix.
_SPATIAL_SPEC["Pokemon Go"] = dict(
    class_multipliers=_classes(urban=1.0, semi=0.85, rural=0.38, tgv=1.60),
    density_exponent=1.00,
    adoption_rate=_ADOPTION["Pokemon Go"],
)


@dataclass(frozen=True)
class ProfileLibrary:
    """Temporal + spatial profiles for every head service."""

    temporal: Mapping[str, TemporalProfile]
    spatial: Mapping[str, SpatialProfile]
    #: Generic profile used for anonymous tail services.
    tail_temporal: TemporalProfile = field(
        default_factory=lambda: TemporalProfile(
            name="tail",
            peaks=_peaks(md=0.6, ev=0.3),
        )
    )
    tail_spatial: SpatialProfile = field(
        default_factory=lambda: SpatialProfile(
            name="tail", class_multipliers=_DEFAULT_CLASSES
        )
    )

    def temporal_for(self, service_name: str) -> TemporalProfile:
        """Temporal profile for a service (tail default for unknown names)."""
        return self.temporal.get(service_name, self.tail_temporal)

    def spatial_for(self, service_name: str) -> SpatialProfile:
        """Spatial profile for a service (tail default for unknown names)."""
        return self.spatial.get(service_name, self.tail_spatial)

    def peak_signature_matrix(self) -> Tuple[np.ndarray, list, list]:
        """Binary (service x topical-time) matrix of designed peaks.

        Returns the matrix along with the row (service) and column
        (topical time) labels; used as ground truth by the Fig. 6 tests.
        """
        names = list(self.temporal.keys())
        topicals = list(TopicalTime)
        matrix = np.zeros((len(names), len(topicals)), dtype=bool)
        for i, name in enumerate(names):
            profile = self.temporal[name]
            for j, topical in enumerate(topicals):
                matrix[i, j] = profile.peaks.get(topical, 0.0) > 0
        return matrix, names, topicals


def build_profile_library(
    temporal_overrides: Optional[Mapping[str, dict]] = None,
    spatial_overrides: Optional[Mapping[str, dict]] = None,
) -> ProfileLibrary:
    """Build the default profile library, with optional per-service overrides.

    Overrides are merged into the per-service spec dictionaries before the
    profile objects are constructed, so callers can tweak single fields
    (e.g. ``{"Netflix": {"fallback_share": 0.2}}``).
    """
    temporal: Dict[str, TemporalProfile] = {}
    for name, spec in _TEMPORAL_SPEC.items():
        merged = dict(spec)
        if temporal_overrides and name in temporal_overrides:
            merged.update(temporal_overrides[name])
        temporal[name] = TemporalProfile(name=name, **merged)

    spatial: Dict[str, SpatialProfile] = {}
    for name, spec in _SPATIAL_SPEC.items():
        merged = dict(spec)
        if spatial_overrides and name in spatial_overrides:
            merged.update(spatial_overrides[name])
        spatial[name] = SpatialProfile(name=name, **merged)

    return ProfileLibrary(temporal=temporal, spatial=spatial)


__all__ = [
    "TopicalTime",
    "PEAK_HALF_WIDTH_HOURS",
    "TemporalProfile",
    "SpatialProfile",
    "ProfileLibrary",
    "build_profile_library",
]
