"""The rank-volume law of Fig. 2.

The paper observes that per-service traffic volumes span ~10 orders of
magnitude; the top half of the ~500 services follows a Zipf distribution
(exponent 1.69 downlink, 1.55 uplink) while the bottom half falls off
faster ("a cut-off intervenes that separates the bottom half of
services").  :func:`build_rank_volume_law` produces exactly that shape:

    v(r) ∝ r^-e                       for r <= cutoff_rank
    v(r) ∝ r^-e * exp(-(r - c)/tau)   for r >  cutoff_rank

with ``tau`` chosen so that the full range spans ``orders_of_magnitude``
decades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RankVolumeLaw:
    """Normalized volumes by rank, plus the generating parameters."""

    volumes: np.ndarray  # (n,), normalized to sum 1, decreasing
    exponent: float
    cutoff_rank: int
    tail_scale: float

    def __post_init__(self) -> None:
        if np.any(np.diff(self.volumes) > 0):
            raise ValueError("rank-volume law must be non-increasing")

    @property
    def n_services(self) -> int:
        return int(self.volumes.shape[0])

    def span_orders_of_magnitude(self) -> float:
        """Decades between the largest and smallest service volume."""
        return float(np.log10(self.volumes[0] / self.volumes[-1]))

    def head_half(self) -> np.ndarray:
        """Volumes of the top half of the ranking (the Zipf regime)."""
        return self.volumes[: self.cutoff_rank]


def build_rank_volume_law(
    n_services: int,
    exponent: float = 1.69,
    orders_of_magnitude: float = 10.0,
    cutoff_fraction: float = 0.5,
) -> RankVolumeLaw:
    """Build the Fig. 2 rank-volume law.

    Parameters
    ----------
    n_services:
        Total number of ranked services.
    exponent:
        Zipf exponent of the head (1.69 DL / 1.55 UL in the paper).
    orders_of_magnitude:
        Target span between the top and bottom service volumes.
    cutoff_fraction:
        Fraction of ranks in the pure-Zipf regime (the paper's "top half").
    """
    if n_services < 4:
        raise ValueError(f"n_services must be >= 4, got {n_services}")
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")
    if not 0 < cutoff_fraction < 1:
        raise ValueError(f"cutoff_fraction must be in (0, 1), got {cutoff_fraction}")

    ranks = np.arange(1, n_services + 1, dtype=float)
    cutoff_rank = max(2, int(round(cutoff_fraction * n_services)))
    volumes = ranks**-exponent

    # The pure-Zipf head spans exponent*log10(cutoff_rank) decades; the
    # exponential tail factor supplies the remaining decades over the
    # bottom-half ranks.
    zipf_span = exponent * np.log10(float(n_services))
    extra_decades = max(0.0, orders_of_magnitude - zipf_span)
    tail_ranks = n_services - cutoff_rank
    if tail_ranks > 0 and extra_decades > 0:
        tail_scale = tail_ranks / (extra_decades * np.log(10.0))
        beyond = ranks > cutoff_rank
        volumes[beyond] *= np.exp(-(ranks[beyond] - cutoff_rank) / tail_scale)
    else:
        tail_scale = np.inf

    volumes /= volumes.sum()
    return RankVolumeLaw(
        volumes=volumes,
        exponent=exponent,
        cutoff_rank=cutoff_rank,
        tail_scale=float(tail_scale),
    )


__all__ = ["RankVolumeLaw", "build_rank_volume_law"]
