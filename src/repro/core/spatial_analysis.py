"""Spatial analyses of §5: Figs. 8, 9 and 10.

- :func:`ranked_commune_curve` — cumulative traffic over ranked communes
  (Fig. 8 left: "the top 1 % and 10 % of the communes generate over 50 %
  and 90 % of the Twitter traffic");
- :func:`per_subscriber_cdf` — the CDF of weekly per-subscriber volume
  over communes (Fig. 8 right);
- :func:`pairwise_r2_matrix` / :func:`spatial_correlation_cdf` — the
  geographic correlation of usage between service pairs (Fig. 10);
- :func:`activity_grid` — per-subscriber activity rasterized onto a
  square grid (the data behind the Fig. 9 maps);
- :func:`technology_contrast` — per-subscriber usage conditioned on 4G
  availability (the Netflix-vs-coverage argument of Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.correlation import pairwise_r2, upper_triangle
from repro.dataset.store import MobileTrafficDataset


@dataclass(frozen=True)
class ConcentrationCurve:
    """Cumulative traffic share over communes ranked by volume."""

    fractions: np.ndarray  # commune-rank fractions in (0, 1]
    cumulative_share: np.ndarray  # cumulative traffic share at each fraction

    def share_at(self, fraction: float) -> float:
        """Cumulative share held by the top ``fraction`` of communes."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        idx = int(np.searchsorted(self.fractions, fraction))
        idx = min(idx, len(self.cumulative_share) - 1)
        return float(self.cumulative_share[idx])


def ranked_commune_curve(volumes: np.ndarray) -> ConcentrationCurve:
    """Build the Fig. 8 (left) concentration curve from commune volumes."""
    volumes = np.asarray(volumes, dtype=float)
    if volumes.ndim != 1 or volumes.size == 0:
        raise ValueError("need a non-empty 1-D volume vector")
    total = volumes.sum()
    if total <= 0:
        raise ValueError("total volume must be positive")
    ranked = np.sort(volumes)[::-1]
    cumulative = np.cumsum(ranked) / total
    fractions = np.arange(1, len(ranked) + 1) / len(ranked)
    return ConcentrationCurve(fractions=fractions, cumulative_share=cumulative)


def per_subscriber_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF points (sorted values, cumulative probability)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("need a non-empty 1-D value vector")
    ordered = np.sort(values)
    prob = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, prob


def pairwise_r2_matrix(
    dataset: MobileTrafficDataset, direction: str
) -> Tuple[np.ndarray, List[str]]:
    """(S, S) Pearson r² between per-subscriber commune vectors (Fig. 10).

    Each service is "a vector of the weekly per-subscriber traffic
    recorded in each commune"; the matrix holds the coefficient of
    determination for every pair.
    """
    matrix = dataset.per_subscriber_matrix(direction)
    return pairwise_r2(matrix), list(dataset.head_names)


def spatial_correlation_cdf(
    dataset: MobileTrafficDataset, direction: str
) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of the pairwise r² values (Fig. 10 left)."""
    matrix, _ = pairwise_r2_matrix(dataset, direction)
    return per_subscriber_cdf(upper_triangle(matrix))


def outlier_scores(
    dataset: MobileTrafficDataset, direction: str
) -> Dict[str, float]:
    """Mean r² of each service against all others (low = outlier).

    Identifies the paper's Netflix and iCloud outliers quantitatively.
    """
    matrix, names = pairwise_r2_matrix(dataset, direction)
    n = len(names)
    scores = {}
    for i, name in enumerate(names):
        others = [j for j in range(n) if j != i]
        scores[name] = float(matrix[i, others].mean())
    return scores


def activity_grid(
    dataset: MobileTrafficDataset,
    service_name: str,
    direction: str,
    grid_size: int = 24,
) -> np.ndarray:
    """Rasterize per-subscriber activity onto a (grid_size, grid_size) map.

    Each cell averages the per-subscriber weekly volume of the communes
    whose centroid falls in it (weighted by subscribers); empty cells are
    NaN.  This is the quantity colour-coded in the Fig. 9 maps.
    """
    if grid_size < 2:
        raise ValueError(f"grid_size must be >= 2, got {grid_size}")
    per_sub = dataset.per_subscriber_volumes(service_name, direction)
    users = dataset.users
    xy = dataset.coordinates
    span = xy.max(axis=0) - xy.min(axis=0)
    span[span == 0] = 1.0
    cols = np.clip(
        ((xy[:, 0] - xy[:, 0].min()) / span[0] * grid_size).astype(int),
        0,
        grid_size - 1,
    )
    rows = np.clip(
        ((xy[:, 1] - xy[:, 1].min()) / span[1] * grid_size).astype(int),
        0,
        grid_size - 1,
    )
    volume = np.zeros((grid_size, grid_size))
    weight = np.zeros((grid_size, grid_size))
    np.add.at(volume, (rows, cols), per_sub * users)
    np.add.at(weight, (rows, cols), users)
    with np.errstate(invalid="ignore"):
        grid = volume / weight
    grid[weight == 0] = np.nan
    return grid


def technology_contrast(
    dataset: MobileTrafficDataset, service_name: str, direction: str
) -> Dict[str, float]:
    """Mean per-subscriber usage in 4G vs 3G-only communes.

    The paper's Fig. 9 argument: Netflix usage follows the 4G footprint
    (large contrast), while Twitter's does not (3G "already provides
    sufficient performance").
    """
    per_sub = dataset.per_subscriber_volumes(service_name, direction)
    users = dataset.users
    has_4g = dataset.has_4g.astype(bool)
    only_3g = dataset.has_3g.astype(bool) & ~has_4g

    def weighted_mean(mask: np.ndarray) -> float:
        if not mask.any() or users[mask].sum() == 0:
            return 0.0
        return float((per_sub[mask] * users[mask]).sum() / users[mask].sum())

    mean_4g = weighted_mean(has_4g)
    mean_3g = weighted_mean(only_3g)
    return {
        "mean_4g": mean_4g,
        "mean_3g_only": mean_3g,
        "ratio_4g_over_3g": mean_4g / mean_3g if mean_3g > 0 else float("inf"),
    }


__all__ = [
    "ConcentrationCurve",
    "ranked_commune_curve",
    "per_subscriber_cdf",
    "pairwise_r2_matrix",
    "spatial_correlation_cdf",
    "outlier_scores",
    "activity_grid",
    "technology_contrast",
]
