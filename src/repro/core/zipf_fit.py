"""Zipf fitting of the service rank-volume distribution (Fig. 2).

The paper fits a Zipf law to the ranking of per-service traffic volumes
and reports exponents 1.69 (downlink) and 1.55 (uplink), noting that the
fit holds for the top half of services before a cut-off takes over, and
that volumes span ~10 orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correlation import pearson_r2


@dataclass(frozen=True)
class ZipfFit:
    """A fitted rank-volume law."""

    exponent: float
    intercept: float  # log10 of the rank-1 volume (normalized units)
    r2: float  # goodness of the log-log linear fit
    fit_ranks: int  # number of head ranks used for the fit
    span_orders_of_magnitude: float  # over the full ranking

    def predicted(self, ranks: np.ndarray) -> np.ndarray:
        """Fitted volumes at the given ranks (same normalized units)."""
        ranks = np.asarray(ranks, dtype=float)
        return 10.0 ** (self.intercept - self.exponent * np.log10(ranks))


def fit_zipf(
    volumes: np.ndarray,
    head_fraction: float = 0.5,
) -> ZipfFit:
    """Fit a Zipf law to a descending volume ranking.

    ``volumes`` are per-service totals (any units); they are normalized
    and sorted defensively.  The fit uses only the top ``head_fraction``
    of ranks, as the paper observes the law breaks at the bottom half.
    """
    volumes = np.asarray(volumes, dtype=float)
    if volumes.ndim != 1 or volumes.size < 4:
        raise ValueError("need a 1-D ranking of at least 4 volumes")
    if not 0 < head_fraction <= 1:
        raise ValueError(f"head_fraction must be in (0, 1], got {head_fraction}")
    volumes = np.sort(volumes)[::-1]
    positive = volumes[volumes > 0]
    if positive.size < 4:
        raise ValueError("need at least 4 positive volumes to fit")
    normalized = positive / positive.sum()

    n_fit = max(4, int(round(head_fraction * normalized.size)))
    n_fit = min(n_fit, normalized.size)
    ranks = np.arange(1, n_fit + 1, dtype=float)
    log_r = np.log10(ranks)
    log_v = np.log10(normalized[:n_fit])

    slope, intercept = np.polyfit(log_r, log_v, deg=1)
    r2 = pearson_r2(log_r, log_v)
    span = float(np.log10(normalized[0] / normalized[-1]))
    return ZipfFit(
        exponent=float(-slope),
        intercept=float(intercept),
        r2=float(r2),
        fit_ranks=int(n_fit),
        span_orders_of_magnitude=span,
    )


__all__ = ["ZipfFit", "fit_zipf"]
