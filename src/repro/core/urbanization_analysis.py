"""Urbanization analysis (§5, Fig. 11).

Two questions, two functions:

- **how much** does the typical subscriber in each region type consume?
  :func:`volume_ratio_slopes` regresses the per-subscriber time series of
  semi-urban / rural / TGV regions against the urban one ("each bar
  represents the slope of the linear least square regression of
  per-subscriber time series in urban and ... regions");
- **when** do they consume?  :func:`cross_region_r2` computes "the mean
  coefficient of determination between the time series of a same service
  recorded in one type of region and those of the other types".
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.correlation import pearson_r2
from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass

#: Region types compared against urban in the Fig. 11 (top) ratios.
COMPARED_CLASSES = (
    UrbanizationClass.SEMI_URBAN,
    UrbanizationClass.RURAL,
    UrbanizationClass.TGV,
)


def regression_slope(y: np.ndarray, x: np.ndarray) -> float:
    """Least-squares slope of ``y ≈ slope * x`` (through the origin).

    Traffic series are ratios of positive quantities with a common zero
    (no users, no traffic), so the regression is anchored at the origin;
    the slope is then exactly the volume ratio the paper plots.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("need two 1-D series of equal length")
    denom = float(x @ x)
    if denom == 0:
        return 0.0
    return float((y @ x) / denom)


def volume_ratio_slopes(
    dataset: MobileTrafficDataset,
    service_name: str,
    direction: str = "dl",
) -> Dict[UrbanizationClass, float]:
    """Fig. 11 (top): per-user volume ratio of each region type vs urban."""
    urban = dataset.region_series(service_name, direction, UrbanizationClass.URBAN)
    out: Dict[UrbanizationClass, float] = {}
    for cls in COMPARED_CLASSES:
        series = dataset.region_series(service_name, direction, cls)
        out[cls] = regression_slope(series, urban)
    return out


def cross_region_r2(
    dataset: MobileTrafficDataset,
    service_name: str,
    direction: str = "dl",
) -> Dict[UrbanizationClass, float]:
    """Fig. 11 (bottom): mean r² of each region's series vs the others."""
    classes = list(UrbanizationClass)
    series = {
        cls: dataset.region_series(service_name, direction, cls)
        for cls in classes
    }
    out: Dict[UrbanizationClass, float] = {}
    for cls in classes:
        others = [c for c in classes if c is not cls]
        out[cls] = float(
            np.mean([pearson_r2(series[cls], series[c]) for c in others])
        )
    return out


def all_services_slopes(
    dataset: MobileTrafficDataset, direction: str = "dl"
) -> Dict[str, Dict[UrbanizationClass, float]]:
    """Volume-ratio slopes for every head service."""
    return {
        name: volume_ratio_slopes(dataset, name, direction)
        for name in dataset.head_names
    }


def all_services_cross_r2(
    dataset: MobileTrafficDataset, direction: str = "dl"
) -> Dict[str, Dict[UrbanizationClass, float]]:
    """Cross-region temporal r² for every head service."""
    return {
        name: cross_region_r2(dataset, name, direction)
        for name in dataset.head_names
    }


def summarize_slopes(
    slopes: Dict[str, Dict[UrbanizationClass, float]]
) -> Dict[UrbanizationClass, float]:
    """Mean slope per region type over all services."""
    out: Dict[UrbanizationClass, List[float]] = {c: [] for c in COMPARED_CLASSES}
    for per_service in slopes.values():
        for cls in COMPARED_CLASSES:
            out[cls].append(per_service[cls])
    return {cls: float(np.mean(values)) for cls, values in out.items()}


__all__ = [
    "COMPARED_CLASSES",
    "regression_slope",
    "volume_ratio_slopes",
    "cross_region_r2",
    "all_services_slopes",
    "all_services_cross_r2",
    "summarize_slopes",
]
