"""Clustering-quality indices.

The paper ranks k-Shape outcomes over all k with "the (modified)
Davies-Bouldin, Dunn, and Silhouette indices, which constitute a
representative selection of popular indices used in the literature"
(§4, citing Milligan & Cooper 1985).  All four are implemented over an
arbitrary precomputed distance matrix, so they can score clusterings
under SBD (the paper's setting) or any other metric (the ablation
benchmarks use Euclidean distance).

Conventions (as in the paper's Fig. 5):

- Davies-Bouldin (DB) and modified Davies-Bouldin (DB*): *lower* is
  better;
- Dunn (D) and Silhouette (Sil): *higher* is better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


def _validate(distances: np.ndarray, labels: np.ndarray) -> np.ndarray:
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distance matrix must be square, got {distances.shape}")
    if labels.shape[0] != distances.shape[0]:
        raise ValueError(
            f"{labels.shape[0]} labels for {distances.shape[0]} points"
        )
    if np.unique(labels).size < 2:
        raise ValueError("need at least two clusters to score a clustering")
    return labels


def _cluster_stats(distances: np.ndarray, labels: np.ndarray):
    """Per-cluster medoid-style scatter and pairwise separation.

    Working purely from a distance matrix (no coordinate space), each
    cluster's centre is its medoid; scatter is the mean distance to the
    medoid, separation the distance between medoids.
    """
    cluster_ids = np.unique(labels)
    medoids: Dict[int, int] = {}
    scatters: Dict[int, float] = {}
    for c in cluster_ids:
        members = np.nonzero(labels == c)[0]
        sub = distances[np.ix_(members, members)]
        medoid_local = int(np.argmin(sub.sum(axis=1)))
        medoids[c] = int(members[medoid_local])
        scatters[c] = float(sub[medoid_local].mean())
    return cluster_ids, medoids, scatters


def davies_bouldin(distances: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better)."""
    labels = _validate(distances, labels)
    cluster_ids, medoids, scatters = _cluster_stats(distances, labels)
    ratios = []
    for i in cluster_ids:
        worst = 0.0
        for j in cluster_ids:
            if i == j:
                continue
            separation = distances[medoids[i], medoids[j]]
            if separation <= 0:
                return float("inf")
            worst = max(worst, (scatters[i] + scatters[j]) / separation)
        ratios.append(worst)
    return float(np.mean(ratios))


def davies_bouldin_star(distances: np.ndarray, labels: np.ndarray) -> float:
    """Modified Davies-Bouldin (DB*, Kim & Ramakrishna 2005; lower better).

    Decouples the numerator and denominator: for each cluster, the worst
    pairwise scatter sum is divided by the *smallest* separation, which
    penalizes one close neighbour even when another is far.
    """
    labels = _validate(distances, labels)
    cluster_ids, medoids, scatters = _cluster_stats(distances, labels)
    ratios = []
    for i in cluster_ids:
        num = 0.0
        den = float("inf")
        for j in cluster_ids:
            if i == j:
                continue
            num = max(num, scatters[i] + scatters[j])
            den = min(den, distances[medoids[i], medoids[j]])
        if den <= 0:
            return float("inf")
        ratios.append(num / den)
    return float(np.mean(ratios))


def dunn(distances: np.ndarray, labels: np.ndarray) -> float:
    """Dunn index: min inter-cluster / max intra-cluster (higher better)."""
    labels = _validate(distances, labels)
    cluster_ids = np.unique(labels)
    max_diameter = 0.0
    for c in cluster_ids:
        members = np.nonzero(labels == c)[0]
        if members.size > 1:
            sub = distances[np.ix_(members, members)]
            max_diameter = max(max_diameter, float(sub.max()))
    min_separation = float("inf")
    for a_pos, a in enumerate(cluster_ids):
        for b in cluster_ids[a_pos + 1:]:
            rows = np.nonzero(labels == a)[0]
            cols = np.nonzero(labels == b)[0]
            sep = float(distances[np.ix_(rows, cols)].min())
            min_separation = min(min_separation, sep)
    if max_diameter == 0.0:
        return float("inf")
    return min_separation / max_diameter


def silhouette(distances: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (higher is better, in [-1, 1])."""
    labels = _validate(distances, labels)
    n = distances.shape[0]
    cluster_ids = np.unique(labels)
    scores = []
    for i in range(n):
        own = labels[i]
        own_members = np.nonzero((labels == own) & (np.arange(n) != i))[0]
        if own_members.size == 0:
            scores.append(0.0)  # singleton clusters score 0 by convention
            continue
        a = float(distances[i, own_members].mean())
        b = float("inf")
        for c in cluster_ids:
            if c == own:
                continue
            others = np.nonzero(labels == c)[0]
            b = min(b, float(distances[i, others].mean()))
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))


@dataclass(frozen=True)
class ClusterIndexReport:
    """All four index values for one clustering."""

    k: int
    davies_bouldin: float
    davies_bouldin_star: float
    dunn: float
    silhouette: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "DB": self.davies_bouldin,
            "DB*": self.davies_bouldin_star,
            "D": self.dunn,
            "Sil": self.silhouette,
        }


def evaluate_clustering(
    distances: np.ndarray, labels: np.ndarray
) -> ClusterIndexReport:
    """Score one clustering with all four indices."""
    return ClusterIndexReport(
        k=int(np.unique(labels).size),
        davies_bouldin=davies_bouldin(distances, labels),
        davies_bouldin_star=davies_bouldin_star(distances, labels),
        dunn=dunn(distances, labels),
        silhouette=silhouette(distances, labels),
    )


__all__ = [
    "davies_bouldin",
    "davies_bouldin_star",
    "dunn",
    "silhouette",
    "ClusterIndexReport",
    "evaluate_clustering",
]
