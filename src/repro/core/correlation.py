"""Pearson correlation helpers shared by the spatial and temporal analyses.

The paper's §5 works throughout with "Pearson's r²" — the coefficient of
determination between two vectors.  These helpers add the guards numpy's
``corrcoef`` lacks (zero-variance vectors, length checks) and a matrix
variant for the Fig. 10 service-pair analysis.
"""

from __future__ import annotations

import numpy as np


def pearson_r(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate vectors."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"vector shapes differ: {x.shape} vs {y.shape}")
    if x.ndim != 1:
        raise ValueError(f"expected 1-D vectors, got shape {x.shape}")
    if x.size < 2:
        raise ValueError("need at least two samples for a correlation")
    xd = x - x.mean()
    yd = y - y.mean()
    denom = float(np.linalg.norm(xd) * np.linalg.norm(yd))
    if denom == 0:
        return 0.0
    return float(np.clip((xd @ yd) / denom, -1.0, 1.0))


def pearson_r2(x: np.ndarray, y: np.ndarray) -> float:
    """Coefficient of determination (the paper's r²)."""
    r = pearson_r(x, y)
    return r * r


def pairwise_r2(columns: np.ndarray) -> np.ndarray:
    """(k, k) matrix of pairwise r² between the columns of ``(n, k)``.

    Degenerate (zero-variance) columns correlate 0 with everything and 1
    with themselves, matching :func:`pearson_r2`.
    """
    columns = np.asarray(columns, dtype=float)
    if columns.ndim != 2:
        raise ValueError(f"expected an (n, k) array, got shape {columns.shape}")
    k = columns.shape[1]
    centred = columns - columns.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(centred, axis=0)
    out = np.eye(k)
    # Columns whose variation is at floating-point noise level are
    # constant for correlation purposes.
    scale = np.maximum(np.abs(columns).max(axis=0), 1.0)
    valid = norms > 1e-9 * scale
    if valid.any():
        sub = centred[:, valid] / norms[valid]
        r = np.clip(sub.T @ sub, -1.0, 1.0)
        out[np.ix_(valid, valid)] = r**2
    np.fill_diagonal(out, 1.0)
    return out


def upper_triangle(matrix: np.ndarray) -> np.ndarray:
    """Flattened strict upper triangle (the distinct pairs of Fig. 10)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    i, j = np.triu_indices(matrix.shape[0], k=1)
    return matrix[i, j]


__all__ = ["pearson_r", "pearson_r2", "pairwise_r2", "upper_triangle"]
