"""Predictability of per-service demand.

The paper's related work credits service-category traffic with "high
predictability" (Shafiq et al., SIGMETRICS 2011); a natural question
over the reproduced dataset is whether that transfers to *individual*
services, whose temporal patterns the paper shows to be far more
idiosyncratic.  This module implements the standard baseline ladder:

- **last-value** — demand(t) ≈ demand(t-1);
- **seasonal-naive** — demand(t) ≈ demand(t - 24 h), the strongest
  simple predictor for strongly diurnal signals;
- **seasonal-profile** — demand(t) ≈ trailing mean of the same
  time-of-day over previous days;

with per-service error metrics (MAE, MAPE, and the relative improvement
over last-value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro._time import TimeAxis
from repro.dataset.store import MobileTrafficDataset

PREDICTORS = ("last_value", "seasonal_naive", "seasonal_profile")


def predict(series: np.ndarray, method: str, axis: TimeAxis) -> np.ndarray:
    """One-step-ahead predictions for a weekly series.

    The returned array aligns with ``series``; entries without enough
    history are NaN (the first bin, the first day, ...).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    n = len(series)
    day = 24 * axis.bins_per_hour
    out = np.full(n, np.nan)
    if method == "last_value":
        out[1:] = series[:-1]
    elif method == "seasonal_naive":
        out[day:] = series[:-day]
    elif method == "seasonal_profile":
        for t in range(day, n):
            history = series[t % day : t : day]
            out[t] = history.mean()
    else:
        raise ValueError(
            f"method must be one of {PREDICTORS}, got {method!r}"
        )
    return out


@dataclass(frozen=True)
class PredictabilityReport:
    """Error metrics of one predictor on one series."""

    method: str
    mae: float
    mape: float  # mean absolute percentage error over positive truth
    n_scored: int


def score(
    series: np.ndarray, method: str, axis: TimeAxis
) -> PredictabilityReport:
    """Score one predictor on one series."""
    series = np.asarray(series, dtype=float)
    predictions = predict(series, method, axis)
    valid = np.isfinite(predictions) & (series > 0)
    if not valid.any():
        raise ValueError("no scorable bins (series empty or too short)")
    errors = np.abs(predictions[valid] - series[valid])
    return PredictabilityReport(
        method=method,
        mae=float(errors.mean()),
        mape=float((errors / series[valid]).mean()),
        n_scored=int(valid.sum()),
    )


def service_predictability(
    dataset: MobileTrafficDataset,
    direction: str = "dl",
) -> Dict[str, Dict[str, PredictabilityReport]]:
    """Score every head service under every predictor."""
    out: Dict[str, Dict[str, PredictabilityReport]] = {}
    for name in dataset.head_names:
        series = dataset.national_series(name, direction)
        out[name] = {
            method: score(series, method, dataset.axis)
            for method in PREDICTORS
        }
    return out


def rank_by_predictability(
    reports: Dict[str, Dict[str, PredictabilityReport]],
    method: str = "seasonal_profile",
) -> List[str]:
    """Service names from most to least predictable under a method."""
    if method not in PREDICTORS:
        raise ValueError(f"method must be one of {PREDICTORS}, got {method!r}")
    return sorted(reports, key=lambda name: reports[name][method].mape)


__all__ = [
    "PREDICTORS",
    "predict",
    "PredictabilityReport",
    "score",
    "service_predictability",
    "rank_by_predictability",
]
