"""k-Shape time-series clustering, implemented from scratch.

The paper clusters the 20 nationwide service time series with k-Shape
(Paparrizos & Gravano, SIGMOD 2015), "the current state-of-the-art
unsupervised technique for time series clustering".  This module is a
faithful reimplementation:

- the **shape-based distance** (SBD) between two z-normalized series is
  ``1 - max_w NCC_c(x, y, w)``, the normalized cross-correlation
  maximized over all alignments, computed in O(n log n) via FFT;
- **shape extraction** finds each cluster's centroid as the series
  maximizing the summed squared cross-correlation to the members — the
  dominant eigenvector of ``Q S Q`` where ``S`` is the scatter of the
  aligned members and ``Q`` the centering matrix (Rayleigh quotient
  maximization);
- the usual two-phase iteration (assignment / refinement) with empty
  clusters reseeded from the worst-fit series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._rng import SeedLike, as_generator


def z_normalize(series: np.ndarray) -> np.ndarray:
    """Z-normalize along the last axis (constant series map to zeros)."""
    series = np.asarray(series, dtype=float)
    mean = series.mean(axis=-1, keepdims=True)
    std = series.std(axis=-1, keepdims=True)
    out = np.zeros_like(series)
    np.divide(series - mean, std, out=out, where=std > 0)
    return out


def _ncc_c(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Coefficient-normalized cross-correlation of two 1-D series.

    Returns the correlation at every shift ``w`` in ``[-(n-1), n-1]``,
    normalized by ``||x|| * ||y||`` so values lie in [-1, 1].
    """
    n = len(x)
    norm = np.linalg.norm(x) * np.linalg.norm(y)
    if norm == 0:
        return np.zeros(2 * n - 1)
    size = 1 << (2 * n - 1).bit_length()
    cc = np.fft.irfft(
        np.fft.rfft(x, size) * np.conj(np.fft.rfft(y, size)), size
    )
    # Shifts -(n-1)..-1 live at the tail of the circular correlation.
    cc = np.concatenate((cc[-(n - 1):], cc[:n]))
    return cc / norm


def sbd(x: np.ndarray, y: np.ndarray) -> Tuple[float, np.ndarray]:
    """Shape-based distance between two series.

    Returns ``(distance, y_aligned)`` where ``distance = 1 - max NCC_c``
    (in [0, 2]) and ``y_aligned`` is ``y`` shifted to the maximizing
    alignment (zero-padded), as k-Shape's refinement step requires.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"series shapes differ: {x.shape} vs {y.shape}")
    ncc = _ncc_c(x, y)
    idx = int(np.argmax(ncc))
    dist = 1.0 - float(ncc[idx])
    shift = idx - (len(x) - 1)
    aligned = np.zeros_like(y)
    if shift >= 0:
        aligned[shift:] = y[: len(y) - shift]
    else:
        aligned[:shift] = y[-shift:]
    return dist, aligned


def _batch_sbd_to(data: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """SBD distance from ``centroid`` to every row of ``data`` (vectorized).

    One batched FFT replaces m pairwise calls; SBD is symmetric in the
    distance (though not in the alignment), so this serves the k-Shape
    assignment step.
    """
    m, n = data.shape
    size = 1 << (2 * n - 1).bit_length()
    c_fft = np.fft.rfft(centroid, size)
    d_fft = np.fft.rfft(data, size, axis=1)
    cc = np.fft.irfft(c_fft[None, :] * np.conj(d_fft), size, axis=1)
    valid = np.concatenate((cc[:, -(n - 1):], cc[:, :n]), axis=1)
    norms = np.linalg.norm(data, axis=1) * np.linalg.norm(centroid)
    best = valid.max(axis=1)
    out = np.ones(m)
    positive = norms > 0
    out[positive] = 1.0 - best[positive] / norms[positive]
    return out


def sbd_matrix(series: np.ndarray) -> np.ndarray:
    """Pairwise SBD distance matrix for an ``(m, n)`` series stack."""
    series = z_normalize(series)
    m = series.shape[0]
    out = np.zeros((m, m))
    for i in range(m - 1):
        distances = _batch_sbd_to(series[i + 1:], series[i])
        out[i, i + 1:] = distances
        out[i + 1:, i] = distances
    return out


def _extract_shape(
    members: np.ndarray, centroid: np.ndarray
) -> np.ndarray:
    """Refine one cluster's centroid by shape extraction."""
    if members.shape[0] == 0:
        return centroid
    n = members.shape[1]
    if np.any(centroid):
        aligned = np.empty_like(members)
        for i in range(members.shape[0]):
            _, aligned[i] = sbd(centroid, members[i])
    else:
        aligned = members
    aligned = z_normalize(aligned)

    # The new shape maximizes the Rayleigh quotient of M = Q Sᵀ S Q
    # (Q = centering matrix): its dominant eigenvector.  Power iteration
    # with the matvec factored through the (m, n) member matrix costs
    # O(m·n) per step instead of the O(n³) of a full eigendecomposition,
    # and warm-starts from the current centroid.
    def matvec(v: np.ndarray) -> np.ndarray:
        centred = v - v.mean()
        projected = aligned.T @ (aligned @ centred)
        return projected - projected.mean()

    shape = centroid.copy() if np.any(centroid) else aligned[0].copy()
    shape = shape - shape.mean()
    norm = np.linalg.norm(shape)
    if norm == 0:
        shape = np.ones(n) / np.sqrt(n)
    else:
        shape /= norm
    for _ in range(100):
        nxt = matvec(shape)
        norm = np.linalg.norm(nxt)
        if norm == 0:
            break
        nxt /= norm
        if np.abs(nxt @ shape) > 1.0 - 1e-10:
            shape = nxt
            break
        shape = nxt

    # The eigenvector's sign is arbitrary; pick the orientation closer to
    # the cluster members.
    dist_pos = float(np.linalg.norm(aligned[0] - shape))
    dist_neg = float(np.linalg.norm(aligned[0] + shape))
    if dist_neg < dist_pos:
        shape = -shape
    return z_normalize(shape)


@dataclass
class KShapeResult:
    """Outcome of one k-Shape run."""

    labels: np.ndarray  # (m,) cluster index per series
    centroids: np.ndarray  # (k, n) z-normalized shapes
    iterations: int
    inertia: float  # sum of SBD distances to assigned centroids

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def kshape(
    series: np.ndarray,
    k: int,
    max_iterations: int = 100,
    seed: SeedLike = None,
) -> KShapeResult:
    """Cluster ``(m, n)`` time series into ``k`` shape groups."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"expected an (m, n) array, got shape {series.shape}")
    m, n = series.shape
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    rng = as_generator(seed)
    data = z_normalize(series)

    labels = rng.integers(0, k, size=m)
    # Guarantee that every cluster starts non-empty.
    labels[rng.permutation(m)[:k]] = np.arange(k)
    centroids = np.zeros((k, n))

    for iteration in range(1, max_iterations + 1):
        # Refinement: re-extract each cluster's shape.
        for c in range(k):
            members = data[labels == c]
            centroids[c] = _extract_shape(members, centroids[c])

        # Assignment: nearest centroid under SBD (batched per centroid).
        distances = np.empty((m, k))
        for c in range(k):
            distances[:, c] = _batch_sbd_to(data, centroids[c])
        new_labels = np.argmin(distances, axis=1)

        # Reseed empty clusters with the currently worst-fit series.
        for c in range(k):
            if not np.any(new_labels == c):
                worst = int(np.argmax(distances[np.arange(m), new_labels]))
                new_labels[worst] = c

        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
    else:
        iteration = max_iterations

    inertia = 0.0
    for c in range(k):
        members = labels == c
        if members.any():
            inertia += float(_batch_sbd_to(data[members], centroids[c]).sum())
    return KShapeResult(
        labels=labels,
        centroids=centroids.copy(),
        iterations=iteration,
        inertia=float(inertia),
    )


def kshape_best(
    series: np.ndarray,
    k: int,
    n_restarts: int = 3,
    max_iterations: int = 100,
    seed: SeedLike = None,
) -> KShapeResult:
    """Run k-Shape with restarts, keeping the lowest-inertia outcome.

    k-Shape is sensitive to initialization (as the original paper
    notes); restarts are the standard remedy and what the reproduction's
    Fig. 5 sweep uses.
    """
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    rng = as_generator(seed)
    best: Optional[KShapeResult] = None
    for _ in range(n_restarts):
        candidate = kshape(
            series, k, max_iterations=max_iterations, seed=rng
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best


__all__ = [
    "z_normalize",
    "sbd",
    "sbd_matrix",
    "KShapeResult",
    "kshape",
    "kshape_best",
]
