"""Smoothed z-score peak detection.

The paper detects activity peaks with "the smoothed z-score algorithm"
(§4, pointing at the well-known thresholding gist): the signal is
compared against the mean and standard deviation of a *filtered* trailing
window; samples deviating by more than ``threshold`` standard deviations
are flagged, and flagged samples enter the filtered history only with
weight ``influence`` so a peak does not inflate its own baseline.

The paper's parameters — threshold 3 z-scores, lag 2 hours, influence
0.4 — are the defaults (the lag is converted to samples through the time
axis resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._time import TimeAxis


@dataclass
class PeakDetection:
    """Full output of the detector, enough to redraw the paper's Fig. 4."""

    signals: np.ndarray  # (n,) in {-1, 0, +1}
    filtered: np.ndarray  # (n,) the influence-weighted history
    moving_mean: np.ndarray  # (n,) trailing mean of the filtered signal
    moving_std: np.ndarray  # (n,) trailing std of the filtered signal
    threshold: float
    lag: int
    influence: float

    @property
    def upper_band(self) -> np.ndarray:
        """The detection boundary above the smoothed signal."""
        return self.moving_mean + self.threshold * self.moving_std

    @property
    def lower_band(self) -> np.ndarray:
        """The detection boundary below the smoothed signal."""
        return self.moving_mean - self.threshold * self.moving_std

    def rising_fronts(self) -> np.ndarray:
        """Indices where a positive peak starts (the paper's red lines)."""
        positive = self.signals == 1
        starts = positive & ~np.concatenate(([False], positive[:-1]))
        return np.nonzero(starts)[0]

    def peak_intervals(self) -> List[Tuple[int, int]]:
        """(start, end) index pairs of contiguous positive-peak runs
        (``end`` exclusive)."""
        positive = np.concatenate(([0], (self.signals == 1).astype(int), [0]))
        edges = np.diff(positive)
        starts = np.nonzero(edges == 1)[0]
        ends = np.nonzero(edges == -1)[0]
        return list(zip(starts.tolist(), ends.tolist()))


def smoothed_zscore(
    series: np.ndarray,
    lag: int,
    threshold: float = 3.0,
    influence: float = 0.4,
) -> PeakDetection:
    """Run the smoothed z-score detector over a 1-D series.

    Parameters follow the reference implementation: ``lag`` is the
    trailing-window length in samples, ``threshold`` the z-score beyond
    which a sample is flagged, and ``influence`` the weight with which
    flagged samples enter the filtered history (0 freezes the baseline
    during peaks, 1 disables the smoothing entirely).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    n = len(series)
    if not 1 <= lag < n:
        raise ValueError(f"lag must be in [1, {n}), got {lag}")
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    if not 0 <= influence <= 1:
        raise ValueError(f"influence must be in [0, 1], got {influence}")

    signals = np.zeros(n, dtype=int)
    filtered = series.copy()
    moving_mean = np.zeros(n)
    moving_std = np.zeros(n)
    moving_mean[lag - 1] = filtered[:lag].mean()
    moving_std[lag - 1] = filtered[:lag].std()

    for i in range(lag, n):
        deviation = series[i] - moving_mean[i - 1]
        if abs(deviation) > threshold * moving_std[i - 1] and moving_std[i - 1] > 0:
            signals[i] = 1 if deviation > 0 else -1
            filtered[i] = (
                influence * series[i] + (1.0 - influence) * filtered[i - 1]
            )
        else:
            signals[i] = 0
            filtered[i] = series[i]
        window = filtered[i - lag + 1 : i + 1]
        moving_mean[i] = window.mean()
        moving_std[i] = window.std()

    return PeakDetection(
        signals=signals,
        filtered=filtered,
        moving_mean=moving_mean,
        moving_std=moving_std,
        threshold=threshold,
        lag=lag,
        influence=influence,
    )


def detect_peaks(
    series: np.ndarray,
    axis: TimeAxis,
    lag_hours: float = 2.0,
    threshold: float = 3.0,
    influence: float = 0.4,
) -> PeakDetection:
    """Paper-parameterized detection on a weekly series.

    The paper sets the z-score smoothing interval to 2 hours; the sample
    lag is derived from the axis resolution.
    """
    lag = max(2, int(round(lag_hours * axis.bins_per_hour)))
    return smoothed_zscore(
        series, lag=lag, threshold=threshold, influence=influence
    )


__all__ = ["PeakDetection", "smoothed_zscore", "detect_peaks"]
