"""Service ranking and category shares (Fig. 3 and §3 statistics)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dataset.store import MobileTrafficDataset
from repro.services.catalog import ServiceCatalog, ServiceCategory


@dataclass(frozen=True)
class RankingEntry:
    """One row of the Fig. 3 ranking."""

    rank: int
    service_name: str
    category: ServiceCategory
    volume_bytes: float
    share_of_direction: float  # of the classified traffic in the direction


def rank_services(
    dataset: MobileTrafficDataset,
    catalog: ServiceCatalog,
    direction: str,
    head_only: bool = True,
) -> List[RankingEntry]:
    """Rank services on national volume in one direction."""
    totals = dataset.national_dl if direction == "dl" else dataset.national_ul
    if direction not in ("dl", "ul"):
        raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")
    totals = np.asarray(totals, dtype=float)
    direction_total = float(totals.sum())
    entries = []
    for name, volume in zip(dataset.all_service_names, totals):
        service = catalog.by_name(name)
        if head_only and not service.is_head:
            continue
        entries.append((name, service.category, float(volume)))
    entries.sort(key=lambda item: item[2], reverse=True)
    return [
        RankingEntry(
            rank=i + 1,
            service_name=name,
            category=category,
            volume_bytes=volume,
            share_of_direction=volume / direction_total if direction_total else 0.0,
        )
        for i, (name, category, volume) in enumerate(entries)
    ]


def category_shares(
    dataset: MobileTrafficDataset,
    catalog: ServiceCatalog,
    direction: str,
) -> Dict[ServiceCategory, float]:
    """Share of each category in one direction's classified traffic."""
    ranking = rank_services(dataset, catalog, direction, head_only=False)
    shares: Dict[ServiceCategory, float] = {c: 0.0 for c in ServiceCategory}
    for entry in ranking:
        shares[entry.category] += entry.share_of_direction
    return shares


def video_streaming_share(
    dataset: MobileTrafficDataset,
    catalog: ServiceCatalog,
    direction: str = "dl",
    exclude: Optional[tuple] = ("Audio",),
) -> float:
    """Aggregate share of video streaming services (the paper's 46 %).

    The paper's streaming figure refers to *video*; the Audio service is
    excluded by default.
    """
    exclude = exclude or ()
    ranking = rank_services(dataset, catalog, direction, head_only=False)
    return sum(
        e.share_of_direction
        for e in ranking
        if e.category is ServiceCategory.STREAMING and e.service_name not in exclude
    )


def uplink_fraction(dataset: MobileTrafficDataset) -> float:
    """Uplink share of the total classified load (§3: below 1/20)."""
    ul = float(np.asarray(dataset.national_ul).sum())
    total = dataset.total_volume()
    return ul / total if total else 0.0


__all__ = [
    "RankingEntry",
    "rank_services",
    "category_shares",
    "video_streaming_share",
    "uplink_fraction",
]
