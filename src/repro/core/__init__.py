"""The paper's analyses.

Everything in this package operates on a
:class:`~repro.dataset.store.MobileTrafficDataset` (or plain numpy
arrays) and implements the methodology of the paper section by section:

- :mod:`repro.core.zipf_fit` — rank-volume Zipf fitting (§3, Fig. 2);
- :mod:`repro.core.ranking` — head-service ranking and category shares
  (§3, Fig. 3);
- :mod:`repro.core.kshape` — k-Shape time-series clustering, implemented
  from scratch (§4, Fig. 5);
- :mod:`repro.core.indices` — Davies-Bouldin, modified Davies-Bouldin,
  Dunn and Silhouette clustering-quality indices (§4, Fig. 5);
- :mod:`repro.core.peaks` — the smoothed z-score peak detector (§4,
  Fig. 4);
- :mod:`repro.core.topical` — topical-time mapping, per-service peak
  signatures and peak intensities (§4, Figs. 6-7);
- :mod:`repro.core.spatial_analysis` — commune concentration curves,
  per-subscriber CDFs and pairwise spatial correlation (§5, Figs. 8-10);
- :mod:`repro.core.urbanization_analysis` — per-user volume ratios and
  cross-region temporal correlation (§5, Fig. 11);
- :mod:`repro.core.correlation` — shared Pearson helpers.
"""

from repro.core.correlation import pearson_r, pearson_r2
from repro.core.indices import (
    ClusterIndexReport,
    davies_bouldin,
    davies_bouldin_star,
    dunn,
    evaluate_clustering,
    silhouette,
)
from repro.core.kshape import KShapeResult, kshape, sbd, z_normalize
from repro.core.peaks import PeakDetection, smoothed_zscore
from repro.core.ranking import RankingEntry, rank_services
from repro.core.spatial_analysis import (
    pairwise_r2_matrix,
    per_subscriber_cdf,
    ranked_commune_curve,
)
from repro.core.topical import (
    PeakSignature,
    peak_intensities,
    peak_signature,
    topical_windows,
)
from repro.core.urbanization_analysis import (
    cross_region_r2,
    volume_ratio_slopes,
)
from repro.core.zipf_fit import ZipfFit, fit_zipf

__all__ = [
    "pearson_r",
    "pearson_r2",
    "KShapeResult",
    "kshape",
    "sbd",
    "z_normalize",
    "ClusterIndexReport",
    "davies_bouldin",
    "davies_bouldin_star",
    "dunn",
    "silhouette",
    "evaluate_clustering",
    "PeakDetection",
    "smoothed_zscore",
    "PeakSignature",
    "topical_windows",
    "peak_signature",
    "peak_intensities",
    "RankingEntry",
    "rank_services",
    "ranked_commune_curve",
    "per_subscriber_cdf",
    "pairwise_r2_matrix",
    "cross_region_r2",
    "volume_ratio_slopes",
    "ZipfFit",
    "fit_zipf",
]
