"""Topical-time analysis: peak signatures (Fig. 6) and intensities (Fig. 7).

Applying the smoothed z-score detector to all services, the paper finds
that peaks "only appear at seven specific moments during the week" — the
topical times.  This module:

- maps detected peak fronts onto the seven topical-time windows
  (:func:`topical_windows`);
- summarizes each service's peak pattern as a set of topical times
  (:func:`peak_signature`, the content of Fig. 6);
- computes per-(service, topical-time) peak intensities as the paper
  does: "the ratio between the maximum and minimum traffic volumes
  recorded during the peak intervals as detected by the smoothed z-score
  algorithm" (:func:`peak_intensities`, Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._time import TimeAxis
from repro.core.peaks import PeakDetection, detect_peaks
from repro.services.profiles import TopicalTime

#: Half-width, in hours, of the window around a topical time within
#: which a detected peak front is attributed to it.
WINDOW_HALF_WIDTH_HOURS = 1.5


def topical_windows(
    axis: TimeAxis, half_width_hours: float = WINDOW_HALF_WIDTH_HOURS
) -> Dict[TopicalTime, np.ndarray]:
    """Bin masks of each topical-time window over the week."""
    hours = axis.hours()
    day_of_bin = (hours // 24).astype(int)
    hour_of_day = hours % 24
    windows: Dict[TopicalTime, np.ndarray] = {}
    for topical in TopicalTime:
        in_days = np.isin(day_of_bin, topical.days)
        in_hours = np.abs(hour_of_day - topical.hour) <= half_width_hours
        windows[topical] = in_days & in_hours
    return windows


def classify_front(
    front_bin: int, axis: TimeAxis, half_width_hours: float = WINDOW_HALF_WIDTH_HOURS
) -> Optional[TopicalTime]:
    """Attribute one detected peak front to a topical time (or None)."""
    day = axis.day_of_bin(front_bin)
    hour = axis.hour_of_bin(front_bin)
    best: Optional[TopicalTime] = None
    best_gap = half_width_hours
    for topical in TopicalTime:
        if day not in topical.days:
            continue
        gap = abs(hour - topical.hour)
        if gap <= best_gap:
            best, best_gap = topical, gap
    return best


@dataclass
class PeakSignature:
    """One service's detected peak pattern."""

    service_name: str
    #: Topical times at which at least one peak was detected.
    topical_times: Tuple[TopicalTime, ...]
    #: Bin indices of all detected rising fronts.
    fronts: np.ndarray
    #: Apexes of genuine (local-maximum) peaks outside every topical
    #: window.
    unattributed_fronts: np.ndarray
    detection: PeakDetection
    #: (start, end, topical) of every attributed peak interval.
    attributed_intervals: Tuple[Tuple[int, int, TopicalTime], ...] = ()
    #: Bin of each genuine peak's moment (apex for local maxima, rising
    #: front for peaks riding the diurnal ramp), attributed or not.
    moment_bins: Tuple[int, ...] = ()

    def has_peak(self, topical: TopicalTime) -> bool:
        return topical in self.topical_times


def peak_signature(
    series: np.ndarray,
    axis: TimeAxis,
    service_name: str = "",
    lag_hours: float = 2.0,
    threshold: float = 3.0,
    influence: float = 0.4,
    local_max_window_hours: float = 1.5,
) -> PeakSignature:
    """Detect peaks in one national series and map them to topical times.

    Each detected interval is attributed in two steps:

    1. if the interval's apex is a genuine local maximum of the signal
       (traffic falls back within ``local_max_window_hours``), the apex
       time selects the topical window;
    2. otherwise the interval's rising front does — this catches peaks
       riding the diurnal ramp (e.g. a morning-commute bump that keeps
       climbing toward midday afterwards).

    Intervals matching neither are threshold crossings of the diurnal
    trend itself, not activity peaks, and are dropped; local-maximum
    peaks outside every window are reported as unattributed.
    """
    series = np.asarray(series, dtype=float)
    detection = detect_peaks(
        series, axis, lag_hours=lag_hours, threshold=threshold, influence=influence
    )
    half = max(1, int(round(local_max_window_hours * axis.bins_per_hour)))
    attributed: List[TopicalTime] = []
    intervals: List[Tuple[int, int, TopicalTime]] = []
    moments: List[int] = []
    orphans: List[int] = []
    for start, end in detection.peak_intervals():
        apex = int(start + np.argmax(series[start : max(start + 1, end)]))
        lo, hi = max(0, apex - half), min(len(series), apex + half + 1)
        is_local_max = series[apex] >= series[lo:hi].max()
        topical = classify_front(apex, axis) if is_local_max else None
        used_front = False
        if topical is None:
            topical = classify_front(int(start), axis)
            used_front = topical is not None
        if topical is None:
            if is_local_max:
                orphans.append(apex)
                moments.append(apex)
            continue
        moments.append(int(start) if used_front else apex)
        intervals.append((int(start), int(end), topical))
        if topical not in attributed:
            attributed.append(topical)
    return PeakSignature(
        service_name=service_name,
        topical_times=tuple(attributed),
        fronts=detection.rising_fronts(),
        unattributed_fronts=np.asarray(orphans, dtype=int),
        detection=detection,
        attributed_intervals=tuple(intervals),
        moment_bins=tuple(moments),
    )


def signature_matrix(
    signatures: List[PeakSignature],
) -> Tuple[np.ndarray, List[str], List[TopicalTime]]:
    """Stack signatures into the boolean service × topical matrix of Fig. 6."""
    topicals = list(TopicalTime)
    names = [s.service_name for s in signatures]
    matrix = np.zeros((len(signatures), len(topicals)), dtype=bool)
    for i, signature in enumerate(signatures):
        for j, topical in enumerate(topicals):
            matrix[i, j] = signature.has_peak(topical)
    return matrix, names, topicals


def peak_intensities(
    series: np.ndarray,
    signature: PeakSignature,
    axis: TimeAxis,
) -> Dict[TopicalTime, float]:
    """Peak intensity per topical time, as in Fig. 7.

    For each topical time at which the service peaks, the intensity is
    the max/min traffic ratio over the detected peak intervals that fall
    in that topical window, expressed (as in the paper's percent axes) as
    ``max/min - 1``: a value of 0.4 means the peak rises 40 % above the
    local minimum.  Intervals are padded by one lag so the pre-peak
    baseline is included in the minimum.
    """
    series = np.asarray(series, dtype=float)
    lag = signature.detection.lag
    out: Dict[TopicalTime, float] = {}
    for start, end, topical in signature.attributed_intervals:
        lo = max(0, start - lag)
        hi = min(len(series), end + 1)
        segment = series[lo:hi]
        low = float(segment.min())
        high = float(segment.max())
        if low <= 0:
            continue
        intensity = high / low - 1.0
        out[topical] = max(out.get(topical, 0.0), intensity)
    return out


@dataclass(frozen=True)
class DerivedMoment:
    """A peak moment discovered from the data (not assumed a priori)."""

    weekend: bool
    hour: float  # modal hour of day
    support: int  # number of services with a front in this mode
    share_of_fronts: float  # fraction of all fronts belonging to the mode


def derive_topical_moments(
    signatures: List[PeakSignature],
    axis: TimeAxis,
    min_support_fraction: float = 0.25,
    merge_gap_hours: float = 2.0,
) -> List[DerivedMoment]:
    """Discover the recurring peak moments across all services.

    The paper *finds* (rather than assumes) that "peaks only appear at
    seven specific moments during the week".  This function reproduces
    that discovery step: all detected rising fronts are histogrammed by
    (day type, hour of day), adjacent busy hours are merged into modes,
    and modes supported by at least ``min_support_fraction`` of the
    services are reported.
    """
    if not signatures:
        raise ValueError("need at least one peak signature")
    if not 0 < min_support_fraction <= 1:
        raise ValueError(
            f"min_support_fraction must be in (0, 1], got {min_support_fraction}"
        )
    n_services = len(signatures)
    total_fronts = 0
    # (weekend, hour) -> set of service indices, count of peaks.  The
    # apex of each peak interval marks where the topical moment sits
    # (rising fronts precede it); apexes that are not local maxima of the
    # signal are diurnal-trend crossings and carry no moment.
    support: Dict[Tuple[bool, int], set] = {}
    counts: Dict[Tuple[bool, int], int] = {}
    for idx, signature in enumerate(signatures):
        for moment in signature.moment_bins:
            key = (axis.is_weekend_bin(moment), int(axis.hour_of_bin(moment)))
            support.setdefault(key, set()).add(idx)
            counts[key] = counts.get(key, 0) + 1
            total_fronts += 1
    if total_fronts == 0:
        return []

    min_support = min_support_fraction * n_services
    half_merge = max(1, int(round(merge_gap_hours / 2.0)))
    moments: List[DerivedMoment] = []
    for weekend in (False, True):
        by_hour = np.zeros(24)
        for (we, h), services in support.items():
            if we is weekend:
                by_hour[h] = len(services)
        # A moment is a local maximum of the support histogram with
        # enough service coverage; neighbours within the merge gap fold
        # into it.
        for h in range(24):
            if by_hour[h] < min_support:
                continue
            lo, hi = max(0, h - half_merge), min(24, h + half_merge + 1)
            window = by_hour[lo:hi]
            if by_hour[h] < window.max():
                continue
            if by_hour[h] == window.max() and np.argmax(window) + lo != h:
                continue  # ties resolve to the earliest hour
            services = set()
            fronts = 0
            weight = 0.0
            for hh in range(lo, hi):
                key = (weekend, hh)
                if key in support:
                    services |= support[key]
                    fronts += counts[key]
                    weight += counts[key] * (hh + 0.5)
            if not fronts or len(services) < min_support:
                continue
            moments.append(
                DerivedMoment(
                    weekend=weekend,
                    hour=weight / fronts,
                    support=len(services),
                    share_of_fronts=fronts / total_fronts,
                )
            )
    moments.sort(key=lambda m: m.support, reverse=True)
    return moments


__all__ = [
    "WINDOW_HALF_WIDTH_HOURS",
    "topical_windows",
    "classify_front",
    "PeakSignature",
    "peak_signature",
    "signature_matrix",
    "peak_intensities",
    "DerivedMoment",
    "derive_topical_moments",
]
