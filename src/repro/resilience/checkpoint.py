"""Atomic on-disk checkpointing of completed shard partials.

A sharded session-level build can take minutes at production scale; a
crash near the end should not force a from-scratch rerun.  Completed
:class:`~repro.dataset.parallel.ShardResult` partials spill to a
checkpoint directory as they arrive, and a resumed build loads them
instead of re-running the shard — preserving the ``(seed, n_shards)``
determinism contract because a shard's partial is bit-identical
whether it was just computed or round-tripped through the checkpoint.

Format (``repro-ckpt/1``): one file per shard,
``shard-<index>.ckpt``, containing a pickled envelope::

    {"schema": "repro-ckpt/1", "run_key": <str>,
     "shard_index": <int>, "sha256": <hex>, "payload": <bytes>}

``payload`` is the pickled ``ShardResult``; ``sha256`` is its digest,
verified on load.  ``run_key`` binds the file to one build
configuration (seed, shard count, panel size, …) so a resume can never
silently merge partials from a different run.  Writes are crash-safe:
serialize to a temp file in the same directory, flush + ``fsync``,
then ``os.replace`` — a reader sees either the old file or the new
one, never a torn write.

A file that is missing, unreadable, damaged, or keyed to a different
run is *not* an error: :meth:`ShardCheckpoint.load` returns ``None``
and the shard simply runs again (the supervisor counts the discard).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.dataset.merge import read_envelope, write_envelope

#: Schema tag of the checkpoint envelope, bumped on layout change.
SCHEMA = "repro-ckpt/1"

_SUFFIX = ".ckpt"


class ShardCheckpoint:
    """One build's checkpoint directory, keyed to one run configuration."""

    def __init__(self, directory: Union[str, Path], run_key: str):
        if not run_key:
            raise ValueError("run_key must be a non-empty string")
        self.directory = Path(directory)
        self.run_key = run_key
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, shard_index: int) -> Path:
        if shard_index < 0:
            raise ValueError(
                f"shard_index must be >= 0, got {shard_index}"
            )
        return self.directory / f"shard-{shard_index:05d}{_SUFFIX}"

    def store(self, shard_index: int, result) -> Path:
        """Atomically persist one shard partial; returns the final path."""
        return write_envelope(
            self.path_for(shard_index), result, SCHEMA, self.run_key, shard_index
        )

    def load(self, shard_index: int):
        """The checkpointed partial, or ``None`` if absent or unusable.

        Never raises on a bad file — a damaged checkpoint is equivalent
        to no checkpoint (the shard re-runs), which is the graceful
        path; the supervisor counts discards so they stay visible.
        """
        return read_envelope(
            self.path_for(shard_index), SCHEMA, self.run_key, shard_index
        )

    def present_indices(self) -> List[int]:
        """Shard indices with a checkpoint file on disk, sorted."""
        indices = []
        for path in sorted(self.directory.glob(f"shard-*{_SUFFIX}")):
            stem = path.name[len("shard-") : -len(_SUFFIX)]
            if stem.isdigit():
                indices.append(int(stem))
        return indices


def run_key_for(
    seed: int, n_shards: int, n_subscribers: int, n_services: int
) -> str:
    """The checkpoint run key of one session-level build configuration.

    Everything that changes shard content must be in the key; execution
    details (``n_workers``, retry policy) must not be.
    """
    return (
        f"session/seed={int(seed)}/shards={int(n_shards)}"
        f"/subscribers={int(n_subscribers)}/services={int(n_services)}"
    )


__all__ = ["SCHEMA", "ShardCheckpoint", "run_key_for"]
