"""Coverage accounting for degraded builds.

When the supervisor exhausts retries under the ``quarantine`` policy,
the build completes without the failed shards — exactly how the paper's
own week treats its excluded maintenance window (§2): the dataset is
still usable, but its coverage is no longer the full panel.  This
module makes that degradation *visible and quantified* instead of
silent: a :class:`CoverageReport` records what was lost, stamps the
dataset's ``meta`` with ``coverage.*`` keys, and produces the
``coverage`` block the fidelity scorecard carries.

Per-subscriber denominators need no correction: the aggregator counts
distinct subscribers per commune from surviving shards only, so
``per_subscriber_volumes`` and friends are already normalized to the
*surviving* coverage.  National absolute totals, by contrast, scale
with coverage — consumers comparing them against full-panel targets
must rescale by ``1 / fraction`` (exposed as :attr:`CoverageReport.
scale`) or, better, treat a degraded run as degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class CoverageReport:
    """What one build covered, and what it lost."""

    #: Shards the plan contained.
    n_shards: int
    #: Shard indices quarantined after retry exhaustion, sorted.
    quarantined: List[int] = field(default_factory=list)
    #: Subscribers in the full panel.
    subscribers_total: int = 0
    #: Subscribers on quarantined shards (lost from the dataset).
    subscribers_lost: int = 0
    #: Probe records dropped inside accepted shards (outage windows).
    records_dropped: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.subscribers_lost > self.subscribers_total:
            raise ValueError(
                f"subscribers_lost {self.subscribers_lost} exceeds "
                f"subscribers_total {self.subscribers_total}"
            )

    @property
    def fraction(self) -> float:
        """Surviving fraction of the subscriber panel (1.0 = full)."""
        if self.subscribers_total == 0:
            return 1.0
        return 1.0 - self.subscribers_lost / self.subscribers_total

    @property
    def scale(self) -> float:
        """Factor rescaling surviving totals to full-panel estimates."""
        fraction = self.fraction
        if fraction <= 0.0:
            raise ValueError(
                "coverage fraction is 0 — nothing survived to rescale"
            )
        return 1.0 / fraction

    @property
    def degraded(self) -> bool:
        """Whether anything at all was lost."""
        return bool(self.quarantined) or self.records_dropped > 0

    def meta(self) -> Dict[str, float]:
        """The ``coverage.*`` keys stamped into ``dataset.meta``.

        All-float so they survive the dataset's npz round trip; stamped
        on every supervised build (full-coverage runs carry
        ``fraction == 1.0``) so a clean run and a recovered run remain
        byte-identical.
        """
        return {
            "coverage.fraction": float(self.fraction),
            "coverage.n_shards": float(self.n_shards),
            "coverage.quarantined_shards": float(len(self.quarantined)),
            "coverage.subscribers_total": float(self.subscribers_total),
            "coverage.subscribers_lost": float(self.subscribers_lost),
            "coverage.records_dropped": float(self.records_dropped),
        }

    def block(self) -> Dict[str, Any]:
        """The JSON ``coverage`` block of a fidelity scorecard."""
        return {
            "fraction": float(self.fraction),
            "n_shards": int(self.n_shards),
            "quarantined_shards": sorted(int(i) for i in self.quarantined),
            "subscribers_total": int(self.subscribers_total),
            "subscribers_lost": int(self.subscribers_lost),
            "records_dropped": int(self.records_dropped),
            "degraded": self.degraded,
        }


def coverage_block_from_meta(meta: Dict[str, float]) -> Dict[str, Any]:
    """Rebuild a scorecard ``coverage`` block from ``dataset.meta``.

    The inverse of :meth:`CoverageReport.meta` as far as the flattened
    keys allow (individual quarantined indices are not stored in meta,
    only their count).  Datasets from before the resilience layer carry
    no ``coverage.*`` keys; they read back as full coverage.
    """
    n_shards = int(meta.get("coverage.n_shards", 1.0))
    quarantined_count = int(meta.get("coverage.quarantined_shards", 0.0))
    return {
        "fraction": float(meta.get("coverage.fraction", 1.0)),
        "n_shards": max(n_shards, 1),
        "quarantined_shards": quarantined_count,
        "subscribers_total": int(meta.get("coverage.subscribers_total", 0.0)),
        "subscribers_lost": int(meta.get("coverage.subscribers_lost", 0.0)),
        "records_dropped": int(meta.get("coverage.records_dropped", 0.0)),
        "degraded": quarantined_count > 0
        or int(meta.get("coverage.records_dropped", 0.0)) > 0,
    }


__all__ = ["CoverageReport", "coverage_block_from_meta"]
