"""Deterministic fault injection for the sharded measurement chain.

Nationwide capture pipelines treat partial failure as a normal
operating condition: the paper excludes a maintenance window from its
week (§2), and probe outages, crashed collectors, and dropped GTP/DPI
records are everyday events at an operator.  This module makes every
such failure a *reproducible test fixture*: a :class:`FaultPlan` maps
``(shard_index, attempt)`` to the faults that fire there, so a failure
scenario is replayed bit-identically on every run.

Fault classes (:data:`FAULT_KINDS`):

``worker_exception``
    The shard worker raises :class:`InjectedWorkerError` at the
    addressed stage — the "collector process crashed with a traceback"
    case.
``worker_hang``
    In a worker process the shard blocks forever (a stuck capture); the
    supervisor's watchdog must time it out and reclaim the worker.  In
    in-process execution a hang cannot be preempted, so the injector
    raises :class:`InjectedHangError`, which the supervisor accounts as
    the same timeout-class failure.
``corrupt_partial``
    The shard's :class:`~repro.dataset.parallel.ShardResult` comes back
    damaged (NaN cells, negative byte totals) — the "truncated/garbled
    capture file" case.  Parent-side validation must catch it.
``drop_records``
    A deterministic fraction of the shard's probe records never reaches
    aggregation — the "probe outage window" case.  The shard stays
    usable but under-covered, and reports the loss.

Plans are either written explicitly (a list of :class:`FaultSpec`) or
sampled from a seed with :meth:`FaultPlan.sample`, which draws one
spawned RNG stream per fault kind so scenarios are decorrelated and
stable under changes to the other kinds' rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._rng import SeedLike, as_generator, spawn

#: The closed set of injectable fault kinds.
FAULT_KINDS = (
    "worker_exception",
    "worker_hang",
    "corrupt_partial",
    "drop_records",
)

#: Pipeline stages a fault can address inside one shard run.
FAULT_STAGES = ("generate", "aggregate", "result")


class InjectedWorkerError(RuntimeError):
    """Raised inside a shard worker by a ``worker_exception`` fault."""


class InjectedHangError(RuntimeError):
    """In-process stand-in for a ``worker_hang`` fault.

    A real hang only exists in a worker process (the supervisor's
    watchdog kills it); in-process execution surfaces the same scenario
    synchronously so both paths exercise the identical recovery logic.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, addressed by ``(shard_index, attempt)``."""

    kind: str
    shard_index: int
    attempt: int = 0
    stage: str = "generate"
    #: Fraction of probe records dropped (``drop_records`` only).
    drop_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.stage not in FAULT_STAGES:
            raise ValueError(
                f"unknown fault stage {self.stage!r}; expected one of "
                f"{FAULT_STAGES}"
            )
        if self.shard_index < 0:
            raise ValueError(
                f"shard_index must be >= 0, got {self.shard_index}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if not 0.0 < self.drop_fraction <= 1.0:
            raise ValueError(
                f"drop_fraction must be in (0, 1], got {self.drop_fraction}"
            )


class FaultPlan:
    """A reproducible failure scenario for one sharded build.

    Immutable after construction; lookup is by ``(shard_index,
    attempt)`` so a fault injected at attempt 0 does not re-fire on the
    retry — the canonical retry-success fixture.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()):
        self._faults: Tuple[FaultSpec, ...] = tuple(faults)
        self._by_address: Dict[Tuple[int, int], List[FaultSpec]] = {}
        for fault in self._faults:
            key = (fault.shard_index, fault.attempt)
            self._by_address.setdefault(key, []).append(fault)

    @property
    def faults(self) -> Tuple[FaultSpec, ...]:
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def faults_for(
        self, shard_index: int, attempt: int
    ) -> Tuple[FaultSpec, ...]:
        """Every fault addressed to one ``(shard_index, attempt)``."""
        return tuple(self._by_address.get((shard_index, attempt), ()))

    def describe(self) -> List[str]:
        """One human-readable line per fault, in declaration order."""
        return [
            f"{f.kind} @ shard {f.shard_index} attempt {f.attempt} "
            f"stage {f.stage}"
            for f in self._faults
        ]

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "FaultPlan":
        """Build a plan from ``kind:shard[:attempt[:stage]]`` strings.

        The CLI's ``--fault`` flag format; e.g.
        ``worker_exception:2``, ``drop_records:0:1:aggregate``.
        """
        faults = []
        for text in specs:
            parts = text.split(":")
            if not 2 <= len(parts) <= 4:
                raise ValueError(
                    f"fault spec {text!r} is not kind:shard[:attempt[:stage]]"
                )
            kind = parts[0]
            shard_index = int(parts[1])
            attempt = int(parts[2]) if len(parts) > 2 else 0
            if len(parts) > 3:
                stage = parts[3]
            else:
                stage = "aggregate" if kind == "drop_records" else "generate"
            faults.append(
                FaultSpec(
                    kind=kind,
                    shard_index=shard_index,
                    attempt=attempt,
                    stage=stage,
                )
            )
        return cls(faults)

    @classmethod
    def sample(
        cls,
        seed: SeedLike,
        n_shards: int,
        rates: Optional[Dict[str, float]] = None,
        max_attempts: int = 1,
        drop_fraction: float = 0.25,
    ) -> "FaultPlan":
        """Sample a random-but-reproducible scenario from ``seed``.

        ``rates`` maps fault kind to the per-``(shard, attempt)``
        injection probability; kinds not listed are never injected.
        Each kind draws from its own spawned stream, so adding or
        re-rating one kind never perturbs the scenarios of the others.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        rates = dict(rates or {})
        for kind in sorted(rates):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in rates")
            if not 0.0 <= rates[kind] <= 1.0:
                raise ValueError(
                    f"rate for {kind!r} must be in [0, 1], got {rates[kind]}"
                )
        parent = as_generator(seed)
        faults = []
        # Spawn in the fixed FAULT_KINDS order so each kind's stream is
        # stable regardless of which kinds carry a nonzero rate.
        streams = {
            kind: spawn(parent, f"faults.{kind}") for kind in FAULT_KINDS
        }
        for kind in FAULT_KINDS:
            rate = rates.get(kind, 0.0)
            stream = streams[kind]
            for shard_index in range(n_shards):
                for attempt in range(max_attempts):
                    if stream.random() < rate:
                        faults.append(
                            FaultSpec(
                                kind=kind,
                                shard_index=shard_index,
                                attempt=attempt,
                                stage=(
                                    "aggregate"
                                    if kind == "drop_records"
                                    else "generate"
                                ),
                                drop_fraction=drop_fraction,
                            )
                        )
        return cls(faults)


def fire_stage_faults(
    faults: Sequence[FaultSpec], stage: str, in_worker_process: bool
) -> None:
    """Raise/hang for exception- and hang-class faults at ``stage``.

    Called by the shard runner at each injection point.  A hang only
    really blocks inside a worker process (where the supervisor's
    watchdog and pool teardown can reclaim it); in-process it raises
    :class:`InjectedHangError` instead, which the supervisor maps to the
    same timeout failure kind.
    """
    for fault in faults:
        if fault.stage != stage:
            continue
        if fault.kind == "worker_exception":
            raise InjectedWorkerError(
                f"injected worker exception at stage {stage!r} "
                f"(shard {fault.shard_index}, attempt {fault.attempt})"
            )
        if fault.kind == "worker_hang":
            if in_worker_process:
                while True:  # reclaimed by the supervisor's pool teardown
                    time.sleep(0.25)
            raise InjectedHangError(
                f"injected hang at stage {stage!r} "
                f"(shard {fault.shard_index}, attempt {fault.attempt})"
            )


def drop_fraction_for(faults: Sequence[FaultSpec]) -> float:
    """The record-drop fraction addressed to this run (0.0 when none)."""
    for fault in faults:
        if fault.kind == "drop_records":
            return fault.drop_fraction
    return 0.0


def wants_corrupt_result(faults: Sequence[FaultSpec]) -> bool:
    """Whether a ``corrupt_partial`` fault addresses this run."""
    return any(fault.kind == "corrupt_partial" for fault in faults)


__all__ = [
    "FAULT_KINDS",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
    "InjectedHangError",
    "InjectedWorkerError",
    "drop_fraction_for",
    "fire_stage_faults",
    "wants_corrupt_result",
]
