"""Deterministic fault injection for the sharded measurement chain.

Nationwide capture pipelines treat partial failure as a normal
operating condition: the paper excludes a maintenance window from its
week (§2), and probe outages, crashed collectors, and dropped GTP/DPI
records are everyday events at an operator.  This module makes every
such failure a *reproducible test fixture*: a :class:`FaultPlan` maps
``(shard_index, attempt)`` to the faults that fire there, so a failure
scenario is replayed bit-identically on every run.

Fault classes (:data:`FAULT_KINDS`):

``worker_exception``
    The shard worker raises :class:`InjectedWorkerError` at the
    addressed stage — the "collector process crashed with a traceback"
    case.
``worker_hang``
    In a worker process the shard blocks forever (a stuck capture); the
    supervisor's watchdog must time it out and reclaim the worker.  In
    in-process execution a hang cannot be preempted, so the injector
    raises :class:`InjectedHangError`, which the supervisor accounts as
    the same timeout-class failure.
``corrupt_partial``
    The shard's :class:`~repro.dataset.parallel.ShardResult` comes back
    damaged (NaN cells, negative byte totals) — the "truncated/garbled
    capture file" case.  Parent-side validation must catch it.
``drop_records``
    A deterministic fraction of the shard's probe records never reaches
    aggregation — the "probe outage window" case.  The shard stays
    usable but under-covered, and reports the loss.

Plans are either written explicitly (a list of :class:`FaultSpec`) or
sampled from a seed with :meth:`FaultPlan.sample`, which draws one
spawned RNG stream per fault kind so scenarios are decorrelated and
stable under changes to the other kinds' rates.

Serve-path faults
-----------------

The serving layer (``docs/robustness.md``, "Serving under overload")
has its own fault vocabulary (:data:`SERVE_FAULT_KINDS`), addressed by
``stage × request_id`` instead of ``(shard_index, attempt)`` — a query
path has no shards, but every request carries a stable id:

``index_unavailable``
    The similarity/aggregation indexes are unreachable for this
    request — the engine must degrade (answer stale from cache where
    the family allows it) instead of crashing.
``slow_phase``
    The addressed phase takes ``delay_ms`` longer — the deadline-budget
    and saturation machinery must absorb it.
``corrupt_cache_entry``
    The cached bytes for this request's key are damaged in place.  The
    engine must *detect* the damage via the stored canonical-JSON
    digest, count it, evict, and recompute — a corrupt entry is never
    served.

Serve faults are sampled with :meth:`FaultPlan.sample_serve` and looked
up with :meth:`FaultPlan.serve_faults_for`; the two address spaces
coexist in one plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._rng import SeedLike, as_generator, spawn

#: The closed set of injectable build-path fault kinds.
FAULT_KINDS = (
    "worker_exception",
    "worker_hang",
    "corrupt_partial",
    "drop_records",
)

#: Pipeline stages a fault can address inside one shard run.
FAULT_STAGES = ("generate", "aggregate", "result")

#: The closed set of injectable serve-path fault kinds.
SERVE_FAULT_KINDS = (
    "index_unavailable",
    "slow_phase",
    "corrupt_cache_entry",
)

#: Request phases a serve fault can address (the engine's trace phases).
SERVE_FAULT_STAGES = ("parse", "cache_lookup", "index_scan", "encode")

#: Default phase each serve fault kind fires in when unaddressed.
_SERVE_DEFAULT_STAGE = {
    "index_unavailable": "index_scan",
    "slow_phase": "index_scan",
    "corrupt_cache_entry": "cache_lookup",
}

#: Default injected delay for ``slow_phase`` faults, milliseconds.
DEFAULT_SLOW_PHASE_DELAY_MS = 50.0


class InjectedWorkerError(RuntimeError):
    """Raised inside a shard worker by a ``worker_exception`` fault."""


class InjectedHangError(RuntimeError):
    """In-process stand-in for a ``worker_hang`` fault.

    A real hang only exists in a worker process (the supervisor's
    watchdog kills it); in-process execution surfaces the same scenario
    synchronously so both paths exercise the identical recovery logic.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Build-path kinds (:data:`FAULT_KINDS`) are addressed by
    ``(shard_index, attempt)``; serve-path kinds
    (:data:`SERVE_FAULT_KINDS`) by ``(request_id, attempt)`` with the
    stage drawn from :data:`SERVE_FAULT_STAGES`.
    """

    kind: str
    shard_index: int = 0
    attempt: int = 0
    stage: str = "generate"
    #: Fraction of probe records dropped (``drop_records`` only).
    drop_fraction: float = 0.25
    #: Serve-path address: the request this fault fires on.
    request_id: Optional[str] = None
    #: Injected extra latency (``slow_phase`` only), milliseconds.
    delay_ms: float = DEFAULT_SLOW_PHASE_DELAY_MS

    def __post_init__(self) -> None:
        if self.kind in SERVE_FAULT_KINDS:
            if self.request_id is None:
                raise ValueError(
                    f"serve fault {self.kind!r} must address a request_id"
                )
            if self.stage not in SERVE_FAULT_STAGES:
                raise ValueError(
                    f"serve fault stage {self.stage!r} must be one of "
                    f"{SERVE_FAULT_STAGES}"
                )
            if self.delay_ms < 0:
                raise ValueError(
                    f"delay_ms must be >= 0, got {self.delay_ms}"
                )
        else:
            if self.kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {self.kind!r}; expected one of "
                    f"{FAULT_KINDS} or {SERVE_FAULT_KINDS}"
                )
            if self.request_id is not None:
                raise ValueError(
                    f"build fault {self.kind!r} cannot address a request_id"
                )
            if self.stage not in FAULT_STAGES:
                raise ValueError(
                    f"unknown fault stage {self.stage!r}; expected one of "
                    f"{FAULT_STAGES}"
                )
        if self.shard_index < 0:
            raise ValueError(
                f"shard_index must be >= 0, got {self.shard_index}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if not 0.0 < self.drop_fraction <= 1.0:
            raise ValueError(
                f"drop_fraction must be in (0, 1], got {self.drop_fraction}"
            )


class FaultPlan:
    """A reproducible failure scenario for one sharded build.

    Immutable after construction; lookup is by ``(shard_index,
    attempt)`` so a fault injected at attempt 0 does not re-fire on the
    retry — the canonical retry-success fixture.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()):
        self._faults: Tuple[FaultSpec, ...] = tuple(faults)
        self._by_address: Dict[Tuple[int, int], List[FaultSpec]] = {}
        self._by_request: Dict[Tuple[str, int], List[FaultSpec]] = {}
        for fault in self._faults:
            if fault.request_id is not None:
                request_key = (fault.request_id, fault.attempt)
                self._by_request.setdefault(request_key, []).append(fault)
            else:
                key = (fault.shard_index, fault.attempt)
                self._by_address.setdefault(key, []).append(fault)

    @property
    def faults(self) -> Tuple[FaultSpec, ...]:
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def faults_for(
        self, shard_index: int, attempt: int
    ) -> Tuple[FaultSpec, ...]:
        """Every build fault addressed to one ``(shard_index, attempt)``."""
        return tuple(self._by_address.get((shard_index, attempt), ()))

    def serve_faults_for(
        self,
        request_id: str,
        attempt: int = 0,
        stage: Optional[str] = None,
    ) -> Tuple[FaultSpec, ...]:
        """Every serve fault addressed to ``(request_id, attempt)``.

        ``stage`` narrows to faults firing in one request phase.  Like
        the build-path lookup, a fault injected at attempt 0 does not
        re-fire on the retry — the retrying client's success fixture.
        """
        faults = self._by_request.get((request_id, attempt), ())
        if stage is not None:
            faults = [f for f in faults if f.stage == stage]
        return tuple(faults)

    def describe(self) -> List[str]:
        """One human-readable line per fault, in declaration order."""
        lines = []
        for f in self._faults:
            if f.request_id is not None:
                lines.append(
                    f"{f.kind} @ request {f.request_id} attempt "
                    f"{f.attempt} stage {f.stage}"
                )
            else:
                lines.append(
                    f"{f.kind} @ shard {f.shard_index} attempt {f.attempt} "
                    f"stage {f.stage}"
                )
        return lines

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "FaultPlan":
        """Build a plan from ``kind:address[:attempt[:stage]]`` strings.

        The CLI's ``--fault`` flag format.  For build kinds the address
        is a shard index (``worker_exception:2``,
        ``drop_records:0:1:aggregate``); for serve kinds it is a request
        id (``index_unavailable:req-000005``,
        ``slow_phase:req-000012:0:encode``).
        """
        faults = []
        for text in specs:
            parts = text.split(":")
            if not 2 <= len(parts) <= 4:
                raise ValueError(
                    f"fault spec {text!r} is not "
                    f"kind:address[:attempt[:stage]]"
                )
            kind = parts[0]
            attempt = int(parts[2]) if len(parts) > 2 else 0
            if kind in SERVE_FAULT_KINDS:
                stage = (
                    parts[3]
                    if len(parts) > 3
                    else _SERVE_DEFAULT_STAGE[kind]
                )
                faults.append(
                    FaultSpec(
                        kind=kind,
                        request_id=parts[1],
                        attempt=attempt,
                        stage=stage,
                    )
                )
                continue
            shard_index = int(parts[1])
            if len(parts) > 3:
                stage = parts[3]
            else:
                stage = "aggregate" if kind == "drop_records" else "generate"
            faults.append(
                FaultSpec(
                    kind=kind,
                    shard_index=shard_index,
                    attempt=attempt,
                    stage=stage,
                )
            )
        return cls(faults)

    @classmethod
    def sample_serve(
        cls,
        seed: SeedLike,
        request_ids: Sequence[str],
        rates: Optional[Dict[str, float]] = None,
        delay_ms: float = DEFAULT_SLOW_PHASE_DELAY_MS,
    ) -> "FaultPlan":
        """Sample a reproducible serve-path scenario over a schedule.

        ``rates`` maps serve fault kind to the per-request injection
        probability.  Mirrors :meth:`sample`: one spawned stream per
        kind in the fixed :data:`SERVE_FAULT_KINDS` order, so re-rating
        one kind never perturbs the others' scenarios.
        """
        rates = dict(rates or {})
        for kind in sorted(rates):
            if kind not in SERVE_FAULT_KINDS:
                raise ValueError(
                    f"unknown serve fault kind {kind!r} in rates"
                )
            if not 0.0 <= rates[kind] <= 1.0:
                raise ValueError(
                    f"rate for {kind!r} must be in [0, 1], got {rates[kind]}"
                )
        parent = as_generator(seed)
        streams = {
            kind: spawn(parent, f"faults.serve.{kind}")
            for kind in SERVE_FAULT_KINDS
        }
        faults = []
        for kind in SERVE_FAULT_KINDS:
            rate = rates.get(kind, 0.0)
            stream = streams[kind]
            for request_id in request_ids:
                if stream.random() < rate:
                    faults.append(
                        FaultSpec(
                            kind=kind,
                            request_id=request_id,
                            stage=_SERVE_DEFAULT_STAGE[kind],
                            delay_ms=delay_ms,
                        )
                    )
        return cls(faults)

    @classmethod
    def sample(
        cls,
        seed: SeedLike,
        n_shards: int,
        rates: Optional[Dict[str, float]] = None,
        max_attempts: int = 1,
        drop_fraction: float = 0.25,
    ) -> "FaultPlan":
        """Sample a random-but-reproducible scenario from ``seed``.

        ``rates`` maps fault kind to the per-``(shard, attempt)``
        injection probability; kinds not listed are never injected.
        Each kind draws from its own spawned stream, so adding or
        re-rating one kind never perturbs the scenarios of the others.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        rates = dict(rates or {})
        for kind in sorted(rates):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in rates")
            if not 0.0 <= rates[kind] <= 1.0:
                raise ValueError(
                    f"rate for {kind!r} must be in [0, 1], got {rates[kind]}"
                )
        parent = as_generator(seed)
        faults = []
        # Spawn in the fixed FAULT_KINDS order so each kind's stream is
        # stable regardless of which kinds carry a nonzero rate.
        streams = {
            kind: spawn(parent, f"faults.{kind}") for kind in FAULT_KINDS
        }
        for kind in FAULT_KINDS:
            rate = rates.get(kind, 0.0)
            stream = streams[kind]
            for shard_index in range(n_shards):
                for attempt in range(max_attempts):
                    if stream.random() < rate:
                        faults.append(
                            FaultSpec(
                                kind=kind,
                                shard_index=shard_index,
                                attempt=attempt,
                                stage=(
                                    "aggregate"
                                    if kind == "drop_records"
                                    else "generate"
                                ),
                                drop_fraction=drop_fraction,
                            )
                        )
        return cls(faults)


def fire_stage_faults(
    faults: Sequence[FaultSpec], stage: str, in_worker_process: bool
) -> None:
    """Raise/hang for exception- and hang-class faults at ``stage``.

    Called by the shard runner at each injection point.  A hang only
    really blocks inside a worker process (where the supervisor's
    watchdog and pool teardown can reclaim it); in-process it raises
    :class:`InjectedHangError` instead, which the supervisor maps to the
    same timeout failure kind.
    """
    for fault in faults:
        if fault.stage != stage:
            continue
        if fault.kind == "worker_exception":
            raise InjectedWorkerError(
                f"injected worker exception at stage {stage!r} "
                f"(shard {fault.shard_index}, attempt {fault.attempt})"
            )
        if fault.kind == "worker_hang":
            if in_worker_process:
                while True:  # reclaimed by the supervisor's pool teardown
                    time.sleep(0.25)
            raise InjectedHangError(
                f"injected hang at stage {stage!r} "
                f"(shard {fault.shard_index}, attempt {fault.attempt})"
            )


def drop_fraction_for(faults: Sequence[FaultSpec]) -> float:
    """The record-drop fraction addressed to this run (0.0 when none)."""
    for fault in faults:
        if fault.kind == "drop_records":
            return fault.drop_fraction
    return 0.0


def wants_corrupt_result(faults: Sequence[FaultSpec]) -> bool:
    """Whether a ``corrupt_partial`` fault addresses this run."""
    return any(fault.kind == "corrupt_partial" for fault in faults)


__all__ = [
    "DEFAULT_SLOW_PHASE_DELAY_MS",
    "FAULT_KINDS",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
    "InjectedHangError",
    "InjectedWorkerError",
    "SERVE_FAULT_KINDS",
    "SERVE_FAULT_STAGES",
    "drop_fraction_for",
    "fire_stage_faults",
    "wants_corrupt_result",
]
