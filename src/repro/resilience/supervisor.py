"""The supervised shard executor: retries, watchdog, checkpoint, degrade.

Replaces the bare ``pool.map`` of :func:`repro.dataset.parallel.
execute_shards` for production builds.  Every shard attempt runs under
supervision:

- **typed failures** — an attempt that raises, times out, comes back
  corrupt, or reports dropped records becomes a :class:`ShardFailure`
  with a stable ``kind``, never a stack trace that kills the build;
- **bounded deterministic retries** — each shard gets
  ``policy.max_attempts`` tries; whether and what to retry depends only
  on attempt counts, and the backoff schedule is a pure function of
  ``(seed, shard_index, attempt)`` (:mod:`repro.resilience.retry`);
- **watchdog + worker recovery** — in pooled execution a per-shard
  deadline times out hung workers, dead workers (nonzero exit codes)
  are detected, and the pool is torn down and rebuilt before the next
  round so lost workers never wedge the build;
- **checkpoint/resume** — completed partials spill to an atomic
  checkpoint (:mod:`repro.resilience.checkpoint`) and a resumed build
  loads them instead of re-running;
- **graceful degradation** — after exhaustion, ``policy.on_exhausted``
  either raises a structured :class:`ShardExecutionError` (``"fail"``)
  or quarantines the shard (``"quarantine"``) so the build completes
  with accounted, visible coverage loss.

Determinism: an attempt of shard ``i`` always restores the shard's
pre-execution RNG state (:func:`repro.dataset.parallel.
run_shard_attempt`), so retried, resumed, and undisturbed builds
produce bit-identical partials.  All ``resilience.*`` metrics and
retry/quarantine events are emitted on the parent after execution, in
shard-index order, so observability output never depends on worker
count or completion order.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.dataset.merge import SpilledShardResult, SpillStore, partial_nbytes
from repro.dataset.parallel import (
    ShardPlan,
    ShardResult,
    WorkerContext,
    _init_worker,
    _worker_run_shard,
    run_shard_attempt,
)
from repro.obs import clock
from repro.resilience.checkpoint import ShardCheckpoint
from repro.resilience.faults import (
    FaultPlan,
    InjectedHangError,
)
from repro.resilience.retry import RetryPolicy

#: Result-poll interval of the pooled watchdog, seconds.  Wall-clock
#: (via the sanctioned obs clock) is only *measured* here — it decides
#: when to give up on a worker, never what the data contains.
POLL_S = 0.05

#: The closed set of failure kinds a shard attempt can be charged with.
FAILURE_KINDS = (
    "exception",
    "timeout",
    "crash",
    "corrupt",
    "dropped_records",
)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, typed and addressable."""

    shard_index: int
    attempt: int
    kind: str
    message: str

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )


@dataclass
class ShardOutcome:
    """Everything that happened to one shard across its attempts."""

    shard_index: int
    result: Optional[ShardResult] = None
    attempts_executed: int = 0
    failures: List[ShardFailure] = field(default_factory=list)
    from_checkpoint: bool = False
    quarantined: bool = False


class ShardExecutionError(RuntimeError):
    """Raised under the ``fail`` policy when a shard exhausts retries."""

    def __init__(self, failures: Sequence[ShardFailure]):
        self.failures = list(failures)
        self.shard_indices = sorted({f.shard_index for f in self.failures})
        lines = [
            f"shard {f.shard_index} attempt {f.attempt}: "
            f"[{f.kind}] {f.message}"
            for f in self.failures
        ]
        super().__init__(
            f"{len(self.shard_indices)} shard(s) failed after retry "
            "exhaustion:\n" + "\n".join(lines)
        )


@dataclass
class ExecutionReport:
    """The supervised executor's full account of one build."""

    n_shards: int
    policy: RetryPolicy
    outcomes: List[ShardOutcome]
    checkpoint_writes: int = 0
    checkpoint_discards: int = 0
    faults_injected: int = 0
    spills: int = 0
    resident_partial_bytes: int = 0

    @property
    def partials(self) -> List[Any]:
        """Accepted partials in shard-index order, *without* loading.

        Entries are either resident :class:`ShardResult` objects or
        compact :class:`SpilledShardResult` handles; both expose the
        accounting scalars (``sessions_generated``,
        ``records_dropped``, …) and ``obs_export``, so callers that only
        need bookkeeping never touch the disk.
        """
        return [
            o.result
            for o in self.outcomes
            if o.result is not None and not o.quarantined
        ]

    @property
    def results(self) -> List[ShardResult]:
        """Accepted shard partials, materialized, in shard-index order.

        Loads every spilled partial back into memory at once — fine for
        tests and small builds; bounded-memory callers should iterate
        :meth:`iter_results` instead.
        """
        return list(self.iter_results())

    def iter_results(self):
        """Accepted partials one at a time, loading spills lazily.

        The bounded-memory merge path: only one spilled partial is
        resident beyond the caller's own references at any moment.
        """
        for partial in self.partials:
            if isinstance(partial, SpilledShardResult):
                yield partial.load()
            else:
                yield partial

    @property
    def quarantined_indices(self) -> List[int]:
        return [o.shard_index for o in self.outcomes if o.quarantined]

    @property
    def failures(self) -> List[ShardFailure]:
        """Every recorded failure, ordered by (shard_index, attempt)."""
        return [f for o in self.outcomes for f in o.failures]

    @property
    def attempts_executed(self) -> int:
        return sum(o.attempts_executed for o in self.outcomes)

    @property
    def retries(self) -> int:
        return sum(max(0, o.attempts_executed - 1) for o in self.outcomes)

    @property
    def checkpoint_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_checkpoint)

    @property
    def records_dropped(self) -> int:
        """Records lost inside accepted (non-quarantined) shards."""
        return sum(
            o.result.records_dropped
            for o in self.outcomes
            if o.result is not None and not o.quarantined
        )

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined_indices) or self.records_dropped > 0


def validate_shard_result(
    result: Any, plan: ShardPlan, shard_index: int
) -> List[str]:
    """Integrity problems of one shard partial (empty list = sound).

    Catches the ``corrupt_partial`` fault class and any real torn or
    garbled partial (a damaged checkpoint payload, a worker that died
    mid-serialization): shape drift, non-finite cells, negative
    accounting.
    """
    problems: List[str] = []
    if not isinstance(result, ShardResult):
        return [f"not a ShardResult: {type(result).__name__}"]
    if result.shard_index != shard_index:
        problems.append(
            f"shard_index {result.shard_index} != expected {shard_index}"
        )
    n_communes = plan.country.n_communes
    n_head = len(plan.catalog.head_services)
    expected_shape = (n_communes, n_head, plan.axis.n_bins)
    for name, tensor, shape in (
        ("dl", result.dl, expected_shape),
        ("ul", result.ul, expected_shape),
        ("national_dl", result.national_dl, (len(plan.catalog),)),
        ("national_ul", result.national_ul, (len(plan.catalog),)),
    ):
        if tuple(tensor.shape) != shape:
            problems.append(
                f"{name} shape {tuple(tensor.shape)} != expected {shape}"
            )
            continue
        if not np.isfinite(tensor).all():
            problems.append(f"{name} contains non-finite cells")
        elif float(tensor.min(initial=0.0)) < 0.0:
            problems.append(f"{name} contains negative volumes")
    if result.total_bytes < 0.0:
        problems.append(f"negative total_bytes {result.total_bytes}")
    if result.unclassified_bytes < 0.0:
        problems.append(
            f"negative unclassified_bytes {result.unclassified_bytes}"
        )
    if result.records_ingested < 0:
        problems.append(f"negative records_ingested {result.records_ingested}")
    if len(result.users_seen) != n_communes:
        problems.append(
            f"users_seen covers {len(result.users_seen)} communes, "
            f"expected {n_communes}"
        )
    return problems


def _charge(
    outcome: ShardOutcome, attempt: int, kind: str, message: str
) -> ShardFailure:
    failure = ShardFailure(
        shard_index=outcome.shard_index,
        attempt=attempt,
        kind=kind,
        message=message,
    )
    outcome.failures.append(failure)
    return failure


def _retire(
    outcome: ShardOutcome,
    report: ExecutionReport,
    spill: Optional[SpillStore],
) -> None:
    """Settle an accepted partial's residency under the spill budget.

    Every accepted partial is charged against the resident budget; once
    the budget would be exceeded the partial goes to disk and only its
    compact handle stays (``budget_bytes=0`` spills everything).  The
    spilled bytes round-trip bit-identically, so residency is purely a
    memory decision — it can never change the merged dataset.
    """
    if spill is None:
        return
    nbytes = partial_nbytes(outcome.result)
    if report.resident_partial_bytes + nbytes > spill.budget_bytes:
        outcome.result = spill.spill(outcome.result)
        report.spills += 1
    else:
        report.resident_partial_bytes += nbytes


def _accept(
    outcome: ShardOutcome,
    result: ShardResult,
    attempt: int,
    plan: ShardPlan,
    checkpoint: Optional[ShardCheckpoint],
    report: ExecutionReport,
    attempts_left: bool,
    spill: Optional[SpillStore] = None,
) -> bool:
    """Validate one attempt's result; True when the shard is settled.

    A corrupt partial is always a failure.  Dropped records are retried
    while attempts remain; on the last attempt the result is kept and
    the loss accounted (degradation is the caller's policy decision).
    """
    problems = validate_shard_result(result, plan, outcome.shard_index)
    if problems:
        _charge(
            outcome, attempt, "corrupt",
            "corrupt shard partial: " + "; ".join(problems),
        )
        return False
    if result.records_dropped > 0 and attempts_left:
        _charge(
            outcome, attempt, "dropped_records",
            f"shard reported {result.records_dropped} dropped records",
        )
        return False
    outcome.result = result
    if checkpoint is not None:
        checkpoint.store(outcome.shard_index, result)
        report.checkpoint_writes += 1
    _retire(outcome, report, spill)
    return True


def _prefill_from_checkpoint(
    outcomes: List[ShardOutcome],
    plan: ShardPlan,
    checkpoint: Optional[ShardCheckpoint],
    report: ExecutionReport,
    spill: Optional[SpillStore] = None,
) -> None:
    if checkpoint is None:
        return
    for outcome in outcomes:
        loaded = checkpoint.load(outcome.shard_index)
        if loaded is None:
            # A file that exists but would not load is a damaged or
            # mismatched checkpoint: discarded, not merely absent.
            if checkpoint.path_for(outcome.shard_index).exists():
                report.checkpoint_discards += 1
            continue
        if validate_shard_result(loaded, plan, outcome.shard_index):
            report.checkpoint_discards += 1
            continue
        outcome.result = loaded
        outcome.from_checkpoint = True
        _retire(outcome, report, spill)


class _SupervisedPool:
    """A rebuildable fork pool bound to one worker context.

    Workers are initialized with the shard context via the pool
    initializer — the parent's module state is never touched — and a
    rebuild after a crash or hang re-forks workers from the identical
    context, so recovery cannot perturb determinism.
    """

    def __init__(self, mp_context, processes: int, context: WorkerContext):
        self._mp_context = mp_context
        self._processes = processes
        self._context = context
        self._pool = None

    def pool(self):
        if self._pool is None:
            self._pool = self._mp_context.Pool(
                processes=self._processes,
                initializer=_init_worker,
                initargs=(self._context,),
            )
        return self._pool

    def dead_workers(self) -> List[int]:
        """Exit codes of workers that died abnormally (best effort)."""
        if self._pool is None:
            return []
        codes = []
        for process in list(getattr(self._pool, "_pool", [])):
            code = process.exitcode
            if code is not None and code != 0:
                codes.append(code)
        return codes

    def rebuild(self) -> None:
        self.terminate()

    def terminate(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def _collect_pooled(
    supervised: _SupervisedPool,
    waiting: Dict[int, Any],
    attempts: Dict[int, int],
    outcomes: Dict[int, ShardOutcome],
    policy: RetryPolicy,
) -> Tuple[Dict[int, ShardResult], bool]:
    """Gather one round of async results, timing out hung workers.

    Returns ``(results_by_shard, pool_broken)``.  The watchdog budget
    runs from the moment this round starts waiting on a shard — a
    deliberate over-approximation (queue time counts) that can only
    delay a timeout verdict, never corrupt data.
    """
    gathered: Dict[int, ShardResult] = {}
    broken = False
    for shard_index in sorted(waiting):
        handle = waiting[shard_index]
        attempt = attempts[shard_index]
        deadline = (
            None
            if policy.timeout_s is None
            else clock.now_s() + policy.timeout_s
        )
        while True:
            try:
                gathered[shard_index] = handle.get(POLL_S)
                break
            except multiprocessing.TimeoutError:
                dead = supervised.dead_workers()
                if dead:
                    _charge(
                        outcomes[shard_index], attempt, "crash",
                        f"worker process died (exit codes {dead}) before "
                        "returning this shard",
                    )
                    broken = True
                    break
                if deadline is not None and clock.now_s() >= deadline:
                    _charge(
                        outcomes[shard_index], attempt, "timeout",
                        f"shard attempt exceeded the {policy.timeout_s}s "
                        "watchdog",
                    )
                    broken = True
                    break
            except InjectedHangError as exc:
                _charge(outcomes[shard_index], attempt, "timeout", str(exc))
                break
            except Exception as exc:  # worker raised: typed, not fatal
                _charge(
                    outcomes[shard_index], attempt, "exception",
                    f"{type(exc).__name__}: {exc}",
                )
                break
    return gathered, broken


def execute_shards_supervised(
    plan: ShardPlan,
    n_workers: int,
    policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional[ShardCheckpoint] = None,
    seed: int = 0,
    resume: bool = True,
    spill: Optional[SpillStore] = None,
) -> ExecutionReport:
    """Run every shard under supervision; see the module docstring.

    ``seed`` keys the deterministic backoff schedule only — shard
    content comes from the plan's pre-spawned RNG streams, exactly as
    in the bare executor.  With ``resume=False`` an existing checkpoint
    directory is written to but never read, so a build can refresh its
    checkpoints from scratch.  With ``spill`` set, accepted partials
    beyond the store's resident budget go to disk and the report holds
    compact handles (see :meth:`ExecutionReport.iter_results`).
    """
    if policy is None:
        policy = RetryPolicy()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    n_shards = plan.n_shards
    outcomes = [ShardOutcome(shard_index=i) for i in range(n_shards)]
    report = ExecutionReport(
        n_shards=n_shards, policy=policy, outcomes=outcomes
    )
    if resume:
        _prefill_from_checkpoint(outcomes, plan, checkpoint, report, spill)
    pending = [o.shard_index for o in outcomes if o.result is None]

    context = WorkerContext.for_plan(plan, fault_plan=fault_plan)
    if pending:
        mp_context = None
        if n_workers > 1 and len(pending) > 1:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:
                mp_context = None
        if mp_context is None:
            _run_in_process(
                context, pending, outcomes, plan, policy, checkpoint,
                report, seed, spill,
            )
        else:
            _run_pooled(
                context, mp_context, min(n_workers, len(pending)), pending,
                outcomes, plan, policy, checkpoint, report, seed, spill,
            )
    assert _parent_context_clean(), (
        "worker context leaked into the parent process"
    )

    _settle_exhausted(outcomes, policy)
    if fault_plan is not None:
        report.faults_injected = sum(
            len(fault_plan.faults_for(o.shard_index, a))
            for o in outcomes
            for a in range(o.attempts_executed)
        )
    _emit_observability(report)
    return report


def _parent_context_clean() -> bool:
    from repro.dataset import parallel

    return parallel._WORKER_CONTEXT is None


def _run_in_process(
    context: WorkerContext,
    pending: List[int],
    outcomes: List[ShardOutcome],
    plan: ShardPlan,
    policy: RetryPolicy,
    checkpoint: Optional[ShardCheckpoint],
    report: ExecutionReport,
    seed: int,
    spill: Optional[SpillStore] = None,
) -> None:
    """Serial supervision: the fallback and the ``n_workers=1`` path.

    A shard cannot be preempted in-process, so the watchdog cannot fire
    mid-attempt; injected hangs surface synchronously as
    :class:`InjectedHangError` and are charged as the same ``timeout``
    failure kind the pooled watchdog uses.
    """
    for shard_index in pending:
        outcome = outcomes[shard_index]
        for attempt in range(policy.max_attempts):
            _sleep_backoff(policy, seed, shard_index, attempt)
            outcome.attempts_executed += 1
            attempts_left = attempt + 1 < policy.max_attempts
            try:
                result = run_shard_attempt(
                    context, shard_index, attempt, in_worker=False
                )
            except InjectedHangError as exc:
                _charge(outcome, attempt, "timeout", str(exc))
                continue
            except Exception as exc:
                _charge(
                    outcome, attempt, "exception",
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            if _accept(
                outcome, result, attempt, plan, checkpoint, report,
                attempts_left, spill,
            ):
                break


def _run_pooled(
    context: WorkerContext,
    mp_context,
    processes: int,
    pending: List[int],
    outcomes: List[ShardOutcome],
    plan: ShardPlan,
    policy: RetryPolicy,
    checkpoint: Optional[ShardCheckpoint],
    report: ExecutionReport,
    seed: int,
    spill: Optional[SpillStore] = None,
) -> None:
    """Round-based pooled supervision with watchdog and pool rebuild."""
    supervised = _SupervisedPool(mp_context, processes, context)
    attempts = {i: 0 for i in pending}
    outcome_map = {o.shard_index: o for o in outcomes}
    try:
        while pending:
            _sleep_backoff(
                policy, seed, pending[0], attempts[pending[0]]
            )
            pool = supervised.pool()
            waiting = {
                i: pool.apply_async(_worker_run_shard, ((i, attempts[i]),))
                for i in pending
            }
            for i in pending:
                outcome_map[i].attempts_executed += 1
            gathered, broken = _collect_pooled(
                supervised, waiting, attempts, outcome_map, policy
            )
            if broken:
                supervised.rebuild()
            next_pending = []
            for shard_index in pending:
                outcome = outcome_map[shard_index]
                attempt = attempts[shard_index]
                attempts_left = attempt + 1 < policy.max_attempts
                settled = shard_index in gathered and _accept(
                    outcome, gathered[shard_index], attempt, plan,
                    checkpoint, report, attempts_left, spill,
                )
                if not settled and attempts_left:
                    attempts[shard_index] = attempt + 1
                    next_pending.append(shard_index)
            pending = next_pending
    finally:
        supervised.terminate()


def _sleep_backoff(
    policy: RetryPolicy, seed: int, shard_index: int, attempt: int
) -> None:
    pause = policy.backoff_s(seed, shard_index, attempt)
    if pause > 0.0:
        time.sleep(pause)


def _settle_exhausted(
    outcomes: List[ShardOutcome], policy: RetryPolicy
) -> None:
    """Apply the degradation policy to shards that never settled."""
    exhausted = [
        o for o in outcomes if o.result is None and o.failures
    ]
    # A shard whose final attempt only *dropped records* kept its last
    # result in _accept (attempts_left was False), so it is not here —
    # its loss is accounted through ExecutionReport.records_dropped.
    if not exhausted:
        return
    if policy.on_exhausted == "fail":
        raise ShardExecutionError(
            [f for o in exhausted for f in o.failures]
        )
    for outcome in exhausted:
        outcome.quarantined = True


def _emit_observability(report: ExecutionReport) -> None:
    """Counters + structured events, in deterministic shard order.

    Called once on the parent after execution settles, so the emitted
    stream is a pure function of the supervision history — identical
    for any worker count and any completion interleaving.
    """
    obs.add("resilience.attempts", report.attempts_executed)
    if report.retries:
        obs.add("resilience.retries", report.retries)
    if report.failures:
        obs.add("resilience.failures", len(report.failures))
    if report.quarantined_indices:
        obs.add(
            "resilience.quarantined_shards", len(report.quarantined_indices)
        )
    if report.checkpoint_hits:
        obs.add("resilience.checkpoint_hits", report.checkpoint_hits)
    if report.checkpoint_writes:
        obs.add("resilience.checkpoint_writes", report.checkpoint_writes)
    if report.checkpoint_discards:
        obs.add("resilience.checkpoint_discards", report.checkpoint_discards)
    if report.faults_injected:
        obs.add("resilience.faults_injected", report.faults_injected)
    if report.records_dropped:
        obs.add("resilience.records_dropped", report.records_dropped)
    if report.spills:
        obs.add("stream.spills", report.spills)
    for outcome in report.outcomes:
        for failure in outcome.failures:
            obs.log_event(
                "retry",
                f"shard[{failure.shard_index}]",
                {"attempt": failure.attempt, "kind": failure.kind},
            )
        if outcome.quarantined:
            obs.log_event(
                "quarantine",
                f"shard[{outcome.shard_index}]",
                {"attempts": outcome.attempts_executed},
            )
        if outcome.from_checkpoint:
            obs.log_event(
                "checkpoint", f"shard[{outcome.shard_index}]", {"hit": True}
            )


__all__ = [
    "FAILURE_KINDS",
    "POLL_S",
    "ExecutionReport",
    "ShardExecutionError",
    "ShardFailure",
    "ShardOutcome",
    "execute_shards_supervised",
    "validate_shard_result",
]
