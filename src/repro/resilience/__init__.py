"""Resilient sharded execution: faults, retries, checkpoints, coverage.

The layer that turns the bare shard executor into a production-grade
one.  Four cooperating pieces:

- :mod:`repro.resilience.faults` — deterministic fault injection
  (:class:`FaultPlan`), addressed by ``(stage, shard_index, attempt)``;
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` with a
  wall-clock-free decision path and a ``(seed, shard_index, attempt)``
  deterministic backoff schedule;
- :mod:`repro.resilience.checkpoint` — atomic shard checkpoints and
  resume (:class:`ShardCheckpoint`);
- :mod:`repro.resilience.supervisor` — the supervised executor
  (:func:`execute_shards_supervised`) with typed failures, a watchdog,
  worker-crash recovery, and graceful degradation accounted through
  :mod:`repro.resilience.coverage`.

See ``docs/robustness.md`` for the failure model and the determinism
argument.

``supervisor`` imports :mod:`repro.dataset.parallel`, which itself
imports :mod:`repro.resilience.faults` — so the supervisor (and the
names re-exported from it) load lazily here, the same cycle-breaking
pattern :mod:`repro.dataset` uses.
"""

from __future__ import annotations

from repro.resilience.coverage import CoverageReport, coverage_block_from_meta
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_STAGES,
    FaultPlan,
    FaultSpec,
    InjectedHangError,
    InjectedWorkerError,
)
from repro.resilience.retry import ON_EXHAUSTED, RetryPolicy

_LAZY = {
    "ExecutionReport": "repro.resilience.supervisor",
    "FAILURE_KINDS": "repro.resilience.supervisor",
    "ShardExecutionError": "repro.resilience.supervisor",
    "ShardFailure": "repro.resilience.supervisor",
    "ShardOutcome": "repro.resilience.supervisor",
    "execute_shards_supervised": "repro.resilience.supervisor",
    "validate_shard_result": "repro.resilience.supervisor",
    "SCHEMA": "repro.resilience.checkpoint",
    "ShardCheckpoint": "repro.resilience.checkpoint",
    "run_key_for": "repro.resilience.checkpoint",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "CoverageReport",
    "coverage_block_from_meta",
    "FAULT_KINDS",
    "FAULT_STAGES",
    "FaultPlan",
    "FaultSpec",
    "InjectedHangError",
    "InjectedWorkerError",
    "ON_EXHAUSTED",
    "RetryPolicy",
    "ExecutionReport",
    "FAILURE_KINDS",
    "ShardExecutionError",
    "ShardFailure",
    "ShardOutcome",
    "execute_shards_supervised",
    "validate_shard_result",
    "SCHEMA",
    "ShardCheckpoint",
    "run_key_for",
]
