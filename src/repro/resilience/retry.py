"""Supervised-retry policy with a deterministic backoff schedule.

The retry *decision path* never reads the wall clock: whether a shard
is retried depends only on attempt counts, and the backoff schedule is
a pure function of ``(seed, shard_index, attempt)``, so a rerun of the
same failure scenario makes bit-identical decisions.  Wall-clock enters
exactly twice, both outside the decision path: the per-shard watchdog
*measures* elapsed time against :attr:`RetryPolicy.timeout_s` (via the
sanctioned :mod:`repro.obs.clock` shim), and the executor may *sleep*
the scheduled backoff before re-dispatching (disabled by default —
in-process reruns of a deterministic simulation gain nothing from
waiting).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro._rng import seed_material_word

#: Degradation policies applied after retry exhaustion.
ON_EXHAUSTED = ("fail", "quarantine")


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries, times out, and degrades."""

    #: Total attempts per shard (first run + retries), >= 1.
    max_attempts: int = 3
    #: Per-attempt watchdog for worker-pool execution, seconds; ``None``
    #: disables the watchdog.  In-process execution cannot preempt a
    #: shard, so there the watchdog only classifies injected hangs.
    timeout_s: Optional[float] = 120.0
    #: Base of the exponential backoff schedule, seconds.  0 disables
    #: sleeping entirely (the schedule is still computed and recorded).
    backoff_base_s: float = 0.0
    #: ``"fail"`` raises a structured error after exhaustion;
    #: ``"quarantine"`` drops the shard and degrades coverage.
    on_exhausted: str = "fail"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be > 0 or None, got {self.timeout_s}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.on_exhausted not in ON_EXHAUSTED:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED}, "
                f"got {self.on_exhausted!r}"
            )

    def backoff_s(self, seed: int, shard_index: int, attempt: int) -> float:
        """The scheduled pre-retry pause, a pure function of its inputs.

        Exponential in the attempt number with +/-25 % deterministic
        jitter derived from ``(seed, shard_index, attempt)`` through a
        :class:`numpy.random.SeedSequence` — no wall-clock, no shared
        RNG state, bit-identical across reruns and platforms.
        """
        if attempt < 1:
            return 0.0
        if self.backoff_base_s == 0.0:
            return 0.0
        word = seed_material_word([seed, shard_index, attempt])
        jitter = 0.75 + 0.5 * (float(word) / float(2**32))
        return self.backoff_base_s * (2.0 ** (attempt - 1)) * jitter

    def request_backoff_s(
        self, seed: int, request_id: str, attempt: int
    ) -> float:
        """:meth:`backoff_s` addressed by a serve-path request id.

        Request ids are strings, so the id is folded to a stable
        integer index (first four sha256 bytes) before entering the
        same seed-material derivation — the schedule stays a pure
        function of ``(seed, request_id, attempt)`` and is shared by
        the retrying harness client and the chaos smoke.
        """
        digest = hashlib.sha256(request_id.encode("utf-8")).digest()
        return self.backoff_s(seed, int.from_bytes(digest[:4], "big"), attempt)


__all__ = ["ON_EXHAUSTED", "RetryPolicy"]
