"""High-speed (TGV) rail network.

The paper singles out rural communes crossed by high-speed train lines as
a separate urbanization class with unique usage dynamics (Fig. 9 shows the
Paris-Lyon-Marseille arteries lighting up on the per-subscriber traffic
maps).  We synthesize a rail network as a graph over the largest cities:

- nodes are the top ``n_hub_cities`` cities of the population model;
- edges form a star from the largest city (the "Paris" of the synthetic
  country) to every other hub — the actual French LGV topology — plus a
  few cross links between the nearest hub pairs;
- each edge is a straight polyline; communes whose seed lies within a
  corridor of the polyline are "crossed" by the line.

The graph is a :class:`networkx.Graph`, so downstream code (mobility,
examples) can run shortest-path itineraries over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geo.communes import CommuneGrid
from repro.geo.population import City, CityModel


@dataclass(frozen=True)
class RailSegment:
    """One straight line segment of the rail network, between two hubs."""

    u: int  # city rank of one endpoint
    v: int  # city rank of the other endpoint
    start_km: Tuple[float, float]
    end_km: Tuple[float, float]

    @property
    def length_km(self) -> float:
        dx = self.end_km[0] - self.start_km[0]
        dy = self.end_km[1] - self.start_km[1]
        return float(np.hypot(dx, dy))


class RailNetwork:
    """The synthetic high-speed rail network.

    Wraps a :class:`networkx.Graph` whose nodes are city ranks and whose
    edges carry :class:`RailSegment` geometry, plus the commune grid needed
    for corridor queries.
    """

    def __init__(
        self,
        graph: nx.Graph,
        segments: Sequence[RailSegment],
        grid: CommuneGrid,
        hub_cities: Sequence[City],
    ):
        self.graph = graph
        self.segments: List[RailSegment] = list(segments)
        self._grid = grid
        self.hub_cities: List[City] = list(hub_cities)
        self._hub_by_rank: Dict[int, City] = {c.rank: c for c in self.hub_cities}

    @property
    def total_length_km(self) -> float:
        return float(sum(s.length_km for s in self.segments))

    def hub(self, rank: int) -> City:
        """Return the hub city with the given population rank."""
        if rank not in self._hub_by_rank:
            raise KeyError(f"no rail hub with city rank {rank}")
        return self._hub_by_rank[rank]

    def itinerary(self, origin_rank: int, dest_rank: int) -> List[int]:
        """Shortest hub-to-hub path (by track length), as a list of ranks."""
        return nx.shortest_path(
            self.graph, source=origin_rank, target=dest_rank, weight="length_km"
        )

    def segment_between(self, u: int, v: int) -> RailSegment:
        """Return the segment connecting two adjacent hubs."""
        data = self.graph.get_edge_data(u, v)
        if data is None:
            raise KeyError(f"no rail segment between hubs {u} and {v}")
        return data["segment"]

    def points_along(self, segment: RailSegment, spacing_km: float = 2.0) -> np.ndarray:
        """Sample points along a segment at roughly ``spacing_km`` intervals."""
        if spacing_km <= 0:
            raise ValueError(f"spacing_km must be > 0, got {spacing_km}")
        n = max(2, int(np.ceil(segment.length_km / spacing_km)) + 1)
        t = np.linspace(0.0, 1.0, n)
        start = np.asarray(segment.start_km)
        end = np.asarray(segment.end_km)
        return start[None, :] + t[:, None] * (end - start)[None, :]

    def communes_within(self, corridor_km: float) -> np.ndarray:
        """Ids of communes whose seed lies within ``corridor_km`` of a track."""
        if corridor_km <= 0:
            raise ValueError(f"corridor_km must be > 0, got {corridor_km}")
        xy = self._grid.coordinates_km
        near = np.zeros(len(self._grid), dtype=bool)
        for segment in self.segments:
            d = _point_segment_distance(
                xy,
                np.asarray(segment.start_km),
                np.asarray(segment.end_km),
            )
            near |= d <= corridor_km
        return np.nonzero(near)[0]

    def communes_along(
        self, origin_rank: int, dest_rank: int, corridor_km: float
    ) -> np.ndarray:
        """Commune ids traversed by the itinerary between two hubs, in order."""
        path = self.itinerary(origin_rank, dest_rank)
        visited: List[int] = []
        seen = set()
        for u, v in zip(path[:-1], path[1:]):
            segment = self.segment_between(u, v)
            points = self.points_along(segment, spacing_km=corridor_km)
            if (segment.start_km[0], segment.start_km[1]) != (
                self._hub_by_rank[u].x_km,
                self._hub_by_rank[u].y_km,
            ):
                points = points[::-1]
            for commune_id in self._grid.communes_at(points):
                if commune_id not in seen:
                    seen.add(int(commune_id))
                    visited.append(int(commune_id))
        return np.asarray(visited, dtype=int)


def _point_segment_distance(
    points: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Distance from each point to the segment ``a-b`` (vectorized)."""
    ab = b - a
    denom = float(ab @ ab)
    if denom == 0.0:
        return np.linalg.norm(points - a, axis=1)
    t = np.clip(((points - a) @ ab) / denom, 0.0, 1.0)
    proj = a[None, :] + t[:, None] * ab[None, :]
    return np.linalg.norm(points - proj, axis=1)


def build_rail_network(
    grid: CommuneGrid,
    city_model: CityModel,
    n_hub_cities: int = 8,
    n_cross_links: int = 2,
) -> RailNetwork:
    """Build the star-plus-crosslinks high-speed rail network.

    The largest city is the hub of a star reaching every other hub city
    (the French LGV layout radiates from Paris); ``n_cross_links``
    additional edges connect the geographically closest non-adjacent hub
    pairs, adding the few transversal lines France has.
    """
    if n_hub_cities < 2:
        raise ValueError(f"n_hub_cities must be >= 2, got {n_hub_cities}")
    hubs = city_model.largest(n_hub_cities)
    centre = hubs[0]

    graph = nx.Graph()
    for city in hubs:
        graph.add_node(city.rank, x_km=city.x_km, y_km=city.y_km)

    segments: List[RailSegment] = []

    def add_edge(u: City, v: City) -> None:
        segment = RailSegment(
            u=u.rank,
            v=v.rank,
            start_km=(u.x_km, u.y_km),
            end_km=(v.x_km, v.y_km),
        )
        graph.add_edge(u.rank, v.rank, length_km=segment.length_km, segment=segment)
        segments.append(segment)

    for city in hubs[1:]:
        add_edge(centre, city)

    # Cross links between the closest pairs of non-centre hubs.
    candidates = []
    for i in range(1, len(hubs)):
        for j in range(i + 1, len(hubs)):
            d = np.hypot(hubs[i].x_km - hubs[j].x_km, hubs[i].y_km - hubs[j].y_km)
            candidates.append((float(d), i, j))
    candidates.sort()
    for _, i, j in candidates[:n_cross_links]:
        if not graph.has_edge(hubs[i].rank, hubs[j].rank):
            add_edge(hubs[i], hubs[j])

    return RailNetwork(graph=graph, segments=segments, grid=grid, hub_cities=hubs)


__all__ = ["RailSegment", "RailNetwork", "build_rail_network"]
