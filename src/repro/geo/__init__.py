"""Synthetic geography substrate.

The paper tessellates France into >36,000 *communes* (mean surface
~16 km²), classifies them by urbanization level following INSEE, singles
out rural communes crossed by high-speed (TGV) rail lines, and overlays
the operator's 3G/4G coverage.  None of those inputs ship with the paper,
so this package synthesizes a country with the same structural properties:

- :mod:`repro.geo.communes` — a jittered-grid tessellation of a square
  territory into communes of realistic size;
- :mod:`repro.geo.population` — a Zipf city-size model producing a skewed
  population-density field over the communes;
- :mod:`repro.geo.urbanization` — INSEE-like urban / semi-urban / rural
  classes plus the paper's TGV class;
- :mod:`repro.geo.transport` — a high-speed rail graph connecting the
  largest cities (built on networkx);
- :mod:`repro.geo.coverage` — pervasive 3G plus density-driven 4G
  coverage;
- :mod:`repro.geo.country` — the :class:`~repro.geo.country.Country`
  aggregate and its builder.
"""

from repro.geo.communes import Commune, CommuneGrid, build_tessellation
from repro.geo.country import Country, CountryConfig, build_country
from repro.geo.coverage import CoverageMap, Technology, build_coverage
from repro.geo.population import CityModel, PopulationField, build_population
from repro.geo.transport import RailNetwork, build_rail_network
from repro.geo.urbanization import UrbanizationClass, classify_communes

__all__ = [
    "Commune",
    "CommuneGrid",
    "build_tessellation",
    "CityModel",
    "PopulationField",
    "build_population",
    "UrbanizationClass",
    "classify_communes",
    "RailNetwork",
    "build_rail_network",
    "CoverageMap",
    "Technology",
    "build_coverage",
    "Country",
    "CountryConfig",
    "build_country",
]
