"""The :class:`Country` aggregate: everything geographic in one object.

A :class:`Country` bundles the tessellation, population field,
urbanization classes, rail network and coverage map, built consistently
from one configuration and one seed.  All higher layers (network
deployment, subscriber synthesis, the volume model) take a ``Country``
rather than its parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro.geo.communes import CommuneGrid, build_tessellation
from repro.geo.coverage import CoverageMap, Technology, build_coverage
from repro.geo.population import PopulationField, build_population
from repro.geo.transport import RailNetwork, build_rail_network
from repro.geo.urbanization import (
    UrbanizationClass,
    UrbanizationResult,
    classify_communes,
)


@dataclass(frozen=True)
class CountryConfig:
    """Knobs of the synthetic country.

    The defaults give a laptop-scale country (2,500 communes) with the
    structural properties of France; ``n_communes=36_000`` reproduces the
    paper's full tessellation when memory allows.
    """

    n_communes: int = 2_500
    mean_commune_area_km2: float = 16.0
    #: None scales the French 30 M population down with the tessellation
    #: (30 M × n_communes / 36,000), keeping commune sizes realistic; set
    #: an explicit value to decouple the two.
    total_population: Optional[float] = None
    n_cities: int = 40
    city_zipf_exponent: float = 1.05
    urban_population_fraction: float = 0.82
    n_rail_hubs: int = 8
    n_rail_cross_links: int = 2
    tgv_corridor_km: float = 6.0
    urban_population_share: float = 0.45
    semi_urban_population_share: float = 0.35
    pop_coverage_target_4g: float = 0.65

    #: Reference scale: France has ~36,000 communes and ~30 M residents
    #: covered by the studied operator's market.
    REFERENCE_COMMUNES = 36_000
    REFERENCE_POPULATION = 30_000_000

    def __post_init__(self) -> None:
        if self.n_communes < 4:
            raise ValueError(f"n_communes must be >= 4, got {self.n_communes}")
        if self.n_rail_hubs > self.n_cities:
            raise ValueError(
                f"n_rail_hubs ({self.n_rail_hubs}) cannot exceed "
                f"n_cities ({self.n_cities})"
            )

    @property
    def effective_population(self) -> float:
        """Resolved population (scaled with the tessellation when unset)."""
        if self.total_population is not None:
            return float(self.total_population)
        return (
            self.REFERENCE_POPULATION * self.n_communes / self.REFERENCE_COMMUNES
        )

    @property
    def population_scale(self) -> float:
        """effective_population / reference — used to scale traffic totals."""
        return self.effective_population / self.REFERENCE_POPULATION


@dataclass(frozen=True)
class Country:
    """A fully built synthetic country."""

    config: CountryConfig
    grid: CommuneGrid
    population: PopulationField
    rail: RailNetwork
    urbanization: UrbanizationResult
    coverage: CoverageMap
    _subscriber_share: float = field(default=0.5, repr=False)

    @property
    def n_communes(self) -> int:
        return len(self.grid)

    def subscribers_per_commune(self) -> np.ndarray:
        """Expected operator subscribers resident in each commune.

        The operator serves a fixed share of the population (Orange holds
        roughly one third to one half of the French market; the exact
        share only scales absolute volumes, which the paper anonymizes
        away).
        """
        return self.population.residents * self._subscriber_share

    def class_of(self, commune_id: int) -> UrbanizationClass:
        """Urbanization class of a commune."""
        return UrbanizationClass(int(self.urbanization.classes[commune_id]))

    def communes_in_class(self, cls: UrbanizationClass) -> np.ndarray:
        """Ids of all communes in an urbanization class."""
        return np.nonzero(self.urbanization.mask(cls))[0]

    def describe(self) -> dict:
        """Summary statistics used by reports and sanity tests."""
        shares = self.urbanization.population_shares(self.population)
        return {
            "n_communes": self.n_communes,
            "territory_km2": self.grid.territory_area_km2,
            "total_population": self.population.total_population,
            "commune_counts": self.urbanization.counts(),
            "population_shares": shares,
            "coverage_3g": self.coverage.coverage_share(Technology.G3),
            "coverage_4g": self.coverage.coverage_share(Technology.G4),
            "rail_length_km": self.rail.total_length_km,
        }


def build_country(
    config: CountryConfig = CountryConfig(), seed: SeedLike = None
) -> Country:
    """Build a consistent :class:`Country` from a config and a seed."""
    rng = as_generator(seed)
    grid_rng = spawn(rng, "geo.grid")
    pop_rng = spawn(rng, "geo.population")
    cov_rng = spawn(rng, "geo.coverage")

    grid = build_tessellation(
        n_communes=config.n_communes,
        mean_area_km2=config.mean_commune_area_km2,
        seed=grid_rng,
    )
    population = build_population(
        grid,
        total_population=config.effective_population,
        n_cities=config.n_cities,
        zipf_exponent=config.city_zipf_exponent,
        urban_fraction=config.urban_population_fraction,
        seed=pop_rng,
    )
    rail = build_rail_network(
        grid,
        population.city_model,
        n_hub_cities=config.n_rail_hubs,
        n_cross_links=config.n_rail_cross_links,
    )
    urbanization = classify_communes(
        population,
        rail=rail,
        urban_population_share=config.urban_population_share,
        semi_urban_population_share=config.semi_urban_population_share,
        tgv_corridor_km=config.tgv_corridor_km,
    )
    coverage = build_coverage(
        population,
        rail=rail,
        pop_coverage_target_4g=config.pop_coverage_target_4g,
        tgv_corridor_km=config.tgv_corridor_km,
        seed=cov_rng,
    )
    return Country(
        config=config,
        grid=grid,
        population=population,
        rail=rail,
        urbanization=urbanization,
        coverage=coverage,
    )


__all__ = ["CountryConfig", "Country", "build_country"]
