"""Commune tessellation.

France is covered by >36,000 communes with an average surface around
16 km² (paper, §2).  We reproduce that structure with a jittered-grid
tessellation: the territory is a square of side ``side_km``; one commune
seed is placed per grid cell with uniform jitter, and each commune's
surface is the (equal) cell area perturbed by a small lognormal factor and
renormalized so surfaces sum to the territory area.

A jittered grid (rather than a full Voronoi construction) keeps
nearest-commune queries trivial — the grid cell of a point identifies its
commune — while retaining the irregular spacing that matters to the
analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro._rng import SeedLike, as_generator


@dataclass(frozen=True)
class Commune:
    """One administrative cell of the tessellation.

    Attributes
    ----------
    commune_id:
        Dense integer identifier, ``0..n_communes-1``.
    x_km, y_km:
        Seed (centroid) coordinates within the territory square.
    area_km2:
        Commune surface.
    """

    commune_id: int
    x_km: float
    y_km: float
    area_km2: float


class CommuneGrid:
    """A jittered-grid tessellation supporting point-to-commune lookup."""

    def __init__(self, communes: Sequence[Commune], side_km: float, cells_per_side: int):
        if cells_per_side < 1:
            raise ValueError(f"cells_per_side must be >= 1, got {cells_per_side}")
        if len(communes) != cells_per_side**2:
            raise ValueError(
                f"expected {cells_per_side ** 2} communes for a "
                f"{cells_per_side}x{cells_per_side} grid, got {len(communes)}"
            )
        self._communes: List[Commune] = list(communes)
        self.side_km = float(side_km)
        self.cells_per_side = int(cells_per_side)
        self.cell_km = self.side_km / self.cells_per_side
        self._xy = np.array([(c.x_km, c.y_km) for c in self._communes])
        self._areas = np.array([c.area_km2 for c in self._communes])

    def __len__(self) -> int:
        return len(self._communes)

    def __iter__(self):
        return iter(self._communes)

    def __getitem__(self, commune_id: int) -> Commune:
        return self._communes[commune_id]

    @property
    def communes(self) -> List[Commune]:
        """All communes, indexed by ``commune_id``."""
        return self._communes

    @property
    def coordinates_km(self) -> np.ndarray:
        """``(n, 2)`` array of commune seed coordinates."""
        return self._xy

    @property
    def areas_km2(self) -> np.ndarray:
        """``(n,)`` array of commune surfaces."""
        return self._areas

    @property
    def territory_area_km2(self) -> float:
        """Total territory surface."""
        return self.side_km**2

    def commune_at(self, x_km: float, y_km: float) -> int:
        """Return the id of the commune whose grid cell contains a point.

        Points outside the territory are clamped to the border cell, which
        mirrors how border base stations absorb out-of-territory traffic.
        """
        col = min(max(int(x_km / self.cell_km), 0), self.cells_per_side - 1)
        row = min(max(int(y_km / self.cell_km), 0), self.cells_per_side - 1)
        return row * self.cells_per_side + col

    def communes_at(self, xy_km: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`commune_at` for an ``(n, 2)`` array of points."""
        xy_km = np.asarray(xy_km, dtype=float)
        if xy_km.ndim != 2 or xy_km.shape[1] != 2:
            raise ValueError(f"expected an (n, 2) array, got shape {xy_km.shape}")
        cols = np.clip(
            (xy_km[:, 0] / self.cell_km).astype(int), 0, self.cells_per_side - 1
        )
        rows = np.clip(
            (xy_km[:, 1] / self.cell_km).astype(int), 0, self.cells_per_side - 1
        )
        return rows * self.cells_per_side + cols

    def neighbors(self, commune_id: int) -> List[int]:
        """Return ids of the (up to 8) grid-adjacent communes."""
        if not 0 <= commune_id < len(self):
            raise ValueError(f"unknown commune id {commune_id}")
        row, col = divmod(commune_id, self.cells_per_side)
        out = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                nr, nc = row + dr, col + dc
                if 0 <= nr < self.cells_per_side and 0 <= nc < self.cells_per_side:
                    out.append(nr * self.cells_per_side + nc)
        return out

    def distance_km(self, a: int, b: int) -> float:
        """Euclidean seed-to-seed distance between two communes."""
        dx = self._xy[a] - self._xy[b]
        return float(math.hypot(dx[0], dx[1]))


def build_tessellation(
    n_communes: int,
    mean_area_km2: float = 16.0,
    area_sigma: float = 0.35,
    seed: SeedLike = None,
) -> CommuneGrid:
    """Tessellate a square territory into ``n_communes`` communes.

    ``n_communes`` is rounded up to the next perfect square so the jittered
    grid is complete.  The territory side is chosen so the mean commune
    surface equals ``mean_area_km2`` (France: ~16 km²); individual surfaces
    get lognormal variation of scale ``area_sigma`` and are renormalized to
    tile the territory exactly.
    """
    if n_communes < 1:
        raise ValueError(f"n_communes must be >= 1, got {n_communes}")
    if mean_area_km2 <= 0:
        raise ValueError(f"mean_area_km2 must be > 0, got {mean_area_km2}")
    rng = as_generator(seed)

    cells_per_side = math.isqrt(n_communes)
    if cells_per_side**2 < n_communes:
        cells_per_side += 1
    n_cells = cells_per_side**2
    side_km = math.sqrt(n_cells * mean_area_km2)
    cell_km = side_km / cells_per_side

    jitter = rng.uniform(0.15, 0.85, size=(n_cells, 2))
    raw_areas = rng.lognormal(mean=0.0, sigma=area_sigma, size=n_cells)
    areas = raw_areas * (n_cells * mean_area_km2 / raw_areas.sum())

    communes = []
    for cell in range(n_cells):
        row, col = divmod(cell, cells_per_side)
        x = (col + jitter[cell, 0]) * cell_km
        y = (row + jitter[cell, 1]) * cell_km
        communes.append(
            Commune(
                commune_id=cell,
                x_km=float(x),
                y_km=float(y),
                area_km2=float(areas[cell]),
            )
        )
    return CommuneGrid(communes, side_km=side_km, cells_per_side=cells_per_side)


__all__ = ["Commune", "CommuneGrid", "build_tessellation"]
