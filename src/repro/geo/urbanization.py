"""Urbanization classification of communes.

The paper groups communes into *urban*, *semi-urban* and *rural*
"according to classifications of the French National Institute of
Statistics" (INSEE), and adds a fourth *TGV* class: rural communes crossed
by a high-speed train line (§5).

INSEE's grid classification is density-driven; we reproduce it with
density thresholds calibrated on population shares: communes are ranked by
density and the classes are cut so that configurable shares of the
*population* (not of the communes) live in each class.  With the defaults,
a small minority of communes is urban yet hosts most of the population —
matching the French situation the paper relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geo.population import PopulationField
from repro.geo.transport import RailNetwork


class UrbanizationClass(enum.IntEnum):
    """The paper's four commune groups (§5)."""

    URBAN = 0
    SEMI_URBAN = 1
    RURAL = 2
    TGV = 3

    @property
    def label(self) -> str:
        return _LABELS[self]


_LABELS = {
    UrbanizationClass.URBAN: "Urban",
    UrbanizationClass.SEMI_URBAN: "Semi-Urban",
    UrbanizationClass.RURAL: "Rural",
    UrbanizationClass.TGV: "TGV",
}


@dataclass(frozen=True)
class UrbanizationResult:
    """Per-commune classes and the density thresholds that produced them."""

    classes: np.ndarray  # (n_communes,), UrbanizationClass values
    urban_density_threshold: float
    semi_urban_density_threshold: float

    def mask(self, cls: UrbanizationClass) -> np.ndarray:
        """Boolean mask of communes in a class."""
        return self.classes == int(cls)

    def counts(self) -> dict:
        """Number of communes per class, keyed by class label."""
        return {
            cls.label: int(np.count_nonzero(self.classes == int(cls)))
            for cls in UrbanizationClass
        }

    def population_shares(self, population: PopulationField) -> dict:
        """Share of residents per class, keyed by class label."""
        total = population.total_population
        return {
            cls.label: float(population.residents[self.mask(cls)].sum() / total)
            for cls in UrbanizationClass
        }


def classify_communes(
    population: PopulationField,
    rail: Optional[RailNetwork] = None,
    urban_population_share: float = 0.45,
    semi_urban_population_share: float = 0.35,
    tgv_corridor_km: float = 6.0,
) -> UrbanizationResult:
    """Assign an :class:`UrbanizationClass` to every commune.

    Communes are sorted by population density; the densest communes
    hosting ``urban_population_share`` of the residents are *urban*, the
    next ``semi_urban_population_share`` are *semi-urban*, the rest are
    *rural*.  Rural communes within ``tgv_corridor_km`` of a high-speed
    rail segment are re-labelled *TGV*, exactly as in the paper (only
    rural communes move to the TGV class).
    """
    if urban_population_share + semi_urban_population_share >= 1.0:
        raise ValueError(
            "urban + semi-urban population shares must be < 1, got "
            f"{urban_population_share} + {semi_urban_population_share}"
        )
    density = population.density_km2
    residents = population.residents
    order = np.argsort(density)[::-1]
    cum_share = np.cumsum(residents[order]) / residents.sum()

    n = len(density)
    classes = np.full(n, int(UrbanizationClass.RURAL), dtype=np.int8)
    urban_cut = int(np.searchsorted(cum_share, urban_population_share)) + 1
    semi_cut = (
        int(
            np.searchsorted(
                cum_share, urban_population_share + semi_urban_population_share
            )
        )
        + 1
    )
    urban_cut = min(urban_cut, n)
    semi_cut = min(max(semi_cut, urban_cut), n)
    classes[order[:urban_cut]] = int(UrbanizationClass.URBAN)
    classes[order[urban_cut:semi_cut]] = int(UrbanizationClass.SEMI_URBAN)

    urban_threshold = float(density[order[urban_cut - 1]]) if urban_cut else np.inf
    semi_threshold = (
        float(density[order[semi_cut - 1]]) if semi_cut > urban_cut else urban_threshold
    )

    if rail is not None:
        near_rail = rail.communes_within(tgv_corridor_km)
        rural_mask = classes == int(UrbanizationClass.RURAL)
        tgv_mask = np.zeros(n, dtype=bool)
        tgv_mask[near_rail] = True
        classes[rural_mask & tgv_mask] = int(UrbanizationClass.TGV)

    return UrbanizationResult(
        classes=classes,
        urban_density_threshold=urban_threshold,
        semi_urban_density_threshold=semi_threshold,
    )


__all__ = ["UrbanizationClass", "UrbanizationResult", "classify_communes"]
