"""3G/4G coverage model.

The right plot of the paper's Fig. 9 shows Orange's coverage in France:
3G is pervasive, while 4G concentrates on cities and transport arteries.
The paper uses that asymmetry to explain the Netflix outlier (high-rate
video needs 4G, so Netflix usage follows the 4G footprint).

We model per-commune coverage as:

- 3G: present in (almost) every commune — a small outage probability in
  the lowest-density communes accounts for white zones;
- 4G: deployed where the business case holds — probability increasing
  with population density, plus guaranteed deployment along the TGV
  corridors (operators cover high-speed lines for premium passengers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.geo.population import PopulationField
from repro.geo.transport import RailNetwork


class Technology(enum.IntEnum):
    """Radio access technologies relevant to the study."""

    G3 = 3
    G4 = 4

    @property
    def label(self) -> str:
        return {Technology.G3: "3G", Technology.G4: "4G"}[self]


@dataclass(frozen=True)
class CoverageMap:
    """Per-commune availability of each technology."""

    has_3g: np.ndarray  # (n_communes,), bool
    has_4g: np.ndarray  # (n_communes,), bool

    def __post_init__(self) -> None:
        if self.has_3g.shape != self.has_4g.shape:
            raise ValueError("3G and 4G masks must have the same shape")
        if np.any(self.has_4g & ~self.has_3g):
            raise ValueError("4G coverage without 3G coverage is not modelled")

    @property
    def n_communes(self) -> int:
        return int(self.has_3g.shape[0])

    def best_technology(self, commune_id: int) -> Optional[Technology]:
        """Best technology available in a commune, or None for a white zone."""
        if self.has_4g[commune_id]:
            return Technology.G4
        if self.has_3g[commune_id]:
            return Technology.G3
        return None

    def supports(self, commune_id: int, technology: Technology) -> bool:
        """Whether a commune offers at least the given technology."""
        if technology is Technology.G4:
            return bool(self.has_4g[commune_id])
        return bool(self.has_3g[commune_id])

    def coverage_share(self, technology: Technology) -> float:
        """Fraction of communes covered by a technology."""
        mask = self.has_4g if technology is Technology.G4 else self.has_3g
        return float(mask.mean())


def _density_midpoint(population: PopulationField, pop_target: float) -> float:
    """Density threshold above which ``pop_target`` of residents live.

    Using a population-share target (rather than an absolute persons/km²
    threshold) keeps the coverage model meaningful at any tessellation
    scale: operators deploy 4G to *cover people*, and scaled-down
    synthetic countries have inflated absolute densities.
    """
    density = population.density_km2
    residents = population.residents
    order = np.argsort(density)[::-1]
    cum = np.cumsum(residents[order]) / residents.sum()
    idx = int(np.searchsorted(cum, pop_target))
    idx = min(idx, len(order) - 1)
    return float(density[order[idx]])


def build_coverage(
    population: PopulationField,
    rail: Optional[RailNetwork] = None,
    pop_coverage_target_4g: float = 0.65,
    density_4g_steepness: float = 1.6,
    white_zone_probability: float = 0.01,
    tgv_corridor_km: float = 6.0,
    seed: SeedLike = None,
) -> CoverageMap:
    """Build a :class:`CoverageMap` from population density and rail lines.

    The 4G deployment probability is a log-logistic function of commune
    density whose midpoint is the density above which
    ``pop_coverage_target_4g`` of the population lives — dense communes
    are (almost) surely covered, empty countryside (almost) surely not,
    matching the 2016 French deployment the paper's Fig. 9 shows.  TGV
    corridor communes are force-covered.  3G is pervasive except for rare
    white zones among the least dense communes.
    """
    if not 0 < pop_coverage_target_4g < 1:
        raise ValueError(
            f"pop_coverage_target_4g must be in (0, 1), got {pop_coverage_target_4g}"
        )
    if not 0 <= white_zone_probability < 1:
        raise ValueError(
            f"white_zone_probability must be in [0, 1), got {white_zone_probability}"
        )
    rng = as_generator(seed)
    density = population.density_km2
    n = len(density)

    # Log-logistic adoption curve for 4G.
    midpoint = _density_midpoint(population, pop_coverage_target_4g)
    ratio = np.maximum(density, 1e-9) / midpoint
    p_4g = ratio**density_4g_steepness / (1.0 + ratio**density_4g_steepness)
    has_4g = rng.random(n) < p_4g

    # Pervasive 3G; the rare white zones appear only in the bottom density
    # decile (remote valleys).
    has_3g = np.ones(n, dtype=bool)
    low_density = density <= np.quantile(density, 0.10)
    white = rng.random(n) < white_zone_probability
    has_3g[low_density & white] = False

    if rail is not None:
        corridor = rail.communes_within(tgv_corridor_km)
        has_3g[corridor] = True
        has_4g[corridor] = True

    has_4g &= has_3g
    return CoverageMap(has_3g=has_3g, has_4g=has_4g)


__all__ = ["Technology", "CoverageMap", "build_coverage"]
