"""Population synthesis over the commune tessellation.

The spatial findings of the paper (Figs. 8-11) hinge on France's extremely
skewed population geography: a handful of metropolises, a network of
medium towns, and a vast low-density countryside.  We synthesize that
structure with a classical Zipf city-size model:

1. ``n_cities`` city centres are placed on the territory with a minimum
   pairwise spacing, and assigned populations ``P_k ∝ k^-zipf_exponent``
   (rank-size rule; French cities fit an exponent near 1).
2. Each city spreads its population over nearby communes with an
   exponential density kernel whose radius grows with city size
   (``radius ∝ P^0.25``), so big cities have both denser cores and wider
   suburban rings.
3. A uniform rural background density is added everywhere.

The output is a per-commune resident population, from which densities and
(later) urbanization classes and subscriber counts derive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro._rng import SeedLike, as_generator, zipf_weights
from repro.geo.communes import CommuneGrid


@dataclass(frozen=True)
class City:
    """One synthetic city: a population mass with a spread radius."""

    rank: int
    x_km: float
    y_km: float
    population: float
    radius_km: float


@dataclass(frozen=True)
class CityModel:
    """The set of synthetic cities driving the density field."""

    cities: List[City]

    @property
    def total_urban_population(self) -> float:
        return float(sum(c.population for c in self.cities))

    def largest(self, n: int) -> List[City]:
        """Return the ``n`` largest cities by population."""
        return sorted(self.cities, key=lambda c: c.population, reverse=True)[:n]


@dataclass(frozen=True)
class PopulationField:
    """Per-commune population and derived density."""

    residents: np.ndarray  # (n_communes,), persons
    density_km2: np.ndarray  # (n_communes,), persons / km^2
    city_model: CityModel

    @property
    def total_population(self) -> float:
        return float(self.residents.sum())

    def top_commune_share(self, fraction: float) -> float:
        """Share of total population held by the top ``fraction`` communes.

        Mirrors the commune-concentration statistic the paper computes for
        traffic in Fig. 8.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        order = np.sort(self.residents)[::-1]
        k = max(1, int(round(fraction * len(order))))
        return float(order[:k].sum() / order.sum())


def _place_city_centres(
    grid: CommuneGrid, n_cities: int, rng: np.random.Generator
) -> np.ndarray:
    """Place city centres with a best-candidate spacing heuristic."""
    margin = 0.05 * grid.side_km
    centres = np.empty((n_cities, 2))
    for k in range(n_cities):
        candidates = rng.uniform(margin, grid.side_km - margin, size=(12, 2))
        if k == 0:
            centres[0] = candidates[0]
            continue
        # Best-candidate sampling: keep the candidate farthest from the
        # already-placed centres, which yields well-spread cities without
        # an explicit minimum-distance rejection loop.
        dists = np.linalg.norm(
            candidates[:, None, :] - centres[None, :k, :], axis=2
        ).min(axis=1)
        centres[k] = candidates[int(np.argmax(dists))]
    return centres


def build_population(
    grid: CommuneGrid,
    total_population: float = 30_000_000,
    n_cities: int = 40,
    zipf_exponent: float = 1.05,
    urban_fraction: float = 0.82,
    base_radius_km: float = 4.0,
    background_sigma: float = 1.4,
    seed: SeedLike = None,
) -> PopulationField:
    """Synthesize a skewed population field over ``grid``.

    Parameters
    ----------
    total_population:
        Country-wide resident count (the paper's subscriber base is
        ~30 M; we use the same order for residents).
    n_cities:
        Number of explicit city masses.
    zipf_exponent:
        Rank-size exponent of city populations.
    urban_fraction:
        Share of the population living in the city kernels; the remainder
        is the rural background (France is ~80 % urban).
    base_radius_km:
        Spread radius of a city of unit relative size; actual radius is
        ``base_radius_km * (P_k / P_min)^0.25``.
    background_sigma:
        Lognormal heterogeneity of the rural background.  French commune
        populations are themselves heavy-tailed — thousands of villages
        below 200 residents — and that spread is what empties
        low-adoption services out of small communes (Fig. 8).
    """
    if total_population <= 0:
        raise ValueError(f"total_population must be > 0, got {total_population}")
    if n_cities < 1:
        raise ValueError(f"n_cities must be >= 1, got {n_cities}")
    if not 0 <= urban_fraction <= 1:
        raise ValueError(f"urban_fraction must be in [0, 1], got {urban_fraction}")
    rng = as_generator(seed)

    centres = _place_city_centres(grid, n_cities, rng)
    weights = zipf_weights(n_cities, zipf_exponent)
    city_pops = weights * total_population * urban_fraction
    rel = city_pops / city_pops.min()
    radii = base_radius_km * rel**0.25

    cities = [
        City(
            rank=k + 1,
            x_km=float(centres[k, 0]),
            y_km=float(centres[k, 1]),
            population=float(city_pops[k]),
            radius_km=float(radii[k]),
        )
        for k in range(n_cities)
    ]

    xy = grid.coordinates_km
    areas = grid.areas_km2
    density = np.full(len(grid), 0.0)
    for city in cities:
        d = np.linalg.norm(xy - np.array([city.x_km, city.y_km]), axis=1)
        # Two-component kernel: a tight core (French city cores are single
        # huge communes — Paris holds >2 M residents in one) plus a wide
        # suburban ring.  The core share is what produces the extreme
        # commune-level concentration behind Fig. 8.
        core = np.exp(-d / max(0.12 * city.radius_km, 1.0))
        suburb = np.exp(-d / (1.2 * city.radius_km))
        for kernel, share in ((core, 0.65), (suburb, 0.35)):
            # Normalize the kernel over commune areas so the city mass is
            # distributed exactly.
            mass = kernel * areas
            density += share * city.population * kernel / mass.sum()

    rural_population = total_population * (1.0 - urban_fraction)
    background = rng.lognormal(mean=0.0, sigma=background_sigma, size=len(grid))
    background /= (background * areas).sum() / grid.territory_area_km2
    density += background * rural_population / grid.territory_area_km2

    residents = density * areas
    residents *= total_population / residents.sum()
    density = residents / areas

    return PopulationField(
        residents=residents,
        density_km2=density,
        city_model=CityModel(cities=cities),
    )


__all__ = ["City", "CityModel", "PopulationField", "build_population"]
