"""The gate contract: which indicators regress, and how much is noise.

Each :class:`GateSpec` names one dotted indicator into a record's
``legs`` payload (``"serve.latency_p99_s"`` → ``legs["serve"]
["latency_p99_s"]``), the direction that counts as *better*, and the
relative noise band inside which run-to-run variation is expected.
The bands are deliberately wide — these are wall-clock measurements on
shared CI runners; the gate exists to catch step-change regressions
(an accidental O(n²), a lost fast path), not single-digit-percent
drift.  Tightening a band is a contract change reviewed like any
other: the table below is the single source of truth, mirrored in the
``docs/observability.md`` observatory section.

A candidate regresses an indicator when it falls outside the band on
the *worse* side of the **median** of comparable prior records (same
``config_fingerprint``); the median makes the baseline robust to a
single outlier run in the history.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro import obs

#: Directions an indicator can prefer.
HIGHER = "higher"
LOWER = "lower"


@dataclass(frozen=True)
class GateSpec:
    """One gated indicator: dotted path, preferred direction, noise band."""

    indicator: str
    direction: str  # HIGHER | LOWER
    noise_band: float  # relative; 0.30 = 30% worse than baseline fails
    summary: str


#: The gated indicator table (mirrored in docs/observability.md).
GATES: tuple = (
    GateSpec(
        "build.records_per_s",
        HIGHER,
        0.30,
        "measurement-chain ingest throughput",
    ),
    GateSpec(
        "build.peak_rss_bytes",
        LOWER,
        0.25,
        "build peak resident set",
    ),
    GateSpec(
        "serve.throughput_rps",
        HIGHER,
        0.30,
        "serving throughput at the native schedule",
    ),
    GateSpec(
        "serve.latency_p99_s",
        LOWER,
        0.35,
        "simulated open-loop p99 latency",
    ),
    GateSpec(
        "serve.saturation_rps",
        HIGHER,
        0.30,
        "highest offered rate meeting the p99 bound",
    ),
    GateSpec(
        "overload.goodput_rps",
        HIGHER,
        0.30,
        "fresh answers per second at 2x the saturation rate",
    ),
    GateSpec(
        "overload.admitted_p99_s",
        LOWER,
        0.35,
        "p99 latency over admitted requests at 2x saturation",
    ),
)


@dataclass(frozen=True)
class GateFinding:
    """One indicator outside its band versus the baseline."""

    indicator: str
    direction: str
    candidate: float
    baseline: float
    noise_band: float
    #: Relative change, signed so that positive is *worse*.
    worse_by: float

    def render(self) -> str:
        return (
            f"{self.indicator}: {self.candidate:.6g} vs baseline "
            f"{self.baseline:.6g} ({self.direction} is better) — "
            f"{100 * self.worse_by:.1f}% worse, band "
            f"{100 * self.noise_band:.0f}%"
        )


def indicator_value(record: Mapping[str, Any], indicator: str) -> Optional[float]:
    """``legs``-relative dotted lookup; None when the leg/field is absent."""
    node: Any = record.get("legs", {})
    for part in indicator.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def baseline_records(
    history: Sequence[Mapping[str, Any]], candidate: Mapping[str, Any]
) -> List[Mapping[str, Any]]:
    """Prior records comparable to ``candidate`` (same config fingerprint)."""
    fingerprint = candidate.get("config_fingerprint")
    return [
        record
        for record in history
        if record is not candidate
        and record.get("config_fingerprint") == fingerprint
    ]


def evaluate_gate(
    candidate: Mapping[str, Any],
    baselines: Sequence[Mapping[str, Any]],
    gates: Sequence[GateSpec] = GATES,
) -> List[GateFinding]:
    """Every gated indicator of ``candidate`` outside its noise band.

    The baseline per indicator is the median over ``baselines`` that
    carry it; indicators absent from the candidate or from every
    baseline are skipped (a new leg starts its own history).  The
    number of regressions found is surfaced through the
    ``bench.gate_regressions`` counter.
    """
    findings: List[GateFinding] = []
    for gate in gates:
        value = indicator_value(candidate, gate.indicator)
        if value is None:
            continue
        prior = [
            v
            for record in baselines
            if (v := indicator_value(record, gate.indicator)) is not None
        ]
        if not prior:
            continue
        baseline = statistics.median(prior)
        if baseline == 0:
            continue
        if gate.direction == HIGHER:
            worse_by = (baseline - value) / abs(baseline)
        else:
            worse_by = (value - baseline) / abs(baseline)
        if worse_by > gate.noise_band:
            findings.append(
                GateFinding(
                    indicator=gate.indicator,
                    direction=gate.direction,
                    candidate=value,
                    baseline=baseline,
                    noise_band=gate.noise_band,
                    worse_by=worse_by,
                )
            )
    if findings:
        obs.add("bench.gate_regressions", len(findings))
    return findings


def diff_lines(
    candidate: Mapping[str, Any],
    baselines: Sequence[Mapping[str, Any]],
    gates: Sequence[GateSpec] = GATES,
) -> List[str]:
    """Human-readable per-indicator comparison (informational)."""
    lines: List[str] = []
    for gate in gates:
        value = indicator_value(candidate, gate.indicator)
        prior = [
            v
            for record in baselines
            if (v := indicator_value(record, gate.indicator)) is not None
        ]
        if value is None:
            lines.append(f"{gate.indicator:<28s} (absent from candidate)")
            continue
        if not prior:
            lines.append(
                f"{gate.indicator:<28s} {value:>12.6g}  (no baseline)"
            )
            continue
        baseline = statistics.median(prior)
        delta = (
            (value - baseline) / abs(baseline) if baseline else float("nan")
        )
        lines.append(
            f"{gate.indicator:<28s} {value:>12.6g}  baseline "
            f"{baseline:>12.6g}  ({100 * delta:+.1f}%, "
            f"{gate.direction} is better, band "
            f"{100 * gate.noise_band:.0f}%)"
        )
    return lines


__all__ = [
    "GATES",
    "GateFinding",
    "GateSpec",
    "HIGHER",
    "LOWER",
    "baseline_records",
    "diff_lines",
    "evaluate_gate",
    "indicator_value",
]
