"""The micro benchmark legs ``repro-bench run`` measures.

Three legs, sized to finish in seconds so the CI gate stays cheap:

- **build** — the end-to-end session-level measurement chain
  (generation → GTP → probe → DPI → aggregation) at a small subscriber
  count; records/s and peak RSS are the gated indicators.
- **serve** — a volume-level dataset indexed once, then driven by the
  open-loop load harness (:mod:`repro.serve.load`); throughput,
  histogram-derived p99, and the saturation point are gated.
- **overload** — the same engine driven at 1×/2×/4× its measured
  saturation rate under admission control
  (:mod:`repro.serve.overload`); goodput, shed rate, and admitted-p99
  at 2× are the headline figures, with goodput and admitted-p99 gated.

Each leg increments the ``bench.legs`` counter and returns a plain
dict that lands under ``legs`` in the history record.  The leg values
are wall-clock measurements (timing class) — they are written to the
history store and compared against noise bands there, never emitted
through deterministic metrics or the event log.

``python -m pytest benchmarks/`` measures the same subsystems at full
size; these legs are the *tracked* micro variant whose run-to-run noise
the :mod:`repro.bench.contract` bands are calibrated for.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro import obs
from repro.obs import clock

#: The default micro-leg configuration (fingerprinted into records).
DEFAULT_CONFIG: Dict[str, Any] = {
    "subscribers": 300,
    "communes": 48,
    "services": 60,
    "seed": 7,
    "duration_s": 5.0,
    "users": 50.0,
    "rpm": 60.0,
    "window": 5.0,
    "deadline_ms": 50.0,
}

#: Offered-rate multiples of the measured saturation the overload leg
#: probes; the middle one is the headline.
OVERLOAD_MULTIPLIERS = (1, 2, 4)


def run_build_leg(config: Mapping[str, Any] = DEFAULT_CONFIG) -> Dict[str, Any]:
    """Time one end-to-end session-level build; returns the leg payload."""
    from repro.dataset.builder import build_session_level_dataset
    from repro.geo.country import CountryConfig

    start = clock.now_s()
    artifacts = build_session_level_dataset(
        n_subscribers=int(config["subscribers"]),
        country_config=CountryConfig(n_communes=int(config["communes"])),
        n_services=int(config["services"]),
        seed=int(config["seed"]),
    )
    elapsed = clock.now_s() - start
    stats = artifacts.extras["generator"]
    records = int(stats.flows_generated)
    obs.add("bench.legs")
    return {
        "elapsed_s": elapsed,
        "sessions": int(stats.sessions_generated),
        "records": records,
        "records_per_s": records / elapsed if elapsed > 0 else 0.0,
        "peak_rss_bytes": clock.peak_rss_bytes(),
    }


def run_serve_leg(config: Mapping[str, Any] = DEFAULT_CONFIG) -> Dict[str, Any]:
    """Index a volume-level dataset and drive it with the load harness."""
    from repro.dataset.builder import build_volume_level_dataset
    from repro.geo.country import CountryConfig
    from repro.serve.engine import ServeEngine
    from repro.serve.load import run_load
    from repro.serve.workload import WorkloadSpec, generate_schedule

    dataset = build_volume_level_dataset(
        country_config=CountryConfig(n_communes=int(config["communes"])),
        n_services=int(config["services"]),
        seed=int(config["seed"]),
    ).dataset

    start = clock.now_s()
    engine = ServeEngine(dataset)
    index_elapsed = clock.now_s() - start

    spec = WorkloadSpec(
        duration_s=float(config["duration_s"]),
        mean_active_users=float(config["users"]),
        mean_requests_per_minute_per_user=float(config["rpm"]),
        user_sampling_window_s=float(config["window"]),
    )
    requests = generate_schedule(spec, engine.profile, int(config["seed"]))

    start = clock.now_s()
    report = run_load(engine, requests)
    harness_elapsed = clock.now_s() - start
    obs.add("bench.legs")
    return {
        "index_build_s": index_elapsed,
        "harness_elapsed_s": harness_elapsed,
        "n_requests": report.n_requests,
        "n_errors": report.n_errors,
        "throughput_rps": report.throughput_rps,
        "latency_p50_s": report.latency_p50_s,
        "latency_p99_s": report.latency_p99_s,
        "saturation_rps": report.saturation_rps,
        "cache_hit_rate": report.cache_hit_rate,
        "peak_rss_bytes": clock.peak_rss_bytes(),
    }


def run_overload_leg(
    config: Mapping[str, Any] = DEFAULT_CONFIG,
) -> Dict[str, Any]:
    """Drive the engine at multiples of its measured saturation rate.

    One baseline harness pass measures the saturation point; the
    schedule is then compressed so the offered rate hits each multiple
    in :data:`OVERLOAD_MULTIPLIERS`, with a token bucket sized to the
    saturation rate — so the 2× and 4× probes exercise real shedding,
    deadline misses (every request carries the configured budget), and
    the degraded-answer path.  The headline figures come from the 2×
    probe; ``goodput_rps`` and ``admitted_p99_s`` are the gated pair.
    """
    from dataclasses import replace

    from repro.dataset.builder import build_volume_level_dataset
    from repro.geo.country import CountryConfig
    from repro.serve.engine import ServeEngine
    from repro.serve.load import run_load
    from repro.serve.overload import OverloadPolicy
    from repro.serve.workload import WorkloadSpec, generate_schedule

    dataset = build_volume_level_dataset(
        country_config=CountryConfig(n_communes=int(config["communes"])),
        n_services=int(config["services"]),
        seed=int(config["seed"]),
    ).dataset
    engine = ServeEngine(dataset)
    spec = WorkloadSpec(
        duration_s=float(config["duration_s"]),
        mean_active_users=float(config["users"]),
        mean_requests_per_minute_per_user=float(config["rpm"]),
        user_sampling_window_s=float(config["window"]),
        interactive_deadline_ms=float(config["deadline_ms"]),
        batch_deadline_ms=float(config["deadline_ms"]),
    )
    requests = generate_schedule(spec, engine.profile, int(config["seed"]))

    baseline = run_load(engine, requests)
    # Saturation can come back 0.0 when even the slowest probe violated
    # the bound; fall back to the offered rate so the probes still run.
    saturation = baseline.saturation_rps or baseline.offered_rps or 1.0
    offered = baseline.offered_rps or 1.0
    policy = OverloadPolicy(
        seed=int(config["seed"]), tokens_per_s=max(saturation, 1.0)
    )

    start = clock.now_s()
    probes: Dict[str, Dict[str, Any]] = {}
    for multiplier in OVERLOAD_MULTIPLIERS:
        factor = offered / (multiplier * saturation)
        scaled = [
            replace(
                request,
                arrival_offset_ms=request.arrival_offset_ms * factor,
            )
            for request in requests
        ]
        report = run_load(engine, scaled, overload=policy)
        section = report.overload
        assert section is not None
        probes[f"{multiplier}x"] = {
            "offered_rps": report.offered_rps,
            "goodput_rps": section["goodput_rps"],
            "shed_rate": section["shed_rate"],
            "admitted_p99_s": section["admitted_p99_s"],
            "n_deadline_exceeded": section["n_deadline_exceeded"],
            "health": section["health"]["state"],
        }
    elapsed = clock.now_s() - start
    headline = probes["2x"]
    obs.add("bench.legs")
    return {
        "harness_elapsed_s": elapsed,
        "saturation_rps": saturation,
        "n_requests": baseline.n_requests,
        "at": probes,
        "goodput_rps": headline["goodput_rps"],
        "shed_rate": headline["shed_rate"],
        "admitted_p99_s": headline["admitted_p99_s"],
        "peak_rss_bytes": clock.peak_rss_bytes(),
    }


def run_legs(config: Mapping[str, Any] = DEFAULT_CONFIG) -> Dict[str, Any]:
    """Every leg, in declaration order — the record's ``legs`` payload."""
    return {
        "build": run_build_leg(config),
        "serve": run_serve_leg(config),
        "overload": run_overload_leg(config),
    }


__all__ = [
    "DEFAULT_CONFIG",
    "OVERLOAD_MULTIPLIERS",
    "run_build_leg",
    "run_legs",
    "run_overload_leg",
    "run_serve_leg",
]
