"""The append-only benchmark history store (``benchmarks/history.jsonl``).

One JSON object per line, canonical encoding (sorted keys, compact
separators), schema-versioned::

    {"schema": "repro-bench/1",
     "git_sha": "<commit or 'unknown'>",
     "config_fingerprint": "<sha256[:16] of the canonical config>",
     "config": {...},
     "legs": {"build": {...}, "serve": {...}}}

Records deliberately carry **no wall-clock timestamps**: ordering is
the file's append order plus the git SHA, so the store diffs cleanly
in review and two runs of the same commit/config are comparable
line-for-line.  The leg payloads themselves hold measured values
(throughput, percentiles, RSS) — those are the *subject* of the store,
not its identity.

Comparability is the fingerprint's job: ``repro-bench gate`` only
baselines a candidate against prior records whose
``config_fingerprint`` matches, so changing the benchmark shape starts
a fresh baseline instead of producing false regressions.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro import obs

#: Record schema identifier; bump on incompatible layout changes.
SCHEMA = "repro-bench/1"

_REQUIRED_KEYS = ("schema", "git_sha", "config_fingerprint", "config", "legs")


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """sha256 (first 16 hex chars) of the canonical config encoding.

    Pure function of the configuration content — key order at the call
    site does not matter.
    """
    canonical = json.dumps(dict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_sha(root: Optional[Union[str, Path]] = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def make_record(
    config: Mapping[str, Any],
    legs: Mapping[str, Any],
    sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one stamped history record (schema + SHA + fingerprint)."""
    return {
        "schema": SCHEMA,
        "git_sha": sha if sha is not None else git_sha(),
        "config_fingerprint": config_fingerprint(config),
        "config": dict(config),
        "legs": dict(legs),
    }


def validate_record(record: Any) -> Dict[str, Any]:
    """Return ``record`` if well-formed, raise ``ValueError`` otherwise."""
    if not isinstance(record, dict):
        raise ValueError(f"history record must be an object, got {type(record).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"history record is missing {key!r}")
    if record["schema"] != SCHEMA:
        raise ValueError(
            f"history record schema {record['schema']!r} != {SCHEMA!r}"
        )
    if not isinstance(record["legs"], dict) or not record["legs"]:
        raise ValueError("history record has no legs")
    if record["config_fingerprint"] != config_fingerprint(record["config"]):
        raise ValueError(
            "history record fingerprint does not match its config"
        )
    return record


def render_record(record: Mapping[str, Any]) -> str:
    """Canonical single-line encoding of one record."""
    return json.dumps(dict(record), sort_keys=True, separators=(",", ":"))


def append_record(
    path: Union[str, Path], record: Mapping[str, Any]
) -> Dict[str, Any]:
    """Validate and append one record line; returns the record."""
    validated = validate_record(dict(record))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(render_record(validated) + "\n")
    obs.add("bench.history_appends")
    return validated


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every record in the store, in append order.

    Raises ``ValueError`` on a malformed line — a corrupt history must
    fail the gate loudly, not silently shrink the baseline.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            try:
                records.append(validate_record(parsed))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    return records


__all__ = [
    "SCHEMA",
    "append_record",
    "config_fingerprint",
    "git_sha",
    "load_history",
    "make_record",
    "render_record",
    "validate_record",
]
