"""The performance-regression observatory (``repro-bench``).

Turns the repository's benchmark legs into a *tracked* signal: every
run is stamped with the schema version, the git commit, and a
fingerprint of its configuration, appended to the append-only history
store ``benchmarks/history.jsonl``, and gated against the noise-banded
indicator contract in :mod:`repro.bench.contract`.  A regression —
records/s or saturation dropping, p99 or peak RSS growing beyond a
declared band versus the median of comparable prior runs — exits ``1``
through the shared CLI contract (:mod:`repro._exit`), which is what the
CI ``bench-gate`` job enforces.

Records hold measured values (wall-clock throughput, latency
percentiles, RSS) but no wall-clock *timestamps*: ordering is the
file's append order plus the git SHA, so the store itself diffs
cleanly and two runs of the same commit and config are comparable
line-for-line.  See ``docs/observability.md``.
"""

from repro.bench.contract import GATES, GateFinding, GateSpec, evaluate_gate
from repro.bench.history import (
    SCHEMA,
    append_record,
    config_fingerprint,
    git_sha,
    load_history,
    make_record,
    validate_record,
)
from repro.bench.legs import DEFAULT_CONFIG, run_build_leg, run_legs, run_serve_leg

__all__ = [
    "DEFAULT_CONFIG",
    "GATES",
    "GateFinding",
    "GateSpec",
    "SCHEMA",
    "append_record",
    "config_fingerprint",
    "evaluate_gate",
    "git_sha",
    "load_history",
    "make_record",
    "run_build_leg",
    "run_legs",
    "run_serve_leg",
    "validate_record",
]
