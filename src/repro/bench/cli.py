"""``repro-bench`` command-line interface.

Examples::

    repro-bench run --history benchmarks/history.jsonl
    repro-bench run --history benchmarks/history.jsonl \\
        --prom-out bench.prom --trace-out bench.trace.json
    repro-bench diff --history benchmarks/history.jsonl
    repro-bench gate --history benchmarks/history.jsonl

``run`` executes the micro legs (:mod:`repro.bench.legs`) under an
observed session, stamps the results with the schema version, git SHA,
and config fingerprint, and appends the record to the history store.
``diff`` prints each gated indicator of the newest record against the
median of comparable prior records.  ``gate`` applies the noise-banded
contract (:mod:`repro.bench.contract`) and follows the shared exit
contract in :mod:`repro._exit`: ``0`` ok (including a fresh history
with no comparable baseline), ``1`` at least one indicator regressed
beyond its band, ``2`` usage error or unreadable input, ``3`` internal
failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._exit import EXIT_FINDINGS, EXIT_INTERNAL, EXIT_OK, EXIT_USAGE
from repro.bench import contract as bench_contract
from repro.bench import history as bench_history
from repro.bench import legs as bench_legs
from repro.obs import prom as obs_prom
from repro.obs import runtime
from repro.obs import trace as obs_trace

DEFAULT_HISTORY = "benchmarks/history.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Run tracked micro benchmark legs, append them to the "
            "history store, and gate regressions against noise bands "
            "(docs/observability.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run the micro legs and append a stamped record"
    )
    run.add_argument(
        "--history",
        metavar="PATH",
        default=DEFAULT_HISTORY,
        help=f"history store to append to (default: {DEFAULT_HISTORY})",
    )
    run.add_argument(
        "--no-append",
        action="store_true",
        help="print the record without touching the history store",
    )
    for key, value in bench_legs.DEFAULT_CONFIG.items():
        run.add_argument(
            f"--{key.replace('_', '-')}",
            type=type(value),
            default=value,
            dest=f"cfg_{key}",
            help=f"leg config {key} (default: {value})",
        )
    run.add_argument(
        "--prom-out",
        metavar="PATH",
        default=None,
        help="write the session's Prometheus exposition here",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome-trace JSON of the span tree here",
    )

    for name, help_text in (
        (
            "diff",
            "compare the newest record against its baseline (informational)",
        ),
        ("gate", "fail (exit 1) when a gated indicator regressed"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--history", metavar="PATH", default=DEFAULT_HISTORY)
        cmd.add_argument(
            "--candidate",
            metavar="PATH",
            default=None,
            help=(
                "use this record (JSON file) instead of the history's "
                "newest line"
            ),
        )
    return parser


def _config_from(args: argparse.Namespace) -> dict:
    return {
        key: getattr(args, f"cfg_{key}")
        for key in bench_legs.DEFAULT_CONFIG
    }


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    with runtime.observed() as session:
        legs = bench_legs.run_legs(config)
        record = bench_history.make_record(config, legs)
        if not args.no_append:
            bench_history.append_record(args.history, record)
        dump = session.export(meta={"command": "bench-run"})
    if args.prom_out:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(obs_prom.render_prom(dump))
        print(f"exposition written to {args.prom_out}", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(
                obs_trace.render_trace_json(obs_trace.to_chrome_trace(dump))
            )
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    print(bench_history.render_record(record))
    if not args.no_append:
        print(f"record appended to {args.history}", file=sys.stderr)
    return EXIT_OK


def _candidate_and_baselines(args: argparse.Namespace):
    history = bench_history.load_history(args.history)
    if args.candidate:
        with open(args.candidate, "r", encoding="utf-8") as handle:
            candidate = bench_history.validate_record(json.load(handle))
    elif history:
        candidate = history[-1]
        history = history[:-1]
    else:
        raise ValueError(f"history store {args.history} is empty")
    return candidate, bench_contract.baseline_records(history, candidate)


def _cmd_diff(args: argparse.Namespace) -> int:
    candidate, baselines = _candidate_and_baselines(args)
    print(
        f"candidate {candidate['git_sha'][:12]} config "
        f"{candidate['config_fingerprint']} vs {len(baselines)} baseline "
        "record(s):"
    )
    for line in bench_contract.diff_lines(candidate, baselines):
        print(f"  {line}")
    return EXIT_OK


def _cmd_gate(args: argparse.Namespace) -> int:
    candidate, baselines = _candidate_and_baselines(args)
    if not baselines:
        print(
            "repro-bench: no comparable baseline (fresh config "
            "fingerprint) — gate passes vacuously",
            file=sys.stderr,
        )
        return EXIT_OK
    findings = bench_contract.evaluate_gate(candidate, baselines)
    if findings:
        for finding in findings:
            print(f"repro-bench: REGRESSION {finding.render()}", file=sys.stderr)
        return EXIT_FINDINGS
    print(
        f"repro-bench: {len(bench_contract.GATES)} gated indicators within "
        f"their noise bands ({len(baselines)} baseline record(s))",
        file=sys.stderr,
    )
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "gate":
            return _cmd_gate(args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-bench: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
