"""``python -m repro.bench`` — alias for the ``repro-bench`` script."""

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
