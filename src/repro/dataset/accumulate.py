"""Chunk-invariant streaming accumulation of float totals.

The streaming build (``--chunk-size``) feeds the aggregator the same
global record stream as the in-memory build, just partitioned into
different columnar chunks.  Tensor accumulation via ``np.add.at`` is
already partition-invariant — it applies unbuffered, element-by-element
in-order adds — but a naive per-chunk ``total += chunk.sum()`` is not:
NumPy's pairwise summation associates differently for different chunk
lengths, so the same stream summed under two chunk sizes can differ in
the last bits.

:class:`BlockSumAccumulator` restores partition invariance by
re-buffering the incoming values into fixed-size blocks aligned to the
*global* stream index.  Each full block is reduced with one
``np.sum`` (pairwise over a constant length) and the block sums are
folded left-to-right; the tail shorter than a block is reduced the same
way at read time.  Block boundaries depend only on how many values have
been seen — never on how the stream was chunked for delivery — so the
result is bit-identical for every chunking of the same stream,
including one-value-at-a-time scalar feeds.
"""

from __future__ import annotations

import numpy as np

#: Values per summation block.  Must stay fixed across the paths being
#: compared — it is part of the byte-identity contract, not a tuning
#: knob.
BLOCK_VALUES = 4096


class BlockSumAccumulator:
    """Streaming float64 sum whose bits don't depend on chunking."""

    __slots__ = ("_block", "_buffer", "_filled", "_total")

    def __init__(self, block: int = BLOCK_VALUES):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._block = int(block)
        self._buffer = np.empty(self._block, dtype=np.float64)
        self._filled = 0
        self._total = 0.0

    def add(self, value: float) -> None:
        """Feed one value (the scalar-ingest path)."""
        self._buffer[self._filled] = value
        self._filled += 1
        if self._filled == self._block:
            self._total += float(np.sum(self._buffer))
            self._filled = 0

    def update(self, values: np.ndarray) -> None:
        """Feed a chunk of values in stream order."""
        values = np.asarray(values, dtype=np.float64).ravel()
        n = values.size
        start = 0
        while start < n:
            take = min(self._block - self._filled, n - start)
            self._buffer[self._filled:self._filled + take] = (
                values[start:start + take]
            )
            self._filled += take
            start += take
            if self._filled == self._block:
                self._total += float(np.sum(self._buffer))
                self._filled = 0

    @property
    def count_mod_block(self) -> int:
        """Values currently buffered (stream length modulo the block)."""
        return self._filled

    @property
    def value(self) -> float:
        """Sum of everything fed so far.

        A pure function of the value stream's content: folded block sums
        plus one pairwise reduction of the partial tail block.
        """
        if self._filled:
            return self._total + float(np.sum(self._buffer[: self._filled]))
        return self._total


__all__ = ["BLOCK_VALUES", "BlockSumAccumulator"]
