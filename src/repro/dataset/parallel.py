"""Sharded execution of the session-level measurement chain.

The session-level pipeline is embarrassingly parallel across
subscribers: each subscriber's week touches only their own sessions, and
every downstream structure (aggregation tensors, national counters,
per-commune user sets, DPI/probe accounting) is a sum over subscribers.
This module partitions the population into shards, runs one full
generator → probe → DPI → aggregation chain per shard, and reduces the
plain partial states back into one aggregator on the parent.

Determinism contract: shard RNG streams are spawned by the *parent* from
the builder seed (``spawn(rng, "builder.shard", index=i)``), one per
shard in index order, and shard partials are merged in index order.
Results are therefore a function of ``(seed, n_shards)`` only —
``n_workers`` changes wall-clock, never a single bit of the dataset.

Workers are forked (copy-on-write) so the shared read-only artifacts
(country, intensity model, topology, population) are not pickled;
only the compact :class:`ShardResult` partials travel back.  Platforms
without ``fork`` fall back to in-process execution.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro import obs
from repro._rng import spawn
from repro._time import TimeAxis
from repro.dataset.aggregation import CommuneAggregator
from repro.dpi.classifier import ClassificationReport, DpiEngine
from repro.dpi.fingerprints import FingerprintDatabase
from repro.geo.country import Country
from repro.network.handover import HandoverStats
from repro.network.probes import CoreProbe, ProbeStats
from repro.network.topology import NetworkTopology
from repro.services.catalog import ServiceCatalog
from repro.traffic.generator import SessionLevelGenerator, WorkloadConfig
from repro.traffic.intensity import IntensityModel
from repro.traffic.subscribers import Subscriber, SubscriberPopulation


@dataclass
class ShardPlan:
    """Everything a shard worker needs, prepared on the parent."""

    country: Country
    catalog: ServiceCatalog
    model: IntensityModel
    topology: NetworkTopology
    axis: TimeAxis
    workload_config: WorkloadConfig
    unclassifiable_rate: float
    control_loss_rate: float
    shard_subscribers: List[List[Subscriber]]
    shard_rngs: List[np.random.Generator]

    @property
    def n_shards(self) -> int:
        return len(self.shard_subscribers)


@dataclass
class ShardResult:
    """One shard's partial state — plain arrays/sets, picklable.

    Carries exactly the attributes
    :meth:`~repro.dataset.aggregation.CommuneAggregator.merge` consumes,
    plus the generator/probe/DPI accounting the builder folds into its
    merged facades.  Worker processes return these instead of live
    aggregator or engine objects (whose memoization caches are not
    picklable, and whose state the parent does not need).
    """

    shard_index: int
    dl: np.ndarray
    ul: np.ndarray
    national_dl: np.ndarray
    national_ul: np.ndarray
    unclassified_bytes: float
    total_bytes: float
    records_ingested: int
    users_seen: List[Set[int]]
    report: ClassificationReport
    probe_stats: ProbeStats
    handover_stats: HandoverStats
    sessions_generated: int
    flows_generated: int
    #: Observability snapshot (counters + span tree) captured inside the
    #: shard, or None when the parent ran without observation enabled.
    obs_export: Optional[dict] = None


class MergedHandover:
    """Stand-in for a generator's ``_handover`` in sharded runs."""

    def __init__(self, stats: HandoverStats):
        self.stats = stats


class MergedGeneratorStats:
    """Read-only stand-in for the generator object in sharded extras.

    Exposes the counters downstream consumers read
    (``sessions_generated``, ``flows_generated``, ``_handover.stats``);
    the live per-shard generators never leave their workers.
    """

    def __init__(
        self,
        sessions_generated: int,
        flows_generated: int,
        handover_stats: HandoverStats,
    ):
        self.sessions_generated = sessions_generated
        self.flows_generated = flows_generated
        self._handover = MergedHandover(handover_stats)


class MergedProbeStats:
    """Read-only stand-in for the probe object in sharded extras."""

    def __init__(self, stats: ProbeStats):
        self.stats = stats


def partition_subscribers(
    population: SubscriberPopulation, n_shards: int
) -> List[List[Subscriber]]:
    """Split a population into ``n_shards`` contiguous subscriber blocks."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    slices = np.array_split(np.arange(len(population.subscribers)), n_shards)
    return [
        [population.subscribers[int(j)] for j in idx] for idx in slices
    ]


def run_shard(plan: ShardPlan, shard_index: int) -> ShardResult:
    """Run the full measurement chain for one shard of subscribers.

    When the parent runs under :func:`repro.obs.observed`, the shard's
    metrics and spans are captured into a private session (fork-safe)
    and travel back on :attr:`ShardResult.obs_export` for the parent to
    absorb in shard-index order.
    """
    with obs.shard_capture(f"shard[{shard_index}]") as capture:
        result = _run_shard(plan, shard_index)
    result.obs_export = capture.export
    return result


def _run_shard(plan: ShardPlan, shard_index: int) -> ShardResult:
    srng = plan.shard_rngs[shard_index]
    engine = DpiEngine(FingerprintDatabase(plan.catalog, seed=0))
    aggregator = CommuneAggregator(
        plan.country, plan.catalog, engine, axis=plan.axis
    )
    subscribers = plan.shard_subscribers[shard_index]
    if not subscribers:
        return _shard_result(
            shard_index, aggregator, engine, ProbeStats(), HandoverStats(), 0, 0
        )
    population = SubscriberPopulation(subscribers, plan.country)
    fingerprints = FingerprintDatabase(
        plan.catalog,
        unclassifiable_rate=plan.unclassifiable_rate,
        seed=spawn(srng, "shard.fingerprints"),
    )
    generator = SessionLevelGenerator(
        plan.model,
        population,
        plan.topology,
        fingerprints,
        config=plan.workload_config,
        seed=spawn(srng, "shard.generator"),
    )
    probe = CoreProbe(
        control_loss_rate=plan.control_loss_rate,
        seed=spawn(srng, "shard.probe"),
    )
    probe.attach_to(generator.session_manager)
    probe.attach_to_bulk(generator.session_manager)
    generator.run_week()
    for batch in probe.drain_batches():
        aggregator.ingest_columnar(batch)
    return _shard_result(
        shard_index,
        aggregator,
        engine,
        probe.stats,
        generator._handover.stats,
        generator.sessions_generated,
        generator.flows_generated,
    )


def _shard_result(
    shard_index: int,
    aggregator: CommuneAggregator,
    engine: DpiEngine,
    probe_stats: ProbeStats,
    handover_stats: HandoverStats,
    sessions_generated: int,
    flows_generated: int,
) -> ShardResult:
    return ShardResult(
        shard_index=shard_index,
        dl=aggregator.dl,
        ul=aggregator.ul,
        national_dl=aggregator.national_dl,
        national_ul=aggregator.national_ul,
        unclassified_bytes=aggregator.unclassified_bytes,
        total_bytes=aggregator.total_bytes,
        records_ingested=aggregator.records_ingested,
        users_seen=aggregator.users_seen,
        report=engine.report,
        probe_stats=probe_stats,
        handover_stats=handover_stats,
        sessions_generated=sessions_generated,
        flows_generated=flows_generated,
    )


# Fork-inherited worker state: set on the parent immediately before the
# pool is created, read by the forked children, cleared afterwards.
_WORKER_PLAN: Optional[ShardPlan] = None


def _run_shard_by_index(shard_index: int) -> ShardResult:
    assert _WORKER_PLAN is not None, "worker invoked without a shard plan"
    return run_shard(_WORKER_PLAN, shard_index)


def execute_shards(plan: ShardPlan, n_workers: int) -> List[ShardResult]:
    """Run every shard, across ``n_workers`` processes when possible.

    Shard results are identical whether shards run in-process or in
    worker processes (each shard consumes only its own parent-spawned
    RNG stream), so the in-process path doubles as the fallback on
    platforms without ``fork``.
    """
    n_shards = plan.n_shards
    if n_workers <= 1 or n_shards == 1:
        return [run_shard(plan, i) for i in range(n_shards)]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return [run_shard(plan, i) for i in range(n_shards)]
    global _WORKER_PLAN
    _WORKER_PLAN = plan
    try:
        with context.Pool(processes=min(n_workers, n_shards)) as pool:
            results = pool.map(_run_shard_by_index, range(n_shards))
    finally:
        _WORKER_PLAN = None
    return sorted(results, key=lambda result: result.shard_index)


__all__ = [
    "ShardPlan",
    "ShardResult",
    "MergedGeneratorStats",
    "MergedProbeStats",
    "partition_subscribers",
    "run_shard",
    "execute_shards",
]
