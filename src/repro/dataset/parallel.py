"""Sharded execution of the session-level measurement chain.

The session-level pipeline is embarrassingly parallel across
subscribers: each subscriber's week touches only their own sessions, and
every downstream structure (aggregation tensors, national counters,
per-commune user sets, DPI/probe accounting) is a sum over subscribers.
This module partitions the population into shards, runs one full
generator → probe → DPI → aggregation chain per shard, and reduces the
plain partial states back into one aggregator on the parent.

Determinism contract: shard RNG streams are spawned by the *parent* from
the builder seed (``spawn(rng, "builder.shard", index=i)``), one per
shard in index order, and shard partials are merged in index order.
Results are therefore a function of ``(seed, n_shards)`` only —
``n_workers`` changes wall-clock, never a single bit of the dataset.

Workers are forked (copy-on-write) so the shared read-only artifacts
(country, intensity model, topology, population) are not pickled;
only the compact :class:`ShardResult` partials travel back.  Platforms
without ``fork`` fall back to in-process execution.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

import numpy as np

from repro import obs
from repro._rng import spawn
from repro.resilience.faults import (
    drop_fraction_for,
    fire_stage_faults,
    wants_corrupt_result,
)
from repro._time import TimeAxis
from repro.dataset.aggregation import CommuneAggregator
from repro.dpi.classifier import ClassificationReport, DpiEngine
from repro.dpi.fingerprints import FingerprintDatabase
from repro.geo.country import Country
from repro.network.handover import HandoverStats
from repro.network.probes import CoreProbe, ProbeStats
from repro.network.topology import NetworkTopology
from repro.services.catalog import ServiceCatalog
from repro.traffic.generator import SessionLevelGenerator, WorkloadConfig
from repro.traffic.intensity import IntensityModel
from repro.traffic.subscribers import Subscriber, SubscriberPopulation


@dataclass
class ShardPlan:
    """Everything a shard worker needs, prepared on the parent."""

    country: Country
    catalog: ServiceCatalog
    model: IntensityModel
    topology: NetworkTopology
    axis: TimeAxis
    workload_config: WorkloadConfig
    unclassifiable_rate: float
    control_loss_rate: float
    shard_subscribers: List[List[Subscriber]]
    shard_rngs: List[np.random.Generator]
    #: Records per streamed probe chunk inside each shard; ``None``
    #: materializes the whole shard before aggregating (legacy path).
    #: Bit-identical either way — see ``builder.build_session_level_dataset``.
    chunk_size: Optional[int] = 8192

    @property
    def n_shards(self) -> int:
        return len(self.shard_subscribers)


@dataclass
class ShardResult:
    """One shard's partial state — plain arrays/sets, picklable.

    Carries exactly the attributes
    :meth:`~repro.dataset.aggregation.CommuneAggregator.merge` consumes,
    plus the generator/probe/DPI accounting the builder folds into its
    merged facades.  Worker processes return these instead of live
    aggregator or engine objects (whose memoization caches are not
    picklable, and whose state the parent does not need).
    """

    shard_index: int
    dl: np.ndarray
    ul: np.ndarray
    national_dl: np.ndarray
    national_ul: np.ndarray
    unclassified_bytes: float
    total_bytes: float
    records_ingested: int
    users_seen: List[Set[int]]
    report: ClassificationReport
    probe_stats: ProbeStats
    handover_stats: HandoverStats
    sessions_generated: int
    flows_generated: int
    #: Observability snapshot (counters + span tree) captured inside the
    #: shard, or None when the parent ran without observation enabled.
    obs_export: Optional[dict] = None
    #: Probe records lost inside the shard (injected or real outage
    #: windows); surfaced so degraded coverage is accounted, not silent.
    records_dropped: int = 0


class MergedHandover:
    """Stand-in for a generator's ``_handover`` in sharded runs."""

    def __init__(self, stats: HandoverStats):
        self.stats = stats


class MergedGeneratorStats:
    """Read-only stand-in for the generator object in sharded extras.

    Exposes the counters downstream consumers read
    (``sessions_generated``, ``flows_generated``, ``_handover.stats``);
    the live per-shard generators never leave their workers.
    """

    def __init__(
        self,
        sessions_generated: int,
        flows_generated: int,
        handover_stats: HandoverStats,
    ):
        self.sessions_generated = sessions_generated
        self.flows_generated = flows_generated
        self._handover = MergedHandover(handover_stats)


class MergedProbeStats:
    """Read-only stand-in for the probe object in sharded extras."""

    def __init__(self, stats: ProbeStats):
        self.stats = stats


def partition_subscribers(
    population: SubscriberPopulation, n_shards: int
) -> List[List[Subscriber]]:
    """Split a population into ``n_shards`` contiguous subscriber blocks."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    slices = np.array_split(np.arange(len(population.subscribers)), n_shards)
    return [
        [population.subscribers[int(j)] for j in idx] for idx in slices
    ]


def run_shard(
    plan: ShardPlan,
    shard_index: int,
    faults: Sequence[Any] = (),
    in_worker: bool = False,
) -> ShardResult:
    """Run the full measurement chain for one shard of subscribers.

    When the parent runs under :func:`repro.obs.observed`, the shard's
    metrics and spans are captured into a private session (fork-safe)
    and travel back on :attr:`ShardResult.obs_export` for the parent to
    absorb in shard-index order.

    ``faults`` is the (normally empty) tuple of
    :class:`repro.resilience.faults.FaultSpec` addressed to this
    attempt; ``in_worker`` tells hang-class faults whether they can
    really block (worker process) or must surface synchronously
    (in-process execution).
    """
    with obs.shard_capture(f"shard[{shard_index}]") as capture:
        result = _run_shard(plan, shard_index, faults, in_worker)
    result.obs_export = capture.export
    return result


def _drop_batch_tail(batch, fraction: float):
    """Drop the trailing ``fraction`` of one probe batch (outage model).

    Deterministic by construction — the kept prefix depends only on the
    batch and the fraction — so an injected-drop scenario reproduces
    exactly.  Returns ``(kept_batch, n_dropped)``.
    """
    n = len(batch)
    keep = n - int(round(n * fraction))
    if keep >= n:
        return batch, 0
    kept = type(batch)(
        timestamps_s=batch.timestamps_s[:keep],
        imsi_hashes=batch.imsi_hashes[:keep],
        commune_ids=batch.commune_ids[:keep],
        tech_codes=batch.tech_codes[:keep],
        dl_bytes=batch.dl_bytes[:keep],
        ul_bytes=batch.ul_bytes[:keep],
        flow_ids=batch.flow_ids[:keep],
        snis=batch.snis[:keep],
        hosts=batch.hosts[:keep],
        payload_hints=batch.payload_hints[:keep],
        server_ports=batch.server_ports[:keep],
        protocols=batch.protocols[:keep],
    )
    return kept, n - keep


def _corrupt_result(result: ShardResult) -> ShardResult:
    """Damage a shard partial the way a torn capture file would."""
    if result.dl.size:
        result.dl.flat[0] = np.nan
    result.total_bytes = -abs(result.total_bytes) - 1.0
    return result


def _run_shard(
    plan: ShardPlan,
    shard_index: int,
    faults: Sequence[Any] = (),
    in_worker: bool = False,
) -> ShardResult:
    fire_stage_faults(faults, "generate", in_worker)
    srng = plan.shard_rngs[shard_index]
    engine = DpiEngine(FingerprintDatabase(plan.catalog, seed=0))
    aggregator = CommuneAggregator(
        plan.country, plan.catalog, engine, axis=plan.axis
    )
    subscribers = plan.shard_subscribers[shard_index]
    if not subscribers:
        result = _shard_result(
            shard_index, aggregator, engine, ProbeStats(), HandoverStats(), 0, 0
        )
        return _corrupt_result(result) if wants_corrupt_result(faults) else result
    population = SubscriberPopulation(subscribers, plan.country)
    fingerprints = FingerprintDatabase(
        plan.catalog,
        unclassifiable_rate=plan.unclassifiable_rate,
        seed=spawn(srng, "shard.fingerprints"),
    )
    generator = SessionLevelGenerator(
        plan.model,
        population,
        plan.topology,
        fingerprints,
        config=plan.workload_config,
        seed=spawn(srng, "shard.generator"),
    )
    probe = CoreProbe(
        control_loss_rate=plan.control_loss_rate,
        seed=spawn(srng, "shard.probe"),
    )
    probe.attach_to(generator.session_manager)
    probe.attach_to_bulk(generator.session_manager)
    drop_fraction = drop_fraction_for(faults)
    dropped_total = [0]
    if plan.chunk_size is not None:
        # Streamed: each probe chunk folds into the aggregator as soon
        # as it fills, so the shard never materializes its whole week.
        # The outage-drop fault clips each chunk's tail — deterministic
        # for a fixed chunk size, like the legacy per-batch clipping.
        def _ingest(batch) -> None:
            if drop_fraction > 0.0:
                batch, dropped = _drop_batch_tail(batch, drop_fraction)
                dropped_total[0] += dropped
            aggregator.ingest_columnar(batch)

        probe.stream_to(_ingest, chunk_rows=plan.chunk_size)
        generator.run_week(chunk_size=plan.chunk_size)
        fire_stage_faults(faults, "aggregate", in_worker)
        probe.flush_stream()
    else:
        generator.run_week()
        fire_stage_faults(faults, "aggregate", in_worker)
        for batch in probe.drain_batches():
            if drop_fraction > 0.0:
                batch, dropped = _drop_batch_tail(batch, drop_fraction)
                dropped_total[0] += dropped
            aggregator.ingest_columnar(batch)
    records_dropped = dropped_total[0]
    result = _shard_result(
        shard_index,
        aggregator,
        engine,
        probe.stats,
        generator._handover.stats,
        generator.sessions_generated,
        generator.flows_generated,
    )
    result.records_dropped = records_dropped
    fire_stage_faults(faults, "result", in_worker)
    return _corrupt_result(result) if wants_corrupt_result(faults) else result


def _shard_result(
    shard_index: int,
    aggregator: CommuneAggregator,
    engine: DpiEngine,
    probe_stats: ProbeStats,
    handover_stats: HandoverStats,
    sessions_generated: int,
    flows_generated: int,
) -> ShardResult:
    return ShardResult(
        shard_index=shard_index,
        dl=aggregator.dl,
        ul=aggregator.ul,
        national_dl=aggregator.national_dl,
        national_ul=aggregator.national_ul,
        unclassified_bytes=aggregator.unclassified_bytes,
        total_bytes=aggregator.total_bytes,
        records_ingested=aggregator.records_ingested,
        users_seen=aggregator.users_seen,
        report=engine.report,
        probe_stats=probe_stats,
        handover_stats=handover_stats,
        sessions_generated=sessions_generated,
        flows_generated=flows_generated,
    )


@dataclass
class WorkerContext:
    """Everything a pool worker needs, delivered via the initializer.

    Under the ``fork`` start method, initializer arguments are
    inherited copy-on-write — the heavy shared artifacts inside the
    plan are never pickled.  ``rng_states`` snapshots every shard
    stream *before* execution so any attempt of shard ``i`` — first
    try, retry, or a re-dispatch on a rebuilt pool — restores the
    identical generator state and reproduces the shard bit-for-bit.
    """

    plan: ShardPlan
    fault_plan: Optional[Any] = None
    rng_states: List[dict] = field(default_factory=list)

    @classmethod
    def for_plan(
        cls, plan: ShardPlan, fault_plan: Optional[Any] = None
    ) -> "WorkerContext":
        return cls(
            plan=plan,
            fault_plan=fault_plan,
            rng_states=[g.bit_generator.state for g in plan.shard_rngs],
        )

    def faults_for(self, shard_index: int, attempt: int) -> Sequence[Any]:
        if self.fault_plan is None:
            return ()
        return self.fault_plan.faults_for(shard_index, attempt)


# Worker-process-only context, installed by the pool initializer inside
# each forked child.  The parent process never assigns it, so plan state
# cannot leak between successive builds or into re-entrant use — the
# public executors assert it stays None on the parent.
_WORKER_CONTEXT: Optional[WorkerContext] = None


def _init_worker(context: WorkerContext) -> None:
    """Pool initializer: install the shard context in this worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def run_shard_attempt(
    context: WorkerContext,
    shard_index: int,
    attempt: int,
    in_worker: bool = False,
) -> ShardResult:
    """One supervised attempt: restore the shard RNG stream, then run.

    Restoring from the pre-execution snapshot makes attempts
    independent: a retry consumes exactly the stream the first try did,
    so a recovered build is bit-identical to an undisturbed one.
    """
    generator = context.plan.shard_rngs[shard_index]
    generator.bit_generator.state = context.rng_states[shard_index]
    return run_shard(
        context.plan,
        shard_index,
        faults=context.faults_for(shard_index, attempt),
        in_worker=in_worker,
    )


def _worker_run_shard(task: tuple) -> ShardResult:
    shard_index, attempt = task
    context = _WORKER_CONTEXT
    assert context is not None, "worker invoked without a shard context"
    return run_shard_attempt(context, shard_index, attempt, in_worker=True)


def execute_shards(plan: ShardPlan, n_workers: int) -> List[ShardResult]:
    """Run every shard, across ``n_workers`` processes when possible.

    The *bare* executor: no supervision, no retries — one worker
    failure fails the whole build.  It remains the minimal-overhead
    reference path (benchmarks measure the supervised executor against
    it); production builds go through
    :func:`repro.resilience.supervisor.execute_shards_supervised`.

    Shard results are identical whether shards run in-process or in
    worker processes (each shard consumes only its own parent-spawned
    RNG stream), so the in-process path doubles as the fallback on
    platforms without ``fork``.
    """
    n_shards = plan.n_shards
    if n_workers <= 1 or n_shards == 1:
        return [run_shard(plan, i) for i in range(n_shards)]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return [run_shard(plan, i) for i in range(n_shards)]
    worker_context = WorkerContext.for_plan(plan)
    with context.Pool(
        processes=min(n_workers, n_shards),
        initializer=_init_worker,
        initargs=(worker_context,),
    ) as pool:
        results = pool.map(
            _worker_run_shard, [(i, 0) for i in range(n_shards)]
        )
    assert _WORKER_CONTEXT is None, (
        "worker context leaked into the parent process"
    )
    return sorted(results, key=lambda result: result.shard_index)


__all__ = [
    "ShardPlan",
    "ShardResult",
    "MergedGeneratorStats",
    "MergedProbeStats",
    "WorkerContext",
    "partition_subscribers",
    "run_shard",
    "run_shard_attempt",
    "execute_shards",
]
