"""Command-line dataset tooling: ``repro-dataset``.

Examples::

    repro-dataset build --communes 1600 --seed 7 --out week.npz
    repro-dataset build --session --subscribers 2000 --out panel.npz
    repro-dataset info week.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro._units import format_bytes
from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass
from repro.report.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dataset",
        description="Build and inspect synthetic nationwide mobile traffic datasets.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="synthesize a dataset and save it")
    build.add_argument("--communes", type=int, default=1_600)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--out", required=True, metavar="PATH")
    build.add_argument(
        "--session",
        action="store_true",
        help="run the session-level pipeline instead of the volume model",
    )
    build.add_argument(
        "--subscribers",
        type=int,
        default=2_000,
        help="panel size for --session runs",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --session runs",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="subscriber shards for --session runs (defaults to --workers); "
        "results depend on (seed, shards) only, never on --workers",
    )

    info = sub.add_parser("info", help="summarize a saved dataset")
    info.add_argument("path", metavar="PATH")

    maps = sub.add_parser(
        "maps", help="export per-subscriber activity maps as PGM images"
    )
    maps.add_argument("path", metavar="PATH")
    maps.add_argument(
        "--services",
        nargs="+",
        default=["Twitter", "Netflix"],
        help="head services to map",
    )
    maps.add_argument("--grid", type=int, default=64)
    maps.add_argument("--out-dir", default="maps", metavar="DIR")
    return parser


def _build(args: argparse.Namespace) -> int:
    from repro.dataset.builder import (
        build_session_level_dataset,
        build_volume_level_dataset,
    )
    from repro.geo.country import CountryConfig

    config = CountryConfig(n_communes=args.communes)
    if args.session:
        artifacts = build_session_level_dataset(
            n_subscribers=args.subscribers,
            country_config=config,
            n_workers=args.workers,
            n_shards=args.shards,
            seed=args.seed,
        )
    else:
        artifacts = build_volume_level_dataset(
            country_config=config, seed=args.seed
        )
    path = artifacts.dataset.save(args.out)
    print(f"dataset written to {path}")
    return 0


def _info(args: argparse.Namespace) -> int:
    dataset = MobileTrafficDataset.load(args.path)
    rows = [
        ("communes", dataset.n_communes),
        ("head services", dataset.n_head),
        ("catalog services", len(dataset.all_service_names)),
        ("time bins", f"{dataset.n_bins} ({dataset.axis.bins_per_hour}/hour)"),
        ("total weekly volume", format_bytes(dataset.total_volume())),
        ("uplink share", f"{dataset.national_ul.sum() / dataset.total_volume():.1%}"),
        ("subscribers observed", f"{dataset.users.sum():,.0f}"),
        ("DPI classified fraction", f"{dataset.classified_fraction:.1%}"),
    ]
    for cls in UrbanizationClass:
        count = int(dataset.class_mask(cls).sum())
        rows.append((f"{cls.label} communes", count))
    print(format_table(("property", "value"), rows, title=str(args.path)))

    volumes = dataset.dl.sum(axis=(0, 2)) + dataset.ul.sum(axis=(0, 2))
    order = np.argsort(volumes)[::-1][:5]
    rows = [
        (dataset.head_names[j], format_bytes(float(volumes[j])))
        for j in order
    ]
    print()
    print(format_table(("top service", "weekly volume"), rows))
    return 0


def _maps(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.spatial_analysis import activity_grid
    from repro.report.image import write_pgm

    dataset = MobileTrafficDataset.load(args.path)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for service in args.services:
        grid = activity_grid(dataset, service, "dl", grid_size=args.grid)
        path = write_pgm(
            grid, out_dir / f"{service.lower().replace(' ', '_')}.pgm"
        )
        print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "build":
        return _build(args)
    if args.command == "info":
        return _info(args)
    if args.command == "maps":
        return _maps(args)
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
