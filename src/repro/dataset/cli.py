"""Command-line dataset tooling: ``repro-dataset``.

Examples::

    repro-dataset build --communes 1600 --seed 7 --out week.npz
    repro-dataset build --session --subscribers 2000 --out panel.npz
    repro-dataset build --session --shards 8 --retries 3 \\
        --on-exhausted quarantine --checkpoint-dir ckpt --out panel.npz
    repro-dataset info week.npz

Exit codes follow the shared contract in :mod:`repro._exit`: ``0``
success with full coverage, ``1`` success but degraded (quarantined
shards or dropped records — the dataset was written and its
``coverage.*`` meta says what is missing), ``2`` usage/validation
error or unreadable input, ``3`` internal failure (for ``build``:
retry exhaustion under the ``fail`` policy).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro._exit import EXIT_INTERNAL, EXIT_USAGE
from repro._units import KIB, format_bytes
from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass
from repro.report.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dataset",
        description="Build and inspect synthetic nationwide mobile traffic datasets.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="synthesize a dataset and save it")
    build.add_argument("--communes", type=int, default=1_600)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--out", required=True, metavar="PATH")
    build.add_argument(
        "--session",
        action="store_true",
        help="run the session-level pipeline instead of the volume model",
    )
    build.add_argument(
        "--subscribers",
        type=int,
        default=2_000,
        help="panel size for --session runs",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --session runs",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="subscriber shards for --session runs (defaults to --workers); "
        "results depend on (seed, shards) only, never on --workers",
    )
    build.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per shard for --session runs (default 3)",
    )
    build.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard watchdog for pooled --session runs "
        "(default 120; 0 disables)",
    )
    build.add_argument(
        "--on-exhausted",
        choices=("fail", "quarantine"),
        default=None,
        help="after retry exhaustion: fail the build (default) or "
        "quarantine the shard and degrade coverage",
    )
    build.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="spill completed shard partials to atomic checkpoints here",
    )
    build.add_argument(
        "--resume",
        action="store_true",
        help="load finished shards from --checkpoint-dir instead of "
        "re-running them",
    )
    build.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="KIND:SHARD[:ATTEMPT[:STAGE]]",
        help="inject a deterministic fault (testing/CI only); repeatable",
    )
    build.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="RECORDS",
        help="records per streamed probe chunk for --session runs "
        "(default 8192; 0 disables streaming and materializes the "
        "whole week); never changes dataset content",
    )
    build.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="spill accepted shard partials beyond --spill-budget-mb "
        "here and merge them from disk (bounds --session merge memory)",
    )
    build.add_argument(
        "--spill-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="resident shard-partial budget before spilling "
        "(default 0: spill every partial); requires --spill-dir",
    )

    info = sub.add_parser("info", help="summarize a saved dataset")
    info.add_argument("path", metavar="PATH")

    maps = sub.add_parser(
        "maps", help="export per-subscriber activity maps as PGM images"
    )
    maps.add_argument("path", metavar="PATH")
    maps.add_argument(
        "--services",
        nargs="+",
        default=["Twitter", "Netflix"],
        help="head services to map",
    )
    maps.add_argument("--grid", type=int, default=64)
    maps.add_argument("--out-dir", default="maps", metavar="DIR")
    return parser


def _resilience_options(args: argparse.Namespace):
    """Translate build flags into (retry_policy, fault_plan); raises
    ``ValueError`` on anything inconsistent so ``_build`` can turn it
    into a usage exit (2)."""
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

    session_only = {
        "--retries": args.retries,
        "--shard-timeout": args.shard_timeout,
        "--on-exhausted": args.on_exhausted,
        "--checkpoint-dir": args.checkpoint_dir,
        "--fault": args.fault,
        "--chunk-size": args.chunk_size,
        "--spill-dir": args.spill_dir,
        "--spill-budget-mb": args.spill_budget_mb,
    }
    if not args.session:
        used = sorted(k for k, v in session_only.items() if v is not None)
        if args.resume:
            used.append("--resume")
        if used:
            raise ValueError(
                f"{', '.join(used)} require(s) --session builds"
            )
        return None, None
    policy = None
    if (
        args.retries is not None
        or args.shard_timeout is not None
        or args.on_exhausted is not None
    ):
        defaults = RetryPolicy()
        timeout_s: Optional[float] = defaults.timeout_s
        if args.shard_timeout is not None:
            timeout_s = None if args.shard_timeout == 0 else args.shard_timeout
        policy = RetryPolicy(
            max_attempts=(
                defaults.max_attempts if args.retries is None else args.retries
            ),
            timeout_s=timeout_s,
            on_exhausted=args.on_exhausted or defaults.on_exhausted,
        )
    fault_plan = FaultPlan.parse(args.fault) if args.fault else None
    return policy, fault_plan


def _build(args: argparse.Namespace) -> int:
    from repro.dataset.builder import (
        build_session_level_dataset,
        build_volume_level_dataset,
    )
    from repro.geo.country import CountryConfig
    from repro.resilience.supervisor import ShardExecutionError

    try:
        retry_policy, fault_plan = _resilience_options(args)
        config = CountryConfig(n_communes=args.communes)
        if args.session:
            kwargs = {}
            if args.chunk_size is not None:
                kwargs["chunk_size"] = (
                    None if args.chunk_size == 0 else args.chunk_size
                )
            if args.spill_budget_mb is not None:
                kwargs["spill_budget_bytes"] = int(
                    args.spill_budget_mb * KIB * KIB
                )
            artifacts = build_session_level_dataset(
                n_subscribers=args.subscribers,
                country_config=config,
                n_workers=args.workers,
                n_shards=args.shards,
                seed=args.seed,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                spill_dir=args.spill_dir,
                **kwargs,
            )
        else:
            artifacts = build_volume_level_dataset(
                country_config=config, seed=args.seed
            )
    except ValueError as exc:
        print(f"repro-dataset build: {exc}", file=sys.stderr)
        return 2
    except ShardExecutionError as exc:
        print(f"repro-dataset build: {exc}", file=sys.stderr)
        return 3
    path = artifacts.dataset.save(args.out)
    print(f"dataset written to {path}")
    coverage = artifacts.extras.get("coverage")
    if coverage is not None and coverage.degraded:
        quarantined = ",".join(str(i) for i in coverage.quarantined) or "none"
        print(
            f"coverage degraded: fraction={coverage.fraction:.4f} "
            f"quarantined_shards={quarantined} "
            f"records_dropped={coverage.records_dropped}",
            file=sys.stderr,
        )
        return 1
    return 0


def _info(args: argparse.Namespace) -> int:
    dataset = MobileTrafficDataset.load(args.path)
    rows = [
        ("communes", dataset.n_communes),
        ("head services", dataset.n_head),
        ("catalog services", len(dataset.all_service_names)),
        ("time bins", f"{dataset.n_bins} ({dataset.axis.bins_per_hour}/hour)"),
        ("total weekly volume", format_bytes(dataset.total_volume())),
        ("uplink share", f"{dataset.national_ul.sum() / dataset.total_volume():.1%}"),
        ("subscribers observed", f"{dataset.users.sum():,.0f}"),
        ("DPI classified fraction", f"{dataset.classified_fraction:.1%}"),
    ]
    for cls in UrbanizationClass:
        count = int(dataset.class_mask(cls).sum())
        rows.append((f"{cls.label} communes", count))
    print(format_table(("property", "value"), rows, title=str(args.path)))

    volumes = dataset.dl.sum(axis=(0, 2)) + dataset.ul.sum(axis=(0, 2))
    order = np.argsort(volumes)[::-1][:5]
    rows = [
        (dataset.head_names[j], format_bytes(float(volumes[j])))
        for j in order
    ]
    print()
    print(format_table(("top service", "weekly volume"), rows))
    return 0


def _maps(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.spatial_analysis import activity_grid
    from repro.report.image import write_pgm

    dataset = MobileTrafficDataset.load(args.path)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for service in args.services:
        grid = activity_grid(dataset, service, "dl", grid_size=args.grid)
        path = write_pgm(
            grid, out_dir / f"{service.lower().replace(' ', '_')}.pgm"
        )
        print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "build":
            return _build(args)
        if args.command == "info":
            return _info(args)
        if args.command == "maps":
            return _maps(args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro-dataset: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-dataset: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
