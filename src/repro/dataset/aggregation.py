"""Streaming aggregation of probe records into the commune-level dataset.

This stage is the paper's anonymization boundary (§2): probe records
still carry (hashed) subscriber identifiers; the aggregator classifies
each record with the DPI engine, buckets it by (commune, service, time
bin, direction), and keeps only aggregate counters — "mobile service
demands are merged over several thousands of subscribers".

The aggregator also estimates the "average number of users in each
commune" the paper normalizes by, counting distinct subscribers observed
per commune over the week.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro._time import TimeAxis, WEEK_HOURS
from repro.dataset.store import MobileTrafficDataset
from repro.dpi.classifier import DpiEngine
from repro.geo.country import Country
from repro.network.probes import ProbeRecord
from repro.services.catalog import ServiceCatalog


class CommuneAggregator:
    """Accumulates classified probe records into dataset tensors."""

    def __init__(
        self,
        country: Country,
        catalog: ServiceCatalog,
        engine: DpiEngine,
        axis: TimeAxis = TimeAxis(1),
    ):
        self._country = country
        self._catalog = catalog
        self._engine = engine
        self._axis = axis

        head = catalog.head_services
        self._head_index: Dict[str, int] = {s.name: i for i, s in enumerate(head)}
        self._service_index: Dict[str, int] = {
            s.name: s.service_id for s in catalog
        }
        n_communes = country.n_communes
        self.dl = np.zeros((n_communes, len(head), axis.n_bins), dtype=np.float64)
        self.ul = np.zeros_like(self.dl)
        self.national_dl = np.zeros(len(catalog))
        self.national_ul = np.zeros(len(catalog))
        self.unclassified_bytes = 0.0
        self.total_bytes = 0.0
        self._users_seen: List[Set[int]] = [set() for _ in range(n_communes)]
        self.records_ingested = 0

    def ingest(self, record: ProbeRecord) -> Optional[str]:
        """Classify and accumulate one record; returns the service name."""
        self.records_ingested += 1
        volume = record.total_bytes
        self.total_bytes += volume
        self._users_seen[record.commune_id].add(record.imsi_hash)

        service_name = self._engine.classify(record.flow, volume_bytes=volume)
        if service_name is None:
            self.unclassified_bytes += volume
            return None

        service_id = self._service_index[service_name]
        self.national_dl[service_id] += record.dl_bytes
        self.national_ul[service_id] += record.ul_bytes

        head_idx = self._head_index.get(service_name)
        if head_idx is not None:
            hour = record.timestamp_s / 3600.0
            if 0 <= hour < WEEK_HOURS:
                t = int(hour * self._axis.bins_per_hour)
                self.dl[record.commune_id, head_idx, t] += record.dl_bytes
                self.ul[record.commune_id, head_idx, t] += record.ul_bytes
        return service_name

    def ingest_all(self, records: Iterable[ProbeRecord]) -> int:
        """Ingest a record stream; returns the number processed."""
        count = 0
        for record in records:
            self.ingest(record)
            count += 1
        return count

    @property
    def classified_fraction(self) -> float:
        """Fraction of ingested volume attributed to a service."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unclassified_bytes / self.total_bytes

    def finalize(self) -> MobileTrafficDataset:
        """Drop subscriber identifiers and emit the anonymized dataset."""
        country = self._country
        users = np.array([len(seen) for seen in self._users_seen], dtype=float)
        return MobileTrafficDataset(
            axis=self._axis,
            head_names=[s.name for s in self._catalog.head_services],
            all_service_names=[s.name for s in self._catalog],
            dl=self.dl.astype(np.float32),
            ul=self.ul.astype(np.float32),
            national_dl=self.national_dl.copy(),
            national_ul=self.national_ul.copy(),
            users=users,
            commune_classes=country.urbanization.classes.copy(),
            density=country.population.density_km2.copy(),
            coordinates=country.grid.coordinates_km.copy(),
            has_3g=country.coverage.has_3g.copy(),
            has_4g=country.coverage.has_4g.copy(),
            classified_fraction=self.classified_fraction,
            meta={"records_ingested": float(self.records_ingested)},
        )


__all__ = ["CommuneAggregator"]
