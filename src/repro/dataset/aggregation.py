"""Streaming aggregation of probe records into the commune-level dataset.

This stage is the paper's anonymization boundary (§2): probe records
still carry (hashed) subscriber identifiers; the aggregator classifies
each record with the DPI engine, buckets it by (commune, service, time
bin, direction), and keeps only aggregate counters — "mobile service
demands are merged over several thousands of subscribers".

The aggregator also estimates the "average number of users in each
commune" the paper normalizes by, counting distinct subscribers observed
per commune over the week.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro import obs
from repro._time import TimeAxis, WEEK_HOURS
from repro.dataset.accumulate import BlockSumAccumulator
from repro.dataset.store import MobileTrafficDataset
from repro.dpi.classifier import DpiEngine
from repro.geo.country import Country
from repro.network.probes import ProbeRecord, ProbeRecordBatch
from repro.services.catalog import ServiceCatalog


class CommuneAggregator:
    """Accumulates classified probe records into dataset tensors."""

    def __init__(
        self,
        country: Country,
        catalog: ServiceCatalog,
        engine: DpiEngine,
        axis: TimeAxis = TimeAxis(1),
    ):
        self._country = country
        self._catalog = catalog
        self._engine = engine
        self._axis = axis

        head = catalog.head_services
        self._head_index: Dict[str, int] = {s.name: i for i, s in enumerate(head)}
        self._service_index: Dict[str, int] = {
            s.name: s.service_id for s in catalog
        }
        n_communes = country.n_communes
        self.dl = np.zeros((n_communes, len(head), axis.n_bins), dtype=np.float64)
        self.ul = np.zeros_like(self.dl)
        self.national_dl = np.zeros(len(catalog))
        self.national_ul = np.zeros(len(catalog))
        # Byte totals accumulate through fixed-block summers so the
        # result is bit-identical however the record stream is chunked
        # (streaming vs in-memory builds); merged-in shard totals fold
        # sequentially into the offsets.
        self._total_acc = BlockSumAccumulator()
        self._unclassified_acc = BlockSumAccumulator()
        self._merged_total_bytes = 0.0
        self._merged_unclassified_bytes = 0.0
        self._users_seen: List[Set[int]] = [set() for _ in range(n_communes)]
        self.records_ingested = 0

    def ingest(self, record: ProbeRecord) -> Optional[str]:
        """Classify and accumulate one record; returns the service name."""
        self.records_ingested += 1
        obs.add("aggregation.rows")
        volume = record.total_bytes
        self._total_acc.add(volume)
        self._users_seen[record.commune_id].add(record.imsi_hash)

        service_name = self._engine.classify(record.flow, volume_bytes=volume)
        if service_name is None:
            self._unclassified_acc.add(volume)
            return None

        service_id = self._service_index[service_name]
        self.national_dl[service_id] += record.dl_bytes
        self.national_ul[service_id] += record.ul_bytes

        head_idx = self._head_index.get(service_name)
        if head_idx is not None:
            hour = record.timestamp_s / 3600.0
            if 0 <= hour < WEEK_HOURS:
                t = int(hour * self._axis.bins_per_hour)
                self.dl[record.commune_id, head_idx, t] += record.dl_bytes
                self.ul[record.commune_id, head_idx, t] += record.ul_bytes
        return service_name

    def ingest_all(
        self, records: Iterable[ProbeRecord], chunk_size: int = 8192
    ) -> int:
        """Ingest a record stream in vectorized chunks.

        Delegates to :meth:`ingest_batch` ``chunk_size`` records at a
        time, so arbitrarily long streams aggregate at batch speed with
        bounded working memory.  Returns the number processed.
        """
        count = 0
        iterator = iter(records)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            count += self.ingest_batch(chunk)
        return count

    def ingest_batch(self, records: Sequence[ProbeRecord]) -> int:
        """Vectorized ingest of a batch of scalar records.

        Classifies once per distinct flow key through the engine's memo
        and scatters the byte counters with array arithmetic; the
        resulting tensors and accounting match per-record
        :meth:`ingest` calls up to float summation order.
        """
        if not records:
            return 0
        return self.ingest_columnar(ProbeRecordBatch.from_records(list(records)))

    def ingest_columnar(self, batch: ProbeRecordBatch) -> int:
        """Ingest one columnar probe batch (the fast path)."""
        n = len(batch)
        if n == 0:
            return 0
        with obs.span("aggregate"):
            return self._ingest_columnar(batch)

    def _ingest_columnar(self, batch: ProbeRecordBatch) -> int:
        n = len(batch)
        self.records_ingested += n
        obs.add("aggregation.rows", n)
        obs.add("aggregation.batches")
        dl, ul = batch.dl_bytes, batch.ul_bytes
        volumes = dl + ul
        self._total_acc.update(volumes)
        commune_ids = batch.commune_ids

        # Distinct-user accounting: group subscriber hashes by commune
        # (stable argsort + segment boundaries) and bulk-update each
        # commune's set once.
        order = np.argsort(commune_ids, kind="stable")
        sorted_communes = commune_ids[order]
        sorted_imsi = batch.imsi_hashes[order]
        boundaries = np.flatnonzero(np.diff(sorted_communes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            self._users_seen[int(sorted_communes[s])].update(
                sorted_imsi[s:e].tolist()
            )

        keys = list(
            zip(
                batch.snis,
                batch.hosts,
                batch.payload_hints,
                batch.server_ports,
                batch.protocols,
            )
        )
        with obs.span("dpi.classify"):
            names = self._engine.classify_batch(keys, volumes)

        service_index = self._service_index
        service_ids = np.fromiter(
            (service_index[nm] if nm is not None else -1 for nm in names),
            dtype=np.int64,
            count=n,
        )
        classified = service_ids >= 0
        self._unclassified_acc.update(volumes[~classified])
        np.add.at(self.national_dl, service_ids[classified], dl[classified])
        np.add.at(self.national_ul, service_ids[classified], ul[classified])

        head_index = self._head_index
        head_ids = np.fromiter(
            (head_index.get(nm, -1) if nm is not None else -1 for nm in names),
            dtype=np.int64,
            count=n,
        )
        hours = batch.timestamps_s / 3600.0
        mask = (head_ids >= 0) & (hours >= 0) & (hours < WEEK_HOURS)
        if mask.any():
            t = (hours[mask] * self._axis.bins_per_hour).astype(np.int64)
            np.add.at(self.dl, (commune_ids[mask], head_ids[mask], t), dl[mask])
            np.add.at(self.ul, (commune_ids[mask], head_ids[mask], t), ul[mask])
        return n

    @property
    def total_bytes(self) -> float:
        """Bytes ingested: merged shard totals plus locally streamed sum."""
        return self._merged_total_bytes + self._total_acc.value

    @property
    def unclassified_bytes(self) -> float:
        """Unattributed bytes, accumulated the same chunk-invariant way."""
        return self._merged_unclassified_bytes + self._unclassified_acc.value

    @property
    def users_seen(self) -> List[Set[int]]:
        """Per-commune sets of distinct subscriber hashes observed."""
        return self._users_seen

    def merge(self, other) -> "CommuneAggregator":
        """Fold another aggregator's (or shard partial's) state into this one.

        ``other`` needs the aggregation tensors (``dl``, ``ul``,
        ``national_dl``, ``national_ul``), the byte/record counters and
        ``users_seen`` — either a full :class:`CommuneAggregator` or a
        plain shard-result carrier.  Merging is order-sensitive in
        floating point, so callers reduce shards in a fixed order.
        """
        self.dl += other.dl
        self.ul += other.ul
        self.national_dl += other.national_dl
        self.national_ul += other.national_ul
        self._merged_unclassified_bytes += other.unclassified_bytes
        self._merged_total_bytes += other.total_bytes
        self.records_ingested += other.records_ingested
        for commune_id, users in enumerate(other.users_seen):
            if users:
                self._users_seen[commune_id].update(users)
        return self

    @property
    def classified_fraction(self) -> float:
        """Fraction of ingested volume attributed to a service."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unclassified_bytes / self.total_bytes

    def finalize(self) -> MobileTrafficDataset:
        """Drop subscriber identifiers and emit the anonymized dataset."""
        obs.set_gauge("aggregation.total_bytes", self.total_bytes)
        obs.set_gauge("aggregation.unclassified_bytes", self.unclassified_bytes)
        country = self._country
        users = np.array([len(seen) for seen in self._users_seen], dtype=float)
        return MobileTrafficDataset(
            axis=self._axis,
            head_names=[s.name for s in self._catalog.head_services],
            all_service_names=[s.name for s in self._catalog],
            dl=self.dl.astype(np.float32),
            ul=self.ul.astype(np.float32),
            national_dl=self.national_dl.copy(),
            national_ul=self.national_ul.copy(),
            users=users,
            commune_classes=country.urbanization.classes.copy(),
            density=country.population.density_km2.copy(),
            coordinates=country.grid.coordinates_km.copy(),
            has_3g=country.coverage.has_3g.copy(),
            has_4g=country.coverage.has_4g.copy(),
            classified_fraction=self.classified_fraction,
            meta={"records_ingested": float(self.records_ingested)},
        )


__all__ = ["CommuneAggregator"]
