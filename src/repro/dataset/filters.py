"""Dataset views: subsetting by services, communes, region, or time.

Analyses often need a slice of the dataset — one region's communes, a
few services, a sub-week window.  These helpers return new
:class:`~repro.dataset.store.MobileTrafficDataset` objects (copies, not
views) so everything downstream keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.dataset.store import MobileTrafficDataset
from repro.geo.urbanization import UrbanizationClass


def select_communes(
    dataset: MobileTrafficDataset, commune_ids: Sequence[int]
) -> MobileTrafficDataset:
    """Restrict the dataset to a set of communes.

    Note: national totals (``national_dl``/``national_ul``) keep their
    nationwide meaning and are *not* rescaled — Fig. 2/3 statistics are
    defined nationally.
    """
    index = np.asarray(commune_ids, dtype=int)
    if index.ndim != 1 or index.size == 0:
        raise ValueError("commune_ids must be a non-empty 1-D sequence")
    if index.min() < 0 or index.max() >= dataset.n_communes:
        raise ValueError("commune_ids out of range")
    return replace(
        dataset,
        dl=dataset.dl[index],
        ul=dataset.ul[index],
        users=dataset.users[index],
        commune_classes=dataset.commune_classes[index],
        density=dataset.density[index],
        coordinates=dataset.coordinates[index],
        has_3g=dataset.has_3g[index],
        has_4g=dataset.has_4g[index],
    )


def select_region(
    dataset: MobileTrafficDataset, cls: UrbanizationClass
) -> MobileTrafficDataset:
    """Restrict the dataset to one urbanization class."""
    ids = np.nonzero(dataset.class_mask(cls))[0]
    if ids.size == 0:
        raise ValueError(f"dataset has no {cls.label} communes")
    return select_communes(dataset, ids)


def select_services(
    dataset: MobileTrafficDataset, service_names: Sequence[str]
) -> MobileTrafficDataset:
    """Restrict the head tensors to a subset of head services.

    The full-catalog national totals are narrowed to the same subset so
    rank analyses on the filtered dataset stay self-consistent.
    """
    names = list(service_names)
    if not names:
        raise ValueError("service_names must be non-empty")
    head_idx = np.array([dataset.head_index(name) for name in names])
    catalog_idx = np.array(
        [dataset.all_service_names.index(name) for name in names]
    )
    return replace(
        dataset,
        head_names=names,
        all_service_names=names,
        dl=dataset.dl[:, head_idx, :],
        ul=dataset.ul[:, head_idx, :],
        national_dl=np.asarray(dataset.national_dl)[catalog_idx],
        national_ul=np.asarray(dataset.national_ul)[catalog_idx],
    )


def select_days(
    dataset: MobileTrafficDataset, days: Sequence[int]
) -> MobileTrafficDataset:
    """Restrict the tensors to a set of days (0 = Saturday).

    The resulting dataset keeps the full weekly axis with the other
    days zeroed, so time-of-week bookkeeping stays valid; per-service
    national head totals are recomputed over the kept days.
    """
    days = sorted(set(int(d) for d in days))
    if not days or any(not 0 <= d < 7 for d in days):
        raise ValueError("days must be a non-empty subset of 0..6")
    bins_per_day = dataset.n_bins // 7
    mask = np.zeros(dataset.n_bins, dtype=bool)
    for d in days:
        mask[d * bins_per_day : (d + 1) * bins_per_day] = True
    dl = dataset.dl * mask[None, None, :].astype(dataset.dl.dtype)
    ul = dataset.ul * mask[None, None, :].astype(dataset.ul.dtype)

    national_dl = np.asarray(dataset.national_dl, dtype=float).copy()
    national_ul = np.asarray(dataset.national_ul, dtype=float).copy()
    for j, name in enumerate(dataset.head_names):
        catalog_j = dataset.all_service_names.index(name)
        national_dl[catalog_j] = dl[:, j, :].sum()
        national_ul[catalog_j] = ul[:, j, :].sum()
    return replace(
        dataset, dl=dl, ul=ul, national_dl=national_dl, national_ul=national_ul
    )


def weekend_only(dataset: MobileTrafficDataset) -> MobileTrafficDataset:
    """The Saturday-Sunday view."""
    return select_days(dataset, (0, 1))


def workdays_only(dataset: MobileTrafficDataset) -> MobileTrafficDataset:
    """The Monday-Friday view."""
    return select_days(dataset, (2, 3, 4, 5, 6))


__all__ = [
    "select_communes",
    "select_region",
    "select_services",
    "select_days",
    "weekend_only",
    "workdays_only",
]
