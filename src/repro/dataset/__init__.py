"""The dataset pipeline.

Turns probe records into the commune-level dataset the paper analyses
(§2): DPI classification, ULI-based geo-referencing, and aggregation over
communes — the aggregation being the anonymization boundary (no
individual data survives it).

- :mod:`repro.dataset.store` — :class:`MobileTrafficDataset`, the single
  interface every analysis consumes, with npz persistence;
- :mod:`repro.dataset.aggregation` — streaming aggregator from probe
  records to the dataset;
- :mod:`repro.dataset.builder` — end-to-end builders for both workload
  resolutions.
"""

from repro.dataset.aggregation import CommuneAggregator
from repro.dataset.store import MobileTrafficDataset

__all__ = [
    "MobileTrafficDataset",
    "CommuneAggregator",
    "PipelineArtifacts",
    "build_session_level_dataset",
    "build_volume_level_dataset",
]

_BUILDER_EXPORTS = (
    "PipelineArtifacts",
    "build_session_level_dataset",
    "build_volume_level_dataset",
)


def __getattr__(name):
    # The builder pulls in repro.traffic, which itself needs
    # repro.dataset.store — loading it lazily breaks that cycle.
    if name in _BUILDER_EXPORTS:
        from repro.dataset import builder

        return getattr(builder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
