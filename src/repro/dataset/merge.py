"""Merging datasets from sharded runs.

Session-level generation parallelizes naturally by splitting the
subscriber panel into shards and running each through its own pipeline
over the *same country*; :func:`merge_panels` recombines the resulting
datasets.  Traffic tensors and national totals add; users add (the
shards observe disjoint subscribers); the classified fraction is
volume-weighted.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.dataset.store import MobileTrafficDataset


def _check_compatible(datasets: Sequence[MobileTrafficDataset]) -> None:
    first = datasets[0]
    for other in datasets[1:]:
        if other.head_names != first.head_names:
            raise ValueError("datasets have different head services")
        if other.all_service_names != first.all_service_names:
            raise ValueError("datasets have different catalogs")
        if other.dl.shape != first.dl.shape:
            raise ValueError(
                f"tensor shapes differ: {other.dl.shape} vs {first.dl.shape}"
            )
        if other.axis.bins_per_hour != first.axis.bins_per_hour:
            raise ValueError("datasets have different time resolutions")
        if not np.array_equal(other.commune_classes, first.commune_classes):
            raise ValueError(
                "datasets cover different countries (commune classes differ)"
            )


def merge_panels(
    datasets: Sequence[MobileTrafficDataset],
) -> MobileTrafficDataset:
    """Merge datasets produced by disjoint subscriber panels.

    All datasets must share the country (same communes and metadata) and
    the catalog.  Returns a new dataset; inputs are unchanged.
    """
    datasets = list(datasets)
    if not datasets:
        raise ValueError("nothing to merge")
    if len(datasets) == 1:
        return datasets[0]
    _check_compatible(datasets)

    first = datasets[0]
    dl = np.sum([d.dl for d in datasets], axis=0, dtype=np.float64)
    ul = np.sum([d.ul for d in datasets], axis=0, dtype=np.float64)
    national_dl = np.sum([np.asarray(d.national_dl) for d in datasets], axis=0)
    national_ul = np.sum([np.asarray(d.national_ul) for d in datasets], axis=0)
    users = np.sum([d.users for d in datasets], axis=0)

    volumes = np.array([d.total_volume() for d in datasets])
    fractions = np.array([d.classified_fraction for d in datasets])
    total = volumes.sum()
    classified = float((volumes * fractions).sum() / total) if total else 0.0

    return replace(
        first,
        dl=dl.astype(np.float32),
        ul=ul.astype(np.float32),
        national_dl=national_dl,
        national_ul=national_ul,
        users=users,
        classified_fraction=classified,
        meta={**first.meta, "merged_panels": float(len(datasets))},
    )


__all__ = ["merge_panels"]
