"""Merging datasets from sharded runs, and the shard-partial spill substrate.

Session-level generation parallelizes naturally by splitting the
subscriber panel into shards and running each through its own pipeline
over the *same country*; :func:`merge_panels` recombines the resulting
datasets.  Traffic tensors and national totals add; users add (the
shards observe disjoint subscribers); the classified fraction is
volume-weighted.

The second half of this module is the **spill substrate** behind
bounded-memory sharded builds: when the resident set of accepted shard
partials exceeds a budget, the supervisor spills them to disk through a
:class:`SpillStore` and keeps only a compact
:class:`SpilledShardResult` handle; the merge then loads one partial at
a time, in shard-index order, so peak RSS is one partial — not all of
them.  The on-disk format is the same atomic pickled envelope the
resilience checkpoints use (write to temp, flush + fsync,
``os.replace``), generalized here as :func:`write_envelope` /
:func:`read_envelope` so both layers share one crash-safe codec.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.dataset.store import MobileTrafficDataset


def _check_compatible(datasets: Sequence[MobileTrafficDataset]) -> None:
    first = datasets[0]
    for other in datasets[1:]:
        if other.head_names != first.head_names:
            raise ValueError("datasets have different head services")
        if other.all_service_names != first.all_service_names:
            raise ValueError("datasets have different catalogs")
        if other.dl.shape != first.dl.shape:
            raise ValueError(
                f"tensor shapes differ: {other.dl.shape} vs {first.dl.shape}"
            )
        if other.axis.bins_per_hour != first.axis.bins_per_hour:
            raise ValueError("datasets have different time resolutions")
        if not np.array_equal(other.commune_classes, first.commune_classes):
            raise ValueError(
                "datasets cover different countries (commune classes differ)"
            )


def merge_panels(
    datasets: Sequence[MobileTrafficDataset],
) -> MobileTrafficDataset:
    """Merge datasets produced by disjoint subscriber panels.

    All datasets must share the country (same communes and metadata) and
    the catalog.  Returns a new dataset; inputs are unchanged.
    """
    datasets = list(datasets)
    if not datasets:
        raise ValueError("nothing to merge")
    if len(datasets) == 1:
        return datasets[0]
    _check_compatible(datasets)

    first = datasets[0]
    dl = np.sum([d.dl for d in datasets], axis=0, dtype=np.float64)
    ul = np.sum([d.ul for d in datasets], axis=0, dtype=np.float64)
    national_dl = np.sum([np.asarray(d.national_dl) for d in datasets], axis=0)
    national_ul = np.sum([np.asarray(d.national_ul) for d in datasets], axis=0)
    users = np.sum([d.users for d in datasets], axis=0)

    volumes = np.array([d.total_volume() for d in datasets])
    fractions = np.array([d.classified_fraction for d in datasets])
    total = volumes.sum()
    classified = float((volumes * fractions).sum() / total) if total else 0.0

    return replace(
        first,
        dl=dl.astype(np.float32),
        ul=ul.astype(np.float32),
        national_dl=national_dl,
        national_ul=national_ul,
        users=users,
        classified_fraction=classified,
        meta={**first.meta, "merged_panels": float(len(datasets))},
    )


# ----------------------------------------------------------------------
# crash-safe pickled envelopes (shared by spills and checkpoints)
# ----------------------------------------------------------------------

#: Schema tag of spilled shard partials, bumped on layout change.
SPILL_SCHEMA = "repro-spill/1"


def write_envelope(
    path: Union[str, Path],
    obj: Any,
    schema: str,
    run_key: str,
    shard_index: int,
) -> Path:
    """Atomically persist ``obj`` in a self-verifying envelope.

    The envelope carries the schema tag, the run key binding the file
    to one build configuration, the shard index, and a sha256 of the
    pickled payload.  The write is crash-safe: serialize to a temp file
    in the target directory, flush + ``fsync``, then ``os.replace`` — a
    reader sees the old file or the new one, never a torn write.
    """
    path = Path(path)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "schema": schema,
        "run_key": run_key,
        "shard_index": int(shard_index),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload": payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_envelope(
    path: Union[str, Path], schema: str, run_key: str, shard_index: int
) -> Optional[Any]:
    """The envelope's payload object, or ``None`` if absent or unusable.

    Never raises on a bad file: wrong schema, foreign run key, index
    mismatch, digest mismatch, truncation and unreadable pickles all
    return ``None`` — callers decide whether that is a graceful rerun
    (checkpoints) or a hard error (spills, where the resident copy is
    gone).
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != schema:
            return None
        if envelope.get("run_key") != run_key:
            return None
        if envelope.get("shard_index") != int(shard_index):
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, bytes):
            return None
        if hashlib.sha256(payload).hexdigest() != envelope.get("sha256"):
            return None
        return pickle.loads(payload)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


# ----------------------------------------------------------------------
# shard-partial spilling
# ----------------------------------------------------------------------

def partial_nbytes(result) -> int:
    """Approximate resident size of one shard partial, in bytes.

    Counts the aggregation tensors exactly and the per-commune
    subscriber-hash sets at a flat per-entry estimate; the point is a
    stable, deterministic accounting for the spill budget, not a heap
    profile.
    """
    n = (
        result.dl.nbytes
        + result.ul.nbytes
        + result.national_dl.nbytes
        + result.national_ul.nbytes
    )
    n += sum(64 * len(seen) for seen in result.users_seen)
    return int(n)


@dataclass
class SpilledShardResult:
    """Compact handle for a shard partial that lives on disk.

    Carries the scalars the builder and the execution report need
    without loading anything (``sessions_generated``,
    ``records_dropped``, …) plus the shard's observability export — only
    the aggregate tensors and subscriber sets are out of core.
    ``load()`` brings the full ``ShardResult`` back, and *raises* on a
    missing or damaged file: unlike a checkpoint, a spill's resident
    copy was dropped, so there is nothing to gracefully fall back to.
    """

    shard_index: int
    path: Path
    run_key: str
    nbytes: int
    sessions_generated: int
    flows_generated: int
    records_ingested: int
    records_dropped: int
    obs_export: Optional[dict] = field(default=None, repr=False)

    def load(self):
        """The full shard partial, read back and verified from disk."""
        result = read_envelope(
            self.path, SPILL_SCHEMA, self.run_key, self.shard_index
        )
        if result is None:
            raise RuntimeError(
                f"spilled shard partial {self.path} is missing or damaged "
                f"(run_key={self.run_key!r}, shard={self.shard_index})"
            )
        result.obs_export = self.obs_export
        return result


class SpillStore:
    """One build's spill directory plus its resident-memory budget.

    ``budget_bytes`` is the total size of shard partials the supervisor
    may keep resident before further accepted partials spill; ``0``
    spills every partial.  The store is keyed to one run configuration
    exactly like the checkpoint directory, so partials from a different
    build can never be merged by accident.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        run_key: str,
        budget_bytes: int = 0,
    ):
        if not run_key:
            raise ValueError("run_key must be a non-empty string")
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.directory = Path(directory)
        self.run_key = run_key
        self.budget_bytes = int(budget_bytes)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, shard_index: int) -> Path:
        if shard_index < 0:
            raise ValueError(f"shard_index must be >= 0, got {shard_index}")
        return self.directory / f"partial-{shard_index:05d}.spill"

    def spill(self, result) -> SpilledShardResult:
        """Write one shard partial to disk; returns its compact handle.

        The observability export stays resident on the handle (it is
        small and the builder absorbs it before merging); everything
        else round-trips through the envelope bit-identically, which is
        what keeps spilled and unspilled builds byte-identical.
        """
        export = result.obs_export
        result.obs_export = None
        try:
            path = write_envelope(
                self.path_for(result.shard_index),
                result,
                SPILL_SCHEMA,
                self.run_key,
                result.shard_index,
            )
        finally:
            result.obs_export = export
        return SpilledShardResult(
            shard_index=result.shard_index,
            path=path,
            run_key=self.run_key,
            nbytes=partial_nbytes(result),
            sessions_generated=result.sessions_generated,
            flows_generated=result.flows_generated,
            records_ingested=result.records_ingested,
            records_dropped=result.records_dropped,
            obs_export=export,
        )


__all__ = [
    "SPILL_SCHEMA",
    "SpillStore",
    "SpilledShardResult",
    "merge_panels",
    "partial_nbytes",
    "read_envelope",
    "write_envelope",
]
