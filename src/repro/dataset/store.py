"""The commune-level mobile traffic dataset.

:class:`MobileTrafficDataset` is the reproduction of the paper's working
dataset: per-commune, per-head-service, per-time-bin traffic volumes in
both directions, national weekly totals for the full service catalog,
the average subscriber count per commune, and the geographic metadata
(urbanization class, density, coverage) the spatial analyses need.

Everything downstream — every figure — reads only from this object, so
the analyses cannot tell whether the data came from the session-level
pipeline or from the closed-form volume model.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro._time import TimeAxis
from repro.geo.urbanization import UrbanizationClass


class CorruptDatasetError(RuntimeError):
    """A dataset archive exists but cannot be trusted.

    Raised by :meth:`MobileTrafficDataset.load` when the file is torn,
    truncated, missing arrays, or carries non-finite/negative tensors —
    anything short of the archive :meth:`~MobileTrafficDataset.save`
    wrote.  A *missing* file still raises ``FileNotFoundError``: absence
    and damage are different failures with different recoveries (build
    vs. restore/rebuild)."""


@dataclass
class MobileTrafficDataset:
    """Commune × head-service × time traffic tensors plus metadata."""

    axis: TimeAxis
    head_names: List[str]
    all_service_names: List[str]
    #: (n_communes, n_head, n_bins) weekly traffic, bytes, float32.
    dl: np.ndarray
    ul: np.ndarray
    #: (n_services,) national weekly totals over the *full* catalog.
    national_dl: np.ndarray
    national_ul: np.ndarray
    #: (n_communes,) average subscribers per commune.
    users: np.ndarray
    #: (n_communes,) urbanization class values.
    commune_classes: np.ndarray
    #: (n_communes,) population density.
    density: np.ndarray
    #: (n_communes, 2) commune coordinates, km.
    coordinates: np.ndarray
    #: (n_communes,) coverage masks.
    has_3g: np.ndarray
    has_4g: np.ndarray
    #: Fraction of traffic volume the DPI attributed to a service.
    classified_fraction: float = 1.0
    meta: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        c, s, t = self.dl.shape
        if self.ul.shape != (c, s, t):
            raise ValueError(f"ul shape {self.ul.shape} != dl shape {self.dl.shape}")
        if s != len(self.head_names):
            raise ValueError(
                f"{s} head slices for {len(self.head_names)} head names"
            )
        if t != self.axis.n_bins:
            raise ValueError(f"{t} time bins, axis expects {self.axis.n_bins}")
        if len(self.national_dl) != len(self.all_service_names):
            raise ValueError("national totals do not cover the full catalog")
        for name, arr in (
            ("users", self.users),
            ("commune_classes", self.commune_classes),
            ("density", self.density),
            ("has_3g", self.has_3g),
            ("has_4g", self.has_4g),
        ):
            if arr.shape[0] != c:
                raise ValueError(f"{name} has {arr.shape[0]} rows, expected {c}")
        if self.coordinates.shape != (c, 2):
            raise ValueError(
                f"coordinates shape {self.coordinates.shape}, expected ({c}, 2)"
            )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_communes(self) -> int:
        return self.dl.shape[0]

    @property
    def n_head(self) -> int:
        return self.dl.shape[1]

    @property
    def n_bins(self) -> int:
        return self.dl.shape[2]

    def head_index(self, service_name: str) -> int:
        """Index of a head service by name."""
        try:
            return self.head_names.index(service_name)
        except ValueError:
            raise KeyError(
                f"{service_name!r} is not a head service of this dataset"
            ) from None

    def tensor(self, direction: str) -> np.ndarray:
        """The (C, S, T) tensor for one direction."""
        if direction == "dl":
            return self.dl
        if direction == "ul":
            return self.ul
        raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")

    # ------------------------------------------------------------------
    # the paper's standard views
    # ------------------------------------------------------------------
    def national_series(self, service_name: str, direction: str) -> np.ndarray:
        """Nationwide weekly time series of one head service (§4)."""
        j = self.head_index(service_name)
        return self.tensor(direction)[:, j, :].sum(axis=0).astype(float)

    def all_national_series(self, direction: str) -> np.ndarray:
        """(n_head, n_bins) nationwide series of every head service."""
        return self.tensor(direction).sum(axis=0).astype(float)

    def commune_volumes(self, service_name: str, direction: str) -> np.ndarray:
        """(n_communes,) weekly volume of one service per commune (§5)."""
        j = self.head_index(service_name)
        return self.tensor(direction)[:, j, :].sum(axis=1).astype(float)

    def per_subscriber_volumes(
        self, service_name: str, direction: str
    ) -> np.ndarray:
        """(n_communes,) weekly per-subscriber volume — the paper's
        "ratio of the traffic volume to the average number of users in
        each commune"."""
        volumes = self.commune_volumes(service_name, direction)
        return volumes / np.maximum(self.users, 1.0)

    def per_subscriber_matrix(self, direction: str) -> np.ndarray:
        """(n_communes, n_head) per-subscriber volumes for all services."""
        volumes = self.tensor(direction).sum(axis=2).astype(float)
        return volumes / np.maximum(self.users, 1.0)[:, None]

    def class_mask(self, cls: UrbanizationClass) -> np.ndarray:
        """Boolean mask of communes in one urbanization class."""
        return self.commune_classes == int(cls)

    def region_series(
        self, service_name: str, direction: str, cls: UrbanizationClass
    ) -> np.ndarray:
        """Per-subscriber time series aggregated over one region type (§5)."""
        j = self.head_index(service_name)
        mask = self.class_mask(cls)
        if not mask.any():
            raise ValueError(f"dataset has no {cls.label} communes")
        volume = self.tensor(direction)[mask, j, :].sum(axis=0).astype(float)
        return volume / max(float(self.users[mask].sum()), 1.0)

    def service_rank_volumes(self, direction: str) -> np.ndarray:
        """Descending national volumes over the full catalog (Fig. 2)."""
        totals = self.national_dl if direction == "dl" else self.national_ul
        if direction not in ("dl", "ul"):
            raise ValueError(f"direction must be 'dl' or 'ul', got {direction!r}")
        return np.sort(np.asarray(totals, dtype=float))[::-1]

    def total_volume(self) -> float:
        """Total classified weekly traffic, both directions."""
        return float(self.national_dl.sum() + self.national_ul.sum())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Save to an ``.npz`` archive; returns the written path.

        Crash-safe: the archive is serialized to a temp file in the
        target directory, flushed and ``fsync``\\ ed, then moved into
        place with ``os.replace`` — a build killed mid-save leaves
        either the previous archive or none, never a torn one.
        """
        path = Path(path)
        final = (
            path if path.suffix == ".npz"
            else path.with_name(path.name + ".npz")
        )
        tmp = final.with_name(final.name + ".tmp")
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                bins_per_hour=np.array([self.axis.bins_per_hour]),
                head_names=np.array(self.head_names),
                all_service_names=np.array(self.all_service_names),
                dl=self.dl,
                ul=self.ul,
                national_dl=self.national_dl,
                national_ul=self.national_ul,
                users=self.users,
                commune_classes=self.commune_classes,
                density=self.density,
                coordinates=self.coordinates,
                has_3g=self.has_3g,
                has_4g=self.has_4g,
                classified_fraction=np.array([self.classified_fraction]),
                meta_keys=np.array(sorted(self.meta.keys())),
                meta_values=np.array(
                    [self.meta[k] for k in sorted(self.meta.keys())]
                ),
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        return final

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MobileTrafficDataset":
        """Load a dataset previously written by :meth:`save`.

        Integrity-checked: a torn, truncated, or garbled archive — and
        one whose tensors fail the same finiteness/sign checks the
        supervisor applies to shard partials — raises
        :class:`CorruptDatasetError` instead of surfacing as a random
        ``KeyError``/``BadZipFile`` deep inside numpy.  A missing file
        raises ``FileNotFoundError`` as before.
        """
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta_keys = [str(k) for k in data["meta_keys"]]
                meta_values = data["meta_values"]
                dataset = cls(
                    axis=TimeAxis(int(data["bins_per_hour"][0])),
                    head_names=[str(n) for n in data["head_names"]],
                    all_service_names=[
                        str(n) for n in data["all_service_names"]
                    ],
                    dl=data["dl"],
                    ul=data["ul"],
                    national_dl=data["national_dl"],
                    national_ul=data["national_ul"],
                    users=data["users"],
                    commune_classes=data["commune_classes"],
                    density=data["density"],
                    coordinates=data["coordinates"],
                    has_3g=data["has_3g"],
                    has_4g=data["has_4g"],
                    classified_fraction=float(data["classified_fraction"][0]),
                    meta=dict(zip(meta_keys, (float(v) for v in meta_values))),
                )
        except FileNotFoundError:
            raise
        except (
            zipfile.BadZipFile,
            KeyError,
            ValueError,
            EOFError,
            OSError,
        ) as exc:
            raise CorruptDatasetError(
                f"{path} is not a readable dataset archive: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        problems = dataset.integrity_problems()
        if problems:
            raise CorruptDatasetError(
                f"{path} failed integrity checks: " + "; ".join(problems)
            )
        return dataset

    def integrity_problems(self) -> List[str]:
        """Value-level integrity defects (empty list = sound).

        Shape consistency is already enforced by ``__post_init__``;
        this checks what shapes cannot: non-finite cells, negative
        volumes, negative subscriber counts.
        """
        problems: List[str] = []
        for name, arr in (
            ("dl", self.dl),
            ("ul", self.ul),
            ("national_dl", self.national_dl),
            ("national_ul", self.national_ul),
        ):
            arr = np.asarray(arr)
            if not np.isfinite(arr).all():
                problems.append(f"{name} contains non-finite cells")
            elif arr.size and float(arr.min()) < 0.0:
                problems.append(f"{name} contains negative volumes")
        users = np.asarray(self.users)
        if not np.isfinite(users).all():
            problems.append("users contains non-finite cells")
        elif users.size and float(users.min()) < 0.0:
            problems.append("users contains negative counts")
        return problems


__all__ = ["CorruptDatasetError", "MobileTrafficDataset"]
