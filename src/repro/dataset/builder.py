"""End-to-end dataset builders for both workload resolutions.

``build_volume_level_dataset`` is the fast path used by the figure
benchmarks; ``build_session_level_dataset`` runs the full measurement
chain (subscribers → network → GTP → probe → DPI → aggregation) at a
configurable scale and is what validates the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro._rng import SeedLike, as_generator, spawn
from repro._time import TimeAxis
from repro.dataset.aggregation import CommuneAggregator
from repro.dataset.store import MobileTrafficDataset
from repro.dpi.classifier import ClassificationReport, DpiEngine
from repro.dpi.fingerprints import FingerprintDatabase
from repro.geo.country import Country, CountryConfig, build_country
from repro.network.probes import CoreProbe
from repro.network.topology import build_topology
from repro.services.catalog import ServiceCatalog, build_catalog
from repro.services.profiles import ProfileLibrary, build_profile_library
from repro.traffic.generator import SessionLevelGenerator, WorkloadConfig
from repro.traffic.intensity import IntensityModel, build_intensity_model
from repro.traffic.subscribers import synthesize_population
from repro.traffic.volume_model import VolumeModelConfig, synthesize_volume_dataset


@dataclass
class PipelineArtifacts:
    """Everything a builder created, for callers who need the internals."""

    country: Country
    catalog: ServiceCatalog
    profiles: ProfileLibrary
    model: IntensityModel
    dataset: MobileTrafficDataset
    dpi_report: Optional[ClassificationReport] = None
    extras: dict = field(default_factory=dict)


def build_volume_level_dataset(
    country: Optional[Country] = None,
    country_config: CountryConfig = CountryConfig(),
    axis: TimeAxis = TimeAxis(1),
    total_weekly_bytes: Optional[float] = None,
    volume_config: VolumeModelConfig = VolumeModelConfig(),
    n_services: int = 520,
    seed: SeedLike = None,
) -> PipelineArtifacts:
    """Build a nationwide-scale dataset with the closed-form volume model."""
    rng = as_generator(seed)
    if country is None:
        country = build_country(country_config, seed=spawn(rng, "builder.country"))
    catalog = build_catalog(n_services=n_services)
    profiles = build_profile_library()
    model = build_intensity_model(
        country,
        catalog,
        profiles,
        axis=axis,
        total_weekly_bytes=total_weekly_bytes,
        seed=spawn(rng, "builder.intensity"),
    )
    dataset = synthesize_volume_dataset(
        model, config=volume_config, seed=spawn(rng, "builder.volume")
    )
    return PipelineArtifacts(
        country=country,
        catalog=catalog,
        profiles=profiles,
        model=model,
        dataset=dataset,
    )


def build_session_level_dataset(
    n_subscribers: int = 2_000,
    country: Optional[Country] = None,
    country_config: CountryConfig = CountryConfig(n_communes=400),
    axis: TimeAxis = TimeAxis(1),
    total_weekly_bytes: Optional[float] = None,
    workload_config: WorkloadConfig = WorkloadConfig(),
    n_services: int = 60,
    unclassifiable_rate: float = 0.12,
    control_loss_rate: float = 0.0,
    audit_localization: bool = False,
    seed: SeedLike = None,
) -> PipelineArtifacts:
    """Run the full measurement chain at session resolution.

    The returned artifacts include the DPI classification report and, in
    ``extras``, the generator and probe objects for deeper inspection;
    with ``audit_localization=True`` a
    :class:`~repro.network.localization.LocalizationAuditor` measures
    the ULI error of every flow (``extras["auditor"]``).
    """
    rng = as_generator(seed)
    if country is None:
        country = build_country(country_config, seed=spawn(rng, "builder.country"))
    catalog = build_catalog(n_services=n_services)
    profiles = build_profile_library()
    model = build_intensity_model(
        country,
        catalog,
        profiles,
        axis=axis,
        total_weekly_bytes=total_weekly_bytes,
        seed=spawn(rng, "builder.intensity"),
    )
    topology = build_topology(country, seed=spawn(rng, "builder.topology"))
    population = synthesize_population(
        country, model, n_subscribers, seed=spawn(rng, "builder.population")
    )
    fingerprints = FingerprintDatabase(
        catalog,
        unclassifiable_rate=unclassifiable_rate,
        seed=spawn(rng, "builder.fingerprints"),
    )
    generator = SessionLevelGenerator(
        model,
        population,
        topology,
        fingerprints,
        config=workload_config,
        seed=spawn(rng, "builder.generator"),
    )
    probe = CoreProbe(control_loss_rate=control_loss_rate, seed=7).attach_to(
        generator.session_manager
    )
    auditor = None
    if audit_localization:
        from repro.network.localization import LocalizationAuditor

        auditor = LocalizationAuditor(
            topology, seed=spawn(rng, "builder.auditor")
        )
        generator.auditor = auditor

    generator.run_week()

    engine = DpiEngine(FingerprintDatabase(catalog, seed=0))
    aggregator = CommuneAggregator(country, catalog, engine, axis=axis)
    aggregator.ingest_all(probe.drain())
    dataset = aggregator.finalize()

    return PipelineArtifacts(
        country=country,
        catalog=catalog,
        profiles=profiles,
        model=model,
        dataset=dataset,
        dpi_report=engine.report,
        extras={
            "generator": generator,
            "probe": probe,
            "population": population,
            "topology": topology,
            "aggregator": aggregator,
            "auditor": auditor,
        },
    )


__all__ = [
    "PipelineArtifacts",
    "build_volume_level_dataset",
    "build_session_level_dataset",
]
