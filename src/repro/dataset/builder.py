"""End-to-end dataset builders for both workload resolutions.

``build_volume_level_dataset`` is the fast path used by the figure
benchmarks; ``build_session_level_dataset`` runs the full measurement
chain (subscribers → network → GTP → probe → DPI → aggregation) at a
configurable scale and is what validates the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from repro import obs
from repro._rng import SeedLike, as_generator, spawn
from repro._time import TimeAxis
from repro.dataset.aggregation import CommuneAggregator
from repro.dataset.merge import SpillStore
from repro.dataset.parallel import (
    MergedGeneratorStats,
    MergedProbeStats,
    ShardPlan,
    partition_subscribers,
)
from repro.obs import clock
from repro.dataset.store import MobileTrafficDataset
from repro.dpi.classifier import ClassificationReport, DpiEngine
from repro.dpi.fingerprints import FingerprintDatabase
from repro.geo.country import Country, CountryConfig, build_country
from repro.network.handover import HandoverStats
from repro.network.probes import CoreProbe, ProbeStats
from repro.network.topology import build_topology
from repro.resilience.coverage import CoverageReport
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.services.catalog import ServiceCatalog, build_catalog
from repro.services.profiles import ProfileLibrary, build_profile_library
from repro.traffic.generator import SessionLevelGenerator, WorkloadConfig
from repro.traffic.intensity import IntensityModel, build_intensity_model
from repro.traffic.subscribers import synthesize_population
from repro.traffic.volume_model import VolumeModelConfig, synthesize_volume_dataset


@dataclass
class PipelineArtifacts:
    """Everything a builder created, for callers who need the internals."""

    country: Country
    catalog: ServiceCatalog
    profiles: ProfileLibrary
    model: IntensityModel
    dataset: MobileTrafficDataset
    dpi_report: Optional[ClassificationReport] = None
    extras: dict = field(default_factory=dict)


def build_volume_level_dataset(
    country: Optional[Country] = None,
    country_config: Optional[CountryConfig] = None,
    axis: TimeAxis = TimeAxis(1),
    total_weekly_bytes: Optional[float] = None,
    volume_config: Optional[VolumeModelConfig] = None,
    n_services: int = 520,
    seed: SeedLike = None,
) -> PipelineArtifacts:
    """Build a nationwide-scale dataset with the closed-form volume model."""
    if country_config is None:
        country_config = CountryConfig()
    if volume_config is None:
        volume_config = VolumeModelConfig()
    rng = as_generator(seed)
    if country is None:
        with obs.span("country"):
            country = build_country(
                country_config, seed=spawn(rng, "builder.country")
            )
    catalog = build_catalog(n_services=n_services)
    profiles = build_profile_library()
    with obs.span("intensity"):
        model = build_intensity_model(
            country,
            catalog,
            profiles,
            axis=axis,
            total_weekly_bytes=total_weekly_bytes,
            seed=spawn(rng, "builder.intensity"),
        )
    with obs.span("volume_model"):
        dataset = synthesize_volume_dataset(
            model, config=volume_config, seed=spawn(rng, "builder.volume")
        )
    obs.add("builder.volume_datasets")
    return PipelineArtifacts(
        country=country,
        catalog=catalog,
        profiles=profiles,
        model=model,
        dataset=dataset,
    )


def build_session_level_dataset(
    n_subscribers: int = 2_000,
    country: Optional[Country] = None,
    country_config: Optional[CountryConfig] = None,
    axis: TimeAxis = TimeAxis(1),
    total_weekly_bytes: Optional[float] = None,
    workload_config: Optional[WorkloadConfig] = None,
    n_services: int = 60,
    unclassifiable_rate: float = 0.12,
    control_loss_rate: float = 0.0,
    audit_localization: bool = False,
    n_workers: int = 1,
    n_shards: Optional[int] = None,
    seed: SeedLike = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    chunk_size: Optional[int] = 8192,
    spill_dir: Optional[Union[str, Path]] = None,
    spill_budget_bytes: Optional[int] = None,
) -> PipelineArtifacts:
    """Run the full measurement chain at session resolution.

    The returned artifacts include the DPI classification report and, in
    ``extras``, the generator and probe objects for deeper inspection;
    with ``audit_localization=True`` a
    :class:`~repro.network.localization.LocalizationAuditor` measures
    the ULI error of every flow (``extras["auditor"]``).

    ``n_shards`` partitions the subscriber population into independent
    shards, each run through its own generator/probe/DPI chain and
    merged; ``n_workers`` controls how many processes execute them.
    Results depend on ``(seed, n_shards)`` only — for a fixed shard
    count, any worker count produces bit-identical datasets.
    ``n_shards=None`` derives the shard count from ``n_workers``.  With
    more than one shard the ``extras`` carry merged read-only stats
    facades for ``"generator"``/``"probe"`` (plus the per-shard partials
    under ``"shards"``) instead of live objects.

    Sharded builds run under the supervised executor
    (:func:`repro.resilience.supervisor.execute_shards_supervised`):

    - ``retry_policy`` bounds attempts, the per-shard watchdog, and the
      post-exhaustion behavior (default: 3 attempts, fail);
    - ``fault_plan`` injects deterministic faults (tests/CI only);
    - ``checkpoint_dir`` spills completed shard partials to atomic
      checkpoints; ``resume=True`` loads them instead of re-running
      (requires an **integer** ``seed`` so the checkpoint key can bind
      the run configuration).

    Every sharded build stamps ``coverage.*`` keys into
    ``dataset.meta`` and exposes ``extras["coverage"]`` /
    ``extras["execution"]``; a quarantine-degraded build reports
    ``coverage.fraction < 1``.

    **Memory model.** ``chunk_size`` streams the probe's records into
    the aggregator ``chunk_size`` records at a time instead of
    materializing a whole week per pipeline (``None`` restores the
    materializing path).  ``spill_dir`` bounds the *merge* side: shard
    partials beyond ``spill_budget_bytes`` resident bytes (default 0 —
    spill everything) go to disk through a
    :class:`~repro.dataset.merge.SpillStore` and are loaded back one at
    a time during the merge.  Spilling requires an integer ``seed``
    (the store is keyed like a checkpoint).  For a fixed
    ``(seed, n_shards)``, the dataset is bit-identical for **any**
    combination of ``chunk_size``, ``n_workers``, and spill settings —
    these knobs trade memory for time, never content — except under a
    nonzero ``control_loss_rate``, whose probe-side loss draws consume
    the probe RNG in arrival-batch order and therefore depend on how
    emission is chunked.
    """
    if country_config is None:
        country_config = CountryConfig(n_communes=400)
    if workload_config is None:
        workload_config = WorkloadConfig()
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_shards is None:
        n_shards = n_workers if n_workers > 1 else 1
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if audit_localization and n_shards > 1:
        raise ValueError("audit_localization requires n_shards=1")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_dir is not None and not isinstance(seed, int):
        raise ValueError(
            "checkpointing requires an integer seed — the checkpoint "
            "run key must bind the exact build configuration"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1 or None, got {chunk_size}")
    if spill_budget_bytes is not None and spill_dir is None:
        raise ValueError("spill_budget_bytes requires spill_dir")
    if spill_budget_bytes is not None and spill_budget_bytes < 0:
        raise ValueError(
            f"spill_budget_bytes must be >= 0, got {spill_budget_bytes}"
        )
    if spill_dir is not None and not isinstance(seed, int):
        raise ValueError(
            "spilling requires an integer seed — the spill store is "
            "keyed to the exact build configuration"
        )
    resilient = (
        retry_policy is not None
        or fault_plan is not None
        or checkpoint_dir is not None
        or spill_dir is not None
    )

    rng = as_generator(seed)
    if country is None:
        with obs.span("country"):
            country = build_country(
                country_config, seed=spawn(rng, "builder.country")
            )
    catalog = build_catalog(n_services=n_services)
    profiles = build_profile_library()
    with obs.span("intensity"):
        model = build_intensity_model(
            country,
            catalog,
            profiles,
            axis=axis,
            total_weekly_bytes=total_weekly_bytes,
            seed=spawn(rng, "builder.intensity"),
        )
    with obs.span("topology"):
        topology = build_topology(country, seed=spawn(rng, "builder.topology"))
    with obs.span("population"):
        population = synthesize_population(
            country, model, n_subscribers, seed=spawn(rng, "builder.population")
        )

    if n_shards > 1 or resilient:
        from repro.resilience.checkpoint import ShardCheckpoint, run_key_for
        from repro.resilience.supervisor import execute_shards_supervised

        plan = ShardPlan(
            country=country,
            catalog=catalog,
            model=model,
            topology=topology,
            axis=axis,
            workload_config=workload_config,
            unclassifiable_rate=unclassifiable_rate,
            control_loss_rate=control_loss_rate,
            shard_subscribers=partition_subscribers(population, n_shards),
            shard_rngs=[
                spawn(rng, "builder.shard", index=i) for i in range(n_shards)
            ],
            chunk_size=chunk_size,
        )
        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = ShardCheckpoint(
                checkpoint_dir,
                run_key_for(seed, n_shards, n_subscribers, n_services),
            )
        spill = None
        if spill_dir is not None:
            spill = SpillStore(
                spill_dir,
                run_key_for(seed, n_shards, n_subscribers, n_services),
                budget_bytes=spill_budget_bytes or 0,
            )
        with obs.span("shards"):
            execution = execute_shards_supervised(
                plan,
                n_workers,
                policy=retry_policy,
                fault_plan=fault_plan,
                checkpoint=checkpoint,
                seed=seed if isinstance(seed, int) else 0,
                resume=resume,
                spill=spill,
            )
            # Handles keep their obs export resident, so absorbing the
            # shard observability never pages a spilled partial back in.
            partials = execution.partials
            for partial in partials:  # index order: counters merge exactly
                if partial.obs_export is not None:
                    obs.absorb_shard(partial.obs_export)
                    obs.add("shard.results_merged")
        obs.add("shard.fan_out", n_shards)

        quarantined = execution.quarantined_indices
        coverage = CoverageReport(
            n_shards=n_shards,
            quarantined=quarantined,
            subscribers_total=len(population.subscribers),
            subscribers_lost=sum(
                len(plan.shard_subscribers[i]) for i in quarantined
            ),
            records_dropped=execution.records_dropped,
        )
        obs.set_gauge("resilience.coverage_fraction", coverage.fraction)

        engine = DpiEngine(FingerprintDatabase(catalog, seed=0))
        aggregator = CommuneAggregator(country, catalog, engine, axis=axis)
        probe_stats = ProbeStats()
        handover_stats = HandoverStats()
        sessions_generated = 0
        flows_generated = 0
        with obs.span("merge"):
            # Fixed shard order keeps float accumulation deterministic;
            # iter_results pages spilled partials back one at a time, so
            # merge-side RSS is one partial regardless of shard count.
            for result in execution.iter_results():
                aggregator.merge(result)
                engine.report.merge(result.report)
                probe_stats.merge(result.probe_stats)
                handover_stats.merge(result.handover_stats)
                sessions_generated += result.sessions_generated
                flows_generated += result.flows_generated
                obs.add("stream.merge_passes")
        with obs.span("finalize"):
            dataset = aggregator.finalize()
        dataset.meta.update(coverage.meta())
        obs.add("builder.session_datasets")
        obs.set_gauge("build.peak_rss_bytes", float(clock.peak_rss_bytes()))
        return PipelineArtifacts(
            country=country,
            catalog=catalog,
            profiles=profiles,
            model=model,
            dataset=dataset,
            dpi_report=engine.report,
            extras={
                "generator": MergedGeneratorStats(
                    sessions_generated, flows_generated, handover_stats
                ),
                "probe": MergedProbeStats(probe_stats),
                "population": population,
                "topology": topology,
                "aggregator": aggregator,
                "auditor": None,
                "shards": partials,
                "coverage": coverage,
                "execution": execution,
            },
        )

    fingerprints = FingerprintDatabase(
        catalog,
        unclassifiable_rate=unclassifiable_rate,
        seed=spawn(rng, "builder.fingerprints"),
    )
    generator = SessionLevelGenerator(
        model,
        population,
        topology,
        fingerprints,
        config=workload_config,
        seed=spawn(rng, "builder.generator"),
    )
    probe = CoreProbe(
        control_loss_rate=control_loss_rate, seed=spawn(rng, "builder.probe")
    ).attach_to(generator.session_manager)
    probe.attach_to_bulk(generator.session_manager)
    auditor = None
    if audit_localization:
        from repro.network.localization import LocalizationAuditor

        auditor = LocalizationAuditor(
            topology, seed=spawn(rng, "builder.auditor")
        )
        generator.auditor = auditor

    engine = DpiEngine(FingerprintDatabase(catalog, seed=0))
    aggregator = CommuneAggregator(country, catalog, engine, axis=axis)
    if chunk_size is not None:
        # Streamed: probe chunks fold into the aggregator as the week
        # is generated, so the build never holds the full record store.
        probe.stream_to(aggregator.ingest_columnar, chunk_rows=chunk_size)
        generator.run_week(chunk_size=chunk_size)
        probe.flush_stream()
    else:
        generator.run_week()
        for batch in probe.drain_batches():
            aggregator.ingest_columnar(batch)
    with obs.span("finalize"):
        dataset = aggregator.finalize()
    obs.add("builder.session_datasets")
    obs.set_gauge("build.peak_rss_bytes", float(clock.peak_rss_bytes()))

    return PipelineArtifacts(
        country=country,
        catalog=catalog,
        profiles=profiles,
        model=model,
        dataset=dataset,
        dpi_report=engine.report,
        extras={
            "generator": generator,
            "probe": probe,
            "population": population,
            "topology": topology,
            "aggregator": aggregator,
            "auditor": auditor,
        },
    )


__all__ = [
    "PipelineArtifacts",
    "build_volume_level_dataset",
    "build_session_level_dataset",
]
