"""Fig. 5 — clustering-quality indices vs the number of clusters.

Paper claims: running k-shape over all k with the Davies-Bouldin,
modified Davies-Bouldin, Dunn and Silhouette indices is *inconclusive* —
no index pinpoints a winning k; quality steadily degrades as k grows;
no consistent grouping of services exists.

Paper §4 (temporal analysis).  Reproduced finding: no clustering index
pinpoints a winning k — the head services resist temporal grouping.
"""

from __future__ import annotations

import numpy as np

from repro.core.indices import evaluate_clustering
from repro.core.kshape import kshape, kshape_best, sbd_matrix, z_normalize
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table

EXPERIMENT_ID = "fig5"
TITLE = "k-shape clustering quality indices vs k (inconclusive grouping)"
PAPER_SECTION = "§4"
FINDING = "k-shape finds no stable service grouping at any k"


def run(ctx: ExperimentContext, k_values=None, n_restarts: int = 3) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for direction in ("dl", "ul"):
        series = ctx.national_series_fine(direction)
        data = z_normalize(series)
        distances = sbd_matrix(data)
        n_series = data.shape[0]
        ks = list(k_values) if k_values is not None else list(range(2, n_series))

        rows = []
        reports = {}
        for k in ks:
            best = kshape_best(data, k, n_restarts=n_restarts, seed=1000 + k)
            report = evaluate_clustering(distances, best.labels)
            reports[k] = report
            rows.append(
                (
                    k,
                    f"{report.davies_bouldin:.3f}",
                    f"{report.davies_bouldin_star:.3f}",
                    f"{report.dunn:.3f}",
                    f"{report.silhouette:.3f}",
                )
            )
        result.blocks.append(
            format_table(
                ("k", "DB (min best)", "DB* (min best)", "D (max best)", "Sil (max best)"),
                rows,
                title=f"[{direction.upper()}] k-shape over all k",
            )
        )
        result.data[direction] = reports

        # "None of the indices pinpoints a value of k as a clear winner":
        # the best silhouette is weak in absolute terms, and no single k
        # stands out from the runner-up by a decisive margin.
        sils = np.array([reports[k].silhouette for k in ks])
        result.check_range(
            f"{direction} best silhouette",
            float(sils.max()),
            None,
            0.55,
            "no strong cluster structure (weak silhouette everywhere)",
        )
        if len(sils) >= 2:
            top_two = np.sort(sils)[-2:]
            result.check_range(
                f"{direction} winner margin (silhouette)",
                float(top_two[1] - top_two[0]),
                None,
                0.15,
                "none of the indices pinpoints a k as a clear winner",
            )
        # "Steadily decreasing clustering quality as k grows": quality at
        # high k is worse than at low k.
        low_k = [k for k in ks[: max(1, len(ks) // 3)]]
        high_k = [k for k in ks[-max(1, len(ks) // 3):]]
        sil_low = float(np.mean([reports[k].silhouette for k in low_k]))
        sil_high = float(np.mean([reports[k].silhouette for k in high_k]))
        result.add_check(
            f"{direction} quality degrades with k (silhouette)",
            sil_low - sil_high,
            "indices indicate steadily decreasing quality as k grows",
            sil_low >= sil_high,
        )
        # "A thorough manual examination of the internal structure ...
        # does not reveal any consistent grouping": at small k the
        # partition should neither collapse into one catch-all cluster
        # nor isolate a tight dominant group.
        small = kshape(data, ks[0], seed=1)
        dominant = float(np.bincount(small.labels).max() / data.shape[0])
        result.check_range(
            f"{direction} largest cluster share at k={ks[0]}",
            dominant,
            None,
            0.95,
            "no consistent grouping of mobile services emerges",
        )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig5.dl_best_silhouette": "dl best silhouette",
        "fig5.dl_largest_cluster_share": "dl largest cluster share at k=2",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
