"""Fig. 7 — peak-to-average ratios per service at each topical time.

Paper claims: services with demand peaks at the same topical time
undergo very diverse variations of activity (intensities differ widely);
midday and morning-commute peaks reach >100 % for some services while
weekend peaks stay within a few tens of percent.

Paper §4 (temporal analysis).  Reproduced finding: services sharing a
topical time still peak with widely different intensities.
"""

from __future__ import annotations

import numpy as np

from repro.core.topical import peak_intensities, peak_signature
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table
from repro.services.profiles import TopicalTime

EXPERIMENT_ID = "fig7"
TITLE = "Peak intensity per service at each topical time"
PAPER_SECTION = "§4"
FINDING = "peak intensities differ widely among services sharing a time"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    axis = ctx.fine_axis
    series = ctx.national_series_fine("dl")
    names = ctx.head_names

    intensities = {}
    for j, name in enumerate(names):
        signature = peak_signature(series[j], axis, name)
        intensities[name] = peak_intensities(series[j], signature, axis)
    result.data["intensities"] = intensities

    for topical in TopicalTime:
        values = {
            name: per_service[topical]
            for name, per_service in intensities.items()
            if topical in per_service
        }
        if not values:
            continue
        rows = [
            (name, f"{100 * value:.0f}%")
            for name, value in sorted(values.items(), key=lambda i: -i[1])
        ]
        result.blocks.append(
            format_table(
                ("service", "peak intensity"),
                rows,
                title=topical.value,
            )
        )
        result.data[topical.value] = values

        if len(values) >= 4:
            spread = max(values.values()) / max(min(values.values()), 1e-9)
            result.check_range(
                f"intensity spread at {topical.value}",
                spread,
                1.5,
                None,
                "services peaking at the same time undergo very diverse variations",
            )

    midday = result.data.get(TopicalTime.MIDDAY.value, {})
    if midday:
        result.check_range(
            "strongest midday peak",
            max(midday.values()),
            0.8,
            None,
            "midday intensities reach and exceed 100 % for some services",
        )
    weekend_md = result.data.get(TopicalTime.WEEKEND_MIDDAY.value, {})
    if weekend_md:
        result.check_range(
            "median weekend-midday peak",
            float(np.median(list(weekend_md.values()))),
            None,
            1.2,
            "weekend intensities stay within a few tens of percent",
        )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig7.strongest_midday_peak": "strongest midday peak",
        "fig7.median_weekend_midday_peak": "median weekend-midday peak",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
