"""Markdown report generation for experiment runs.

``repro-experiments --all --output report.md`` writes a single document
with every figure's data blocks and expectation checks — the artifact a
reviewer reads next to EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.experiments.base import ExperimentResult


def render_markdown(results: Dict[str, ExperimentResult]) -> str:
    """Render a dict of experiment results as one markdown document."""
    if not results:
        raise ValueError("no results to render")
    lines = ["# Reproduction report", ""]
    total = passed = 0
    for result in results.values():
        total += len(result.checks)
        passed += sum(c.passed for c in result.checks)
    lines.append(
        f"{len(results)} experiments, {passed}/{total} paper-expectation "
        "checks passed."
    )
    lines.append("")

    for result in results.values():
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        for block in result.blocks:
            lines.append("```")
            lines.append(block)
            lines.append("```")
            lines.append("")
        if result.checks:
            lines.append("| check | paper | measured | status |")
            lines.append("|---|---|---|---|")
            for check in result.checks:
                status = "pass" if check.passed else "**FAIL**"
                lines.append(
                    f"| {check.name} | {check.expectation} | "
                    f"{check.measured:.4g} | {status} |"
                )
            lines.append("")
    return "\n".join(lines)


def write_report(
    results: Dict[str, ExperimentResult], path: Union[str, Path]
) -> Path:
    """Write the markdown report to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_markdown(results), encoding="utf-8")
    return path


__all__ = ["render_markdown", "write_report"]
