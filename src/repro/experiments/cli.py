"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments --list
    repro-experiments fig10
    repro-experiments --all --seed 13 --communes 2500

Exit codes follow the shared contract in :mod:`repro._exit`: ``0`` all
requested experiments passed their checks, ``1`` at least one check
failed, ``2`` unknown experiment ids, ``3`` internal failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._exit import EXIT_INTERNAL
from repro.experiments import (
    PAPER_NOTES,
    REGISTRY,
    build_default_context,
    experiment_ids,
    run_figure,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'Not All Apps Are Created Equal' "
            "(CoNEXT 2017) on a synthetic nationwide dataset."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (e.g. fig2 fig10); default: all",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--communes",
        type=int,
        default=1_600,
        help="tessellation size (36000 = the paper's full France)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write a markdown report of the run to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except Exception as exc:  # unexpected: the tool itself broke
        print(f"repro-experiments: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


def _main(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for eid in experiment_ids():
            section, finding = PAPER_NOTES[eid]
            print(f"{eid:8s} {REGISTRY[eid][0]}")
            print(f"{'':8s} {section}: {finding}")
        return 0

    targets = args.experiments or []
    if args.all or not targets:
        targets = experiment_ids()
    unknown = [t for t in targets if t not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(experiment_ids())}", file=sys.stderr)
        return 2

    ctx = build_default_context(seed=args.seed, n_communes=args.communes)
    failures = 0
    results = {}
    for eid in targets:
        result = run_figure(eid, ctx)
        results[eid] = result
        print(result.render())
        print()
        if not result.all_passed:
            failures += 1
    if args.output:
        from repro.experiments.report_writer import write_report

        path = write_report(results, args.output)
        print(f"report written to {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
