"""Shared experiment context.

Building the synthetic country and dataset dominates the cost of every
figure, so all experiments share one :class:`ExperimentContext`: the
hourly nationwide dataset for the spatial figures, plus (lazily) a
15-minute-resolution national series bundle for the temporal figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro._rng import as_generator, spawn
from repro._time import TimeAxis
from repro.dataset.builder import PipelineArtifacts, build_volume_level_dataset
from repro.dataset.store import MobileTrafficDataset
from repro.geo.country import CountryConfig
from repro.traffic.intensity import build_intensity_model
from repro.traffic.volume_model import synthesize_national_series

#: Time resolution of the temporal analyses (15-minute bins); the peak
#: detector's 2-hour lag then spans 8 samples.
FINE_BINS_PER_HOUR = 4


@dataclass
class ExperimentContext:
    """Everything the figure runners need, built once."""

    artifacts: PipelineArtifacts
    seed: int
    _fine_series: Dict[str, np.ndarray] = field(default_factory=dict)
    _fine_axis: TimeAxis = TimeAxis(FINE_BINS_PER_HOUR)

    @property
    def dataset(self) -> MobileTrafficDataset:
        return self.artifacts.dataset

    @property
    def fine_axis(self) -> TimeAxis:
        return self._fine_axis

    def national_series_fine(self, direction: str) -> np.ndarray:
        """(n_head, fine bins) national series at 15-minute resolution.

        The fine-axis streams are spawned from the context seed with
        stable labels (never ad-hoc ``seed + N`` generators), so they are
        decorrelated from the builder's streams by construction; the
        resulting series are pinned by
        ``tests/unit/experiments/test_context.py``.
        """
        if direction not in self._fine_series:
            parent = as_generator(self.seed)
            model = build_intensity_model(
                self.artifacts.country,
                self.artifacts.catalog,
                self.artifacts.profiles,
                axis=self._fine_axis,
                seed=spawn(parent, "context.fine-intensity"),
            )
            for d in ("dl", "ul"):
                self._fine_series[d] = synthesize_national_series(
                    model, d, seed=spawn(parent, f"context.fine-series.{d}")
                )
        return self._fine_series[direction]

    @property
    def head_names(self) -> List[str]:
        return list(self.dataset.head_names)


def build_default_context(
    seed: int = 7,
    n_communes: int = 1_600,
    country_config: Optional[CountryConfig] = None,
) -> ExperimentContext:
    """Build the standard experiment context.

    ``n_communes`` trades fidelity for speed; 1,600 reproduces every
    figure in seconds, 36,000 matches the paper's full tessellation.
    """
    config = country_config or CountryConfig(n_communes=n_communes)
    artifacts = build_volume_level_dataset(country_config=config, seed=seed)
    return ExperimentContext(artifacts=artifacts, seed=seed)


def build_default_dataset(seed: int = 7, n_communes: int = 1_600) -> MobileTrafficDataset:
    """Convenience: just the dataset, for quickstart-style use."""
    return build_default_context(seed=seed, n_communes=n_communes).dataset


__all__ = [
    "FINE_BINS_PER_HOUR",
    "ExperimentContext",
    "build_default_context",
    "build_default_dataset",
]
