"""Experiment scaffolding: results, checks, rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs


@dataclass
class Check:
    """One paper-expectation check: a measured value vs the paper's claim.

    The reproduction targets *shapes*, not absolute numbers: each check
    encodes the qualitative/quantitative claim the paper makes and
    whether the synthetic reproduction satisfies it.
    """

    name: str
    measured: float
    expectation: str
    passed: bool

    def render(self) -> str:
        status = "OK " if self.passed else "FAIL"
        return f"  [{status}] {self.name}: measured {self.measured:.4g} — paper: {self.expectation}"


@dataclass
class ExperimentResult:
    """Output of one figure reproduction."""

    experiment_id: str
    title: str
    #: Raw result payload (arrays, dicts) for programmatic use.
    data: Dict[str, Any] = field(default_factory=dict)
    #: Pre-rendered report blocks (tables, sparklines, maps).
    blocks: List[str] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def add_check(
        self, name: str, measured: float, expectation: str, passed: bool
    ) -> None:
        """Record one expectation check."""
        passed = bool(passed)
        obs.add("experiments.checks_total")
        if not passed:
            obs.add("experiments.checks_failed")
        self.checks.append(
            Check(
                name=name,
                measured=float(measured),
                expectation=expectation,
                passed=passed,
            )
        )

    def check_range(
        self,
        name: str,
        measured: float,
        lo: Optional[float],
        hi: Optional[float],
        expectation: str,
    ) -> None:
        """Check that a measured value falls within [lo, hi]."""
        ok = True
        if lo is not None and measured < lo:
            ok = False
        if hi is not None and measured > hi:
            ok = False
        self.add_check(name, measured, expectation, ok)

    def render(self) -> str:
        """Full text report of this experiment."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        lines.extend(self.blocks)
        if self.checks:
            lines.append("Paper-expectation checks:")
            lines.extend(check.render() for check in self.checks)
            status = "PASS" if self.all_passed else "PARTIAL"
            lines.append(f"Overall: {status} ({sum(c.passed for c in self.checks)}/{len(self.checks)} checks)")
        return "\n".join(lines)


__all__ = ["Check", "ExperimentResult"]
