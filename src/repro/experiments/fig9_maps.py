"""Fig. 9 — per-subscriber activity maps and the coverage argument.

Paper claims: the Twitter per-subscriber map lights up on large cities
and the high-speed rail arteries; the Netflix map shows an even starker
urban/transport duality, with usage dramatically low or absent in rural
France; the 3G/4G coverage maps explain it — Netflix usage follows the
4G footprint while (pervasive) 3G suffices for Twitter.

Paper §5 (spatial analysis).  Reproduced finding: per-subscriber demand
follows cities, rail arteries and — for Netflix — the 4G footprint.
"""

from __future__ import annotations

import numpy as np

from repro.core.spatial_analysis import activity_grid, technology_contrast
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.geo.urbanization import UrbanizationClass
from repro.report.maps import render_grid
from repro.report.tables import format_table

EXPERIMENT_ID = "fig9"
TITLE = "Per-subscriber activity maps (Twitter, Netflix) and 3G/4G coverage"
PAPER_SECTION = "§5"
FINDING = "demand follows cities, rail arteries and the 4G footprint"


def run(ctx: ExperimentContext, grid_size: int = 28) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    dataset = ctx.dataset

    for service in ("Twitter", "Netflix"):
        grid = activity_grid(dataset, service, "dl", grid_size=grid_size)
        result.data[f"grid_{service}"] = grid
        result.blocks.append(
            render_grid(grid, title=f"{service} weekly per-subscriber DL")
        )

    # Coverage summary standing in for the right-hand map.
    cov_rows = []
    for label, mask in (
        ("3G", dataset.has_3g.astype(bool)),
        ("4G", dataset.has_4g.astype(bool)),
    ):
        pop_share = float(dataset.users[mask].sum() / dataset.users.sum())
        cov_rows.append((label, f"{100 * mask.mean():.1f}%", f"{100 * pop_share:.1f}%"))
    result.blocks.append(
        format_table(
            ("technology", "commune coverage", "subscriber coverage"),
            cov_rows,
            title="Coverage",
        )
    )

    result.check_range(
        "3G commune coverage",
        float(dataset.has_3g.mean()),
        0.97,
        None,
        "3G coverage is pervasive",
    )
    result.check_range(
        "4G commune coverage",
        float(dataset.has_4g.mean()),
        0.25,
        0.85,
        "4G concentrates on cities and arteries",
    )

    # The urban/rural and technology contrasts.
    contrasts = {}
    for service in ("Twitter", "Netflix"):
        tech = technology_contrast(dataset, service, "dl")
        per_sub = dataset.per_subscriber_volumes(service, "dl")
        urban = dataset.class_mask(UrbanizationClass.URBAN)
        rural = dataset.class_mask(UrbanizationClass.RURAL)
        urban_mean = float(
            (per_sub[urban] * dataset.users[urban]).sum()
            / dataset.users[urban].sum()
        )
        rural_mean = float(
            (per_sub[rural] * dataset.users[rural]).sum()
            / dataset.users[rural].sum()
        )
        contrasts[service] = {
            "urban_over_rural": urban_mean / max(rural_mean, 1e-9),
            "tech_ratio": tech["ratio_4g_over_3g"],
        }
    result.data["contrasts"] = contrasts
    result.blocks.append(
        format_table(
            ("service", "urban/rural per-sub ratio", "4G/3G-only per-sub ratio"),
            [
                (s, f"{v['urban_over_rural']:.1f}x", f"{v['tech_ratio']:.1f}x")
                for s, v in contrasts.items()
            ],
            title="Urban and technology contrast",
        )
    )

    result.check_range(
        "Netflix urban/rural contrast",
        contrasts["Netflix"]["urban_over_rural"],
        6.0,
        None,
        "Netflix usage dramatically low or absent in rural regions",
    )
    result.add_check(
        "Netflix follows 4G more than Twitter",
        contrasts["Netflix"]["tech_ratio"] / max(contrasts["Twitter"]["tech_ratio"], 1e-9),
        "4G coverage seems to drive Netflix usage; Twitter is 3G-sufficient",
        contrasts["Netflix"]["tech_ratio"] > 2.0 * contrasts["Twitter"]["tech_ratio"],
    )
    result.check_range(
        "Twitter urban/rural contrast moderate",
        contrasts["Twitter"]["urban_over_rural"],
        1.2,
        8.0,
        "Twitter's spatial distribution is more uniform than Netflix's",
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig9.commune_coverage_4g": "4G commune coverage",
        "fig9.netflix_urban_rural_contrast": "Netflix urban/rural contrast",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
