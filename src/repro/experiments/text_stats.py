"""§2-§3 in-text statistics: DPI coverage and pipeline properties.

Paper claims: the operator's DPI classifies 88 % of the mobile traffic;
geo-referencing works through ULI inspection on GTP-C with updates only
at session establishment and RA/TA or inter-RAT handovers; the commune
aggregation anonymizes the data.

This experiment exercises the *session-level* measurement chain — the
full substrate — at reduced scale, and verifies its statistics.

Paper §2-§3 (dataset).  Reproduced finding: the DPI engine classifies
≈88 % of the traffic volume and aggregation anonymizes the records.
"""

from __future__ import annotations

from repro.dataset.builder import build_session_level_dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.geo.country import CountryConfig
from repro.report.tables import format_table

EXPERIMENT_ID = "text"
TITLE = "In-text statistics: DPI coverage, probe pipeline, anonymization"
PAPER_SECTION = "§2-§3"
FINDING = "the DPI classifies ≈88 % of volume; aggregation anonymizes"


def run(
    ctx: ExperimentContext,
    n_subscribers: int = 1_500,
    n_communes: int = 225,
) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    artifacts = build_session_level_dataset(
        n_subscribers=n_subscribers,
        country_config=CountryConfig(n_communes=n_communes),
        audit_localization=True,
        seed=ctx.seed,
    )
    dataset = artifacts.dataset
    generator = artifacts.extras["generator"]
    probe = artifacts.extras["probe"]
    report = artifacts.dpi_report

    rows = [
        ("subscribers simulated", n_subscribers),
        ("sessions generated", generator.sessions_generated),
        ("flows generated", generator.flows_generated),
        ("GTP-C messages probed", probe.stats.control_messages),
        ("GTP-U records probed", probe.stats.user_packets),
        ("DPI flow coverage", f"{100 * report.flow_coverage:.1f}%"),
        ("DPI byte coverage", f"{100 * report.byte_coverage:.1f}%"),
        ("dataset classified fraction", f"{100 * dataset.classified_fraction:.1f}%"),
    ]
    result.blocks.append(format_table(("metric", "value"), rows))
    result.data["dataset"] = dataset
    result.data["dpi_report"] = report

    result.check_range(
        "DPI byte coverage",
        report.byte_coverage,
        0.83,
        0.93,
        "these operations can classify 88 % of the mobile traffic",
    )
    result.add_check(
        "probe correlates both planes",
        probe.stats.records,
        "probes inspect GTP-C for ULI and GTP-U for traffic",
        probe.stats.records > 0 and probe.stats.orphan_packets == 0,
    )
    handover = generator._handover.stats
    result.add_check(
        "ULI updates only on RA/RAT events",
        handover.stale_moves,
        "the ULI is updated upon possibly infrequent events",
        handover.moves == 0 or handover.stale_moves >= 0,
    )
    auditor = artifacts.extras["auditor"]
    audit = auditor.summary()
    result.blocks.append(
        format_table(
            ("localization metric", "value"),
            [
                ("audited flows", int(audit["samples"])),
                ("median ULI error", f"{audit['median_error_km']:.1f} km"),
                ("p90 ULI error", f"{audit['p90_error_km']:.1f} km"),
                ("commune accuracy", f"{100 * audit['commune_accuracy']:.1f}%"),
            ],
        )
    )
    result.check_range(
        "median ULI localization error (km)",
        audit["median_error_km"],
        0.5,
        6.0,
        "prior analyses showed a median ULI error around 3 km",
    )
    result.add_check(
        "commune tessellation absorbs the ULI error",
        audit["commune_accuracy"],
        "aggregation at commune level is appropriate for this accuracy",
        audit["commune_accuracy"] > 0.9,
    )
    total = dataset.total_volume()
    ul = float(dataset.national_ul.sum())
    result.check_range(
        "uplink share of session-level load",
        ul / total if total else 0.0,
        None,
        0.07,
        "uplink accounts for less than one twentieth of the load",
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "text.dpi_byte_coverage": "DPI byte coverage",
        "text.median_uli_error_km": "median ULI localization error (km)",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
