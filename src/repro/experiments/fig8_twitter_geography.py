"""Fig. 8 — Twitter: commune concentration and per-subscriber CDF.

Paper claims: the top 1 % / 10 % of communes generate over 50 % / 90 %
of the Twitter traffic; the per-subscriber weekly usage CDF over
communes is highly skewed — half of the communes consume a negligible
load while other areas reach tens of MB per subscriber and week.

Paper §5 (spatial analysis).  Reproduced finding: the top 1 % of
communes carry over half of the Twitter traffic.
"""

from __future__ import annotations

import numpy as np

from repro._units import format_bytes
from repro.core.spatial_analysis import per_subscriber_cdf, ranked_commune_curve
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table

EXPERIMENT_ID = "fig8"
TITLE = "Twitter geography: commune concentration and per-subscriber CDF"
PAPER_SECTION = "§5"
FINDING = "the top 1 % of communes carry >50 % of Twitter traffic"

SERVICE = "Twitter"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for direction in ("dl", "ul"):
        volumes = ctx.dataset.commune_volumes(SERVICE, direction)
        curve = ranked_commune_curve(volumes)
        rows = [
            (f"{100 * f:g}%", f"{100 * curve.share_at(f):.1f}%")
            for f in (0.01, 0.05, 0.10, 0.50, 1.00)
        ]
        result.blocks.append(
            format_table(
                ("top communes", "share of traffic"),
                rows,
                title=f"[{direction.upper()}] cumulative {SERVICE} traffic on ranked communes",
            )
        )
        result.data[f"curve_{direction}"] = curve

    dl_curve = result.data["curve_dl"]
    result.check_range(
        "top 1% commune share (DL)",
        dl_curve.share_at(0.01),
        0.40,
        None,
        "top 1 % of communes generate over 50 % of the traffic",
    )
    result.check_range(
        "top 10% commune share (DL)",
        dl_curve.share_at(0.10),
        0.75,
        None,
        "top 10 % of communes generate over 90 % of the traffic",
    )

    per_sub = ctx.dataset.per_subscriber_volumes(SERVICE, "dl")
    values, prob = per_subscriber_cdf(per_sub)
    result.data["per_subscriber"] = (values, prob)
    quantiles = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)
    rows = [
        (f"p{int(100 * q)}", format_bytes(float(np.quantile(per_sub, q))))
        for q in quantiles
    ]
    result.blocks.append(
        format_table(
            ("quantile", "weekly per-subscriber volume"),
            rows,
            title="[DL] per-subscriber usage over communes",
        )
    )

    median = float(np.median(per_sub))
    p95 = float(np.quantile(per_sub, 0.95))
    result.check_range(
        "per-subscriber skew (p95/median)",
        p95 / max(median, 1.0),
        4.0,
        None,
        "highly skewed distribution across communes",
    )
    result.check_range(
        "heaviest communes (p95)",
        p95,
        10e6,
        None,
        "users in some areas download tens of MB per week",
    )
    bottom_quarter = float(np.quantile(per_sub, 0.25))
    result.add_check(
        "bottom-quartile communes are light",
        bottom_quarter,
        "half of the communes consume a (comparatively) negligible load",
        bottom_quarter < 0.25 * p95,
    )

    # "The considerations above refer to Twitter, but they are valid for
    # any mobile service": the concentration must hold across the board.
    top1_shares = []
    for name in ctx.dataset.head_names:
        volumes = ctx.dataset.commune_volumes(name, "dl")
        if volumes.sum() > 0:
            top1_shares.append(ranked_commune_curve(volumes).share_at(0.01))
    strong = sum(share > 0.35 for share in top1_shares)
    result.data["top1_shares"] = top1_shares
    result.check_range(
        "services with concentrated geography",
        strong,
        len(top1_shares) - 2,
        None,
        "the considerations are valid for any mobile service",
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig8.top1pct_commune_share": "top 1% commune share (DL)",
        "fig8.top10pct_commune_share": "top 10% commune share (DL)",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "SERVICE", "run"]
