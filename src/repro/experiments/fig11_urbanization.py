"""Fig. 11 — per-user volume ratios and temporal correlation by
urbanization level.

Paper claims: (top) semi-urban subscribers consume like urban ones
(ratio ≈1), rural subscribers about half, TGV passengers twice or more;
the results are fairly consistent across services.  (bottom) the
cross-region temporal r² is high for urban/semi-urban/rural
combinations — urbanization barely affects *when* services are used —
while TGV regions show distinct temporal patterns.

Paper §6 (urbanization analysis).  Reproduced finding: urbanization
halves or doubles volume but barely shifts timing — except on the
high-speed trains.
"""

from __future__ import annotations

import numpy as np

from repro.core.urbanization_analysis import (
    all_services_cross_r2,
    all_services_slopes,
    summarize_slopes,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.geo.urbanization import UrbanizationClass
from repro.report.tables import format_table

EXPERIMENT_ID = "fig11"
TITLE = "Per-user volume ratios and temporal correlation across urbanization levels"
PAPER_SECTION = "§6"
FINDING = "urbanization shapes volume, not timing — except on the TGV"


def run(ctx: ExperimentContext, direction: str = "dl") -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    slopes = all_services_slopes(ctx.dataset, direction)
    cross = all_services_cross_r2(ctx.dataset, direction)
    result.data["slopes"] = slopes
    result.data["cross_r2"] = cross

    rows = [
        (
            name,
            f"{per[UrbanizationClass.SEMI_URBAN]:.2f}",
            f"{per[UrbanizationClass.RURAL]:.2f}",
            f"{per[UrbanizationClass.TGV]:.2f}",
        )
        for name, per in slopes.items()
    ]
    result.blocks.append(
        format_table(
            ("service", "semi-urban/urban", "rural/urban", "TGV/urban"),
            rows,
            title="Per-user volume ratio vs urban (regression slopes)",
        )
    )
    rows = [
        (
            name,
            f"{per[UrbanizationClass.URBAN]:.2f}",
            f"{per[UrbanizationClass.SEMI_URBAN]:.2f}",
            f"{per[UrbanizationClass.RURAL]:.2f}",
            f"{per[UrbanizationClass.TGV]:.2f}",
        )
        for name, per in cross.items()
    ]
    result.blocks.append(
        format_table(
            ("service", "urban", "semi-urban", "rural", "TGV"),
            rows,
            title="Mean temporal r2 of each region vs the others",
        )
    )

    means = summarize_slopes(slopes)
    result.check_range(
        "mean semi-urban/urban ratio",
        means[UrbanizationClass.SEMI_URBAN],
        0.75,
        1.15,
        "semi-urban and urban usage levels are similar (≈1)",
    )
    result.check_range(
        "mean rural/urban ratio",
        means[UrbanizationClass.RURAL],
        0.30,
        0.70,
        "rural subscribers consume around a half",
    )
    result.check_range(
        "mean TGV/urban ratio",
        means[UrbanizationClass.TGV],
        1.8,
        None,
        "TGV passengers generate twice or more the urban volume",
    )

    # Consistency across services (excluding the designed outliers).
    rural_ratios = [
        per[UrbanizationClass.RURAL]
        for name, per in slopes.items()
        if name not in ("Netflix", "iCloud", "Pokemon Go")
    ]
    result.check_range(
        "rural ratio spread across services (std)",
        float(np.std(rural_ratios)),
        None,
        0.25,
        "results are fairly consistent across services",
    )

    non_tgv = [
        np.mean([
            per[UrbanizationClass.URBAN],
            per[UrbanizationClass.SEMI_URBAN],
            per[UrbanizationClass.RURAL],
        ])
        for per in cross.values()
    ]
    tgv = [per[UrbanizationClass.TGV] for per in cross.values()]
    result.check_range(
        "mean temporal r2 among urban/semi/rural",
        float(np.mean(non_tgv)),
        0.75,
        None,
        "correlations are high for urban/semi-urban/rural combinations",
    )
    result.add_check(
        "TGV temporal r2 is markedly lower",
        float(np.mean(tgv)),
        "subscribers on TGVs have quite different temporal patterns",
        float(np.mean(tgv)) < float(np.mean(non_tgv)) - 0.15,
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig11.semi_urban_volume_ratio": "mean semi-urban/urban ratio",
        "fig11.rural_volume_ratio": "mean rural/urban ratio",
        "fig11.tgv_volume_ratio": "mean TGV/urban ratio",
        "fig11.non_tgv_temporal_r2": "mean temporal r2 among urban/semi/rural",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
