"""Fig. 4 — sample weekly time series with smoothed z-score detection.

Paper claims: classic diurnal patterns (higher daytime activity, reduced
overnight traffic) and a weekend/working-day dichotomy, with
service-specific fluctuation patterns; the smoothed z-score algorithm
(threshold 3, lag 2 h, influence 0.4) marks the activity peaks.

Paper §4 (temporal analysis).  Reproduced finding: classic diurnal and
weekly rhythms, but with service-specific peak arrangements.
"""

from __future__ import annotations

import numpy as np

from repro._time import DAY_NAMES
from repro.core.topical import peak_signature
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.series import render_series

EXPERIMENT_ID = "fig4"
TITLE = "Sample service time series and smoothed z-score peak detection"
PAPER_SECTION = "§4"
FINDING = "diurnal weekly rhythms with service-specific peak arrangements"

#: The four sample services the paper plots.
SAMPLE_SERVICES = ("Facebook", "SnapChat", "Netflix", "Apple store")


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    axis = ctx.fine_axis
    series = ctx.national_series_fine("dl")
    names = ctx.head_names

    result.blocks.append("Week runs " + " ".join(DAY_NAMES) + " (Sat..Fri).")
    for service in SAMPLE_SERVICES:
        j = names.index(service)
        signature = peak_signature(series[j], axis, service)
        result.blocks.append(
            render_series(
                service,
                series[j],
                markers=[int(b) for b in signature.moment_bins],
            )
        )
        result.data[service] = signature

        day_max = _daily_peak_ratio(series[j], axis)
        result.check_range(
            f"{service} day/night ratio",
            day_max,
            2.0,
            None,
            "higher diurnal activity vs much reduced overnight traffic",
        )
        result.add_check(
            f"{service} peaks detected",
            len(signature.moment_bins),
            "the detector marks activity peaks",
            len(signature.moment_bins) > 0,
        )

    # The Facebook illustration (right plots of Fig. 4): signal, smoothed
    # version, and the band.
    j = names.index("Facebook")
    detection = result.data["Facebook"].detection
    monday = slice(2 * 24 * axis.bins_per_hour, 3 * 24 * axis.bins_per_hour)
    result.blocks.append("Facebook, Monday (signal / smoothed / upper band):")
    result.blocks.append(render_series("signal", series[j][monday]))
    result.blocks.append(render_series("smoothed", detection.moving_mean[monday]))
    result.blocks.append(render_series("band", detection.upper_band[monday]))

    # Distinct fluctuation patterns across the samples.
    patterns = {
        s: frozenset(result.data[s].topical_times) for s in SAMPLE_SERVICES
    }
    result.add_check(
        "sample services show different peak arrangements",
        len(set(patterns.values())),
        "other services show other traffic peak arrangements",
        len(set(patterns.values())) >= 3,
    )
    return result


def _daily_peak_ratio(series: np.ndarray, axis) -> float:
    """Median over days of (daily max / daily min)."""
    per_day = series.reshape(7, -1)
    mins = np.maximum(per_day.min(axis=1), 1e-12)
    return float(np.median(per_day.max(axis=1) / mins))



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig4.facebook_day_night_ratio": "Facebook day/night ratio",
        "fig4.distinct_peak_arrangements": "sample services show different peak arrangements",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "SAMPLE_SERVICES", "run"]
