"""Fig. 2 — ranking of mobile services on traffic volume, with Zipf fit.

Paper claims: volumes span ~10 orders of magnitude; the top half of
services follows a Zipf law with exponent ≈1.69 (DL) / ≈1.55 (UL); a
cut-off separates the bottom half.

Paper §3 (service usage overview).  Reproduced finding: service volumes
span ~10 decades and the head follows a Zipf law with exponent ≈1.6.
"""

from __future__ import annotations

import numpy as np

from repro.core.zipf_fit import fit_zipf
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table

EXPERIMENT_ID = "fig2"
TITLE = "Service rank vs normalized traffic volume (Zipf head, tail cutoff)"
PAPER_SECTION = "§3"
FINDING = "volumes span ~10 decades; the head follows a Zipf law (α≈1.6)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for direction, paper_exponent in (("dl", 1.69), ("ul", 1.55)):
        volumes = ctx.dataset.service_rank_volumes(direction)
        normalized = volumes / volumes.sum()
        fit = fit_zipf(volumes)

        sample_ranks = [1, 2, 5, 10, 20, 50, 100, 250, 400, len(normalized)]
        rows = []
        for rank in sample_ranks:
            if rank > len(normalized):
                continue
            rows.append(
                (
                    rank,
                    f"{normalized[rank - 1]:.3e}",
                    f"{fit.predicted(np.array([rank]))[0]:.3e}",
                )
            )
        result.blocks.append(
            format_table(
                ("rank", "normalized volume", "Zipf fit"),
                rows,
                title=f"[{direction.upper()}] fitted exponent {fit.exponent:.2f} "
                f"(paper: {paper_exponent}), log-log r2 {fit.r2:.3f}",
            )
        )

        result.check_range(
            f"{direction} Zipf exponent",
            fit.exponent,
            paper_exponent - 0.45,
            paper_exponent + 0.45,
            f"≈{paper_exponent} over the top half",
        )
        result.check_range(
            f"{direction} volume span (decades)",
            fit.span_orders_of_magnitude,
            7.0,
            None,
            "~10 orders of magnitude",
        )
        # The cut-off: the bottom half decays faster than the fitted law.
        n = len(normalized)
        tail_rank = int(0.9 * n)
        predicted_tail = float(fit.predicted(np.array([tail_rank]))[0])
        measured_tail = float(normalized[tail_rank - 1])
        result.add_check(
            f"{direction} tail cutoff below Zipf",
            measured_tail / predicted_tail,
            "bottom half falls below the Zipf extrapolation",
            measured_tail < predicted_tail,
        )
        result.data[direction] = {
            "normalized": normalized,
            "exponent": fit.exponent,
            "span": fit.span_orders_of_magnitude,
        }
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig2.dl_zipf_exponent": "dl Zipf exponent",
        "fig2.dl_volume_span_decades": "dl volume span (decades)",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
