"""Fig. 10 — spatial correlation of per-user traffic between services.

Paper claims: pairwise Pearson r² between the per-subscriber commune
vectors of service pairs is strongly positive, averaging 0.60 (DL) and
0.53 (UL); the only weakly-correlated services are Netflix (absent in
rural areas) and iCloud (uniformly distributed background uploads).

Paper §5 (spatial analysis).  Reproduced finding: per-user demand
correlates spatially across services (mean r² ≈ 0.6), the only
outliers being Netflix and iCloud.
"""

from __future__ import annotations

import numpy as np

from repro.core.correlation import upper_triangle
from repro.core.spatial_analysis import outlier_scores, pairwise_r2_matrix
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table

EXPERIMENT_ID = "fig10"
TITLE = "Per-user traffic spatial correlation between services"
PAPER_SECTION = "§5"
FINDING = "spatial demand correlates across services except Netflix/iCloud"

OUTLIERS = ("Netflix", "iCloud")


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    for direction, paper_mean in (("dl", 0.60), ("ul", 0.53)):
        matrix, names = pairwise_r2_matrix(ctx.dataset, direction)
        pairs = upper_triangle(matrix)
        scores = outlier_scores(ctx.dataset, direction)
        result.data[direction] = {"matrix": matrix, "scores": scores}

        core = {
            name: score for name, score in scores.items() if name not in OUTLIERS
        }
        rows = [
            (name, f"{score:.2f}")
            for name, score in sorted(scores.items(), key=lambda i: -i[1])
        ]
        result.blocks.append(
            format_table(
                ("service", "mean r2 vs others"),
                rows,
                title=f"[{direction.upper()}] mean r2 {pairs.mean():.2f} "
                f"(paper: {paper_mean}); CDF deciles: "
                + " ".join(f"{np.quantile(pairs, q):.2f}" for q in np.arange(0.1, 1.0, 0.2)),
            )
        )

        result.check_range(
            f"{direction} mean pairwise r2",
            float(pairs.mean()),
            paper_mean - 0.18,
            paper_mean + 0.18,
            f"average r2 ≈ {paper_mean}",
        )
        result.add_check(
            f"{direction} majority strongly positive",
            float(np.mean(pairs > 0.3)),
            "the majority of pairwise values are strongly positive",
            float(np.mean(pairs > 0.3)) > 0.5,
        )
        # "Low correlations are only experienced with Netflix ... and
        # iCloud": the two weakest services must be exactly those two.
        weakest = sorted(scores, key=scores.get)[:2]
        result.add_check(
            f"{direction} outliers are Netflix and iCloud",
            float(np.mean([scores[o] for o in OUTLIERS])),
            "low correlations only with Netflix and iCloud",
            set(weakest) == set(OUTLIERS),
        )
        core_floor = min(core.values())
        result.add_check(
            f"{direction} outliers clearly below the rest",
            float(max(scores[o] for o in OUTLIERS)),
            "these outlier cases apart, services correlate strongly",
            max(scores[o] for o in OUTLIERS) < core_floor,
        )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig10.dl_mean_r2": "dl mean pairwise r2",
        "fig10.ul_mean_r2": "ul mean pairwise r2",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "OUTLIERS", "run"]
