"""Fig. 3 — the 20 head services ranked on relative traffic volume.

Paper claims: video streaming dominates downlink at ≈46 % of traffic
(up from 36 % six years earlier); YouTube leads, iTunes second; in
uplink, social/messaging services take the top three spots (SnapChat
and Facebook named) due to content sharing with small audiences; the
head services cover over 60 % of the overall network traffic.

Paper §3 (service usage overview).  Reproduced finding: video streaming
takes ≈46 % of downlink, social/messaging lead uplink, and the 20 head
services cover most of the traffic.
"""

from __future__ import annotations

from repro.core.ranking import (
    rank_services,
    uplink_fraction,
    video_streaming_share,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table
from repro.services.catalog import ServiceCategory

EXPERIMENT_ID = "fig3"
TITLE = "Head services ranked on downlink / uplink traffic volume"
PAPER_SECTION = "§3"
FINDING = "video ≈46 % of downlink; social/messaging lead uplink"

_SOCIAL_LIKE = (ServiceCategory.SOCIAL, ServiceCategory.MESSAGING)


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    catalog = ctx.artifacts.catalog

    for direction in ("dl", "ul"):
        ranking = rank_services(ctx.dataset, catalog, direction)
        rows = [
            (
                e.rank,
                e.service_name,
                e.category.value,
                f"{100 * e.share_of_direction:.2f}%",
            )
            for e in ranking
        ]
        result.blocks.append(
            format_table(
                ("rank", "service", "category", "share of direction"),
                rows,
                title=f"[{direction.upper()}] head services",
            )
        )
        result.data[direction] = ranking

    dl_ranking = result.data["dl"]
    ul_ranking = result.data["ul"]

    video_dl = video_streaming_share(ctx.dataset, catalog, "dl")
    result.check_range(
        "video streaming share of DL",
        video_dl,
        0.40,
        0.55,
        "≈46 % of downlink traffic",
    )
    result.add_check(
        "YouTube ranks first in DL",
        dl_ranking[0].rank,
        "YouTube is the dominant provider",
        dl_ranking[0].service_name == "YouTube",
    )
    result.add_check(
        "iTunes ranks second in DL",
        dl_ranking[1].rank,
        "followed at a distance by iTunes",
        dl_ranking[1].service_name == "iTunes",
    )
    top3_ul = [e for e in ul_ranking[:3]]
    result.add_check(
        "UL top three are social/messaging",
        sum(e.category in _SOCIAL_LIKE for e in top3_ul),
        "social networks and messaging occupy the top three UL positions",
        all(e.category in _SOCIAL_LIKE for e in top3_ul),
    )
    result.add_check(
        "SnapChat and Facebook in UL top three",
        0.0,
        "services such as SnapChat and Facebook",
        {"SnapChat", "Facebook"}
        <= {e.service_name for e in top3_ul},
    )
    head_share = sum(e.share_of_direction for e in dl_ranking)
    result.check_range(
        "head services share of classified DL",
        head_share,
        0.60,
        None,
        "the selection covers over 60 % of overall traffic",
    )
    ul_frac = uplink_fraction(ctx.dataset)
    result.check_range(
        "uplink fraction of total load",
        ul_frac,
        None,
        0.05,
        "uplink accounts for less than one twentieth of the load",
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig3.video_dl_share": "video streaming share of DL",
        "fig3.uplink_fraction": "uplink fraction of total load",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
