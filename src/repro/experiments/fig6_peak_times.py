"""Fig. 6 — activity peak times of mobile services.

Paper claims: applying the smoothed z-score detector to all services,
peaks appear only at seven specific moments of the week (the topical
times); individual services have very diverse peak patterns, the
heterogeneity separates services of a same category; almost all
services peak at workday midday; large sets peak at the afternoon
commute and weekend evenings; the morning-break peak singles out
student-heavy services (SnapChat, Instagram, Facebook, Twitter).

Paper §4 (temporal analysis).  Reproduced finding: peaks land only on
the seven topical times, in service-specific combinations.
"""

from __future__ import annotations

from repro.core.topical import (
    derive_topical_moments,
    peak_signature,
    signature_matrix,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.fidelity.extract import register_check_extractor
from repro.report.tables import format_table
from repro.services.profiles import TopicalTime

EXPERIMENT_ID = "fig6"
TITLE = "Activity peak times of mobile services (topical-time signatures)"
PAPER_SECTION = "§4"
FINDING = "peaks land only on seven topical times, in service-specific sets"

_STUDENT_SERVICES = ("SnapChat", "Instagram", "Facebook", "Twitter")


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE)
    axis = ctx.fine_axis
    series = ctx.national_series_fine("dl")
    names = ctx.head_names

    signatures = [
        peak_signature(series[j], axis, name) for j, name in enumerate(names)
    ]
    matrix, row_names, topicals = signature_matrix(signatures)
    result.data["matrix"] = matrix
    result.data["signatures"] = signatures

    short = {
        TopicalTime.MORNING_COMMUTE: "MC",
        TopicalTime.MORNING_BREAK: "MB",
        TopicalTime.MIDDAY: "MD",
        TopicalTime.AFTERNOON_COMMUTE: "AC",
        TopicalTime.EVENING: "EV",
        TopicalTime.WEEKEND_MIDDAY: "WM",
        TopicalTime.WEEKEND_EVENING: "WE",
    }
    rows = []
    for i, name in enumerate(row_names):
        rows.append(
            [name] + ["x" if matrix[i, j] else "." for j in range(len(topicals))]
        )
    result.blocks.append(
        format_table(
            ["service"] + [short[t] for t in topicals],
            rows,
            title="Peak signature per service (x = peak detected)",
        )
    )

    # The discovery step: the recurring moments found in the data.
    moments = derive_topical_moments(signatures, axis)
    result.data["derived_moments"] = moments
    result.blocks.append(
        format_table(
            ("day type", "hour", "services", "share of peaks"),
            [
                (
                    "weekend" if m.weekend else "workday",
                    f"{m.hour:.1f}",
                    f"{m.support}/{len(names)}",
                    f"{100 * m.share_of_fronts:.1f}%",
                )
                for m in moments
            ],
            title="Peak moments derived from the data",
        )
    )
    strong = [m for m in moments if m.support >= 0.5 * len(names)]
    result.check_range(
        "number of strong recurring moments",
        len(strong),
        5,
        9,
        "peaks only appear at seven specific moments",
    )

    # Diversity of patterns.
    patterns = {frozenset(s.topical_times) for s in signatures}
    result.check_range(
        "distinct peak patterns among 20 services",
        len(patterns),
        8,
        None,
        "individual services have very diverse patterns",
    )
    midday_share = matrix[:, topicals.index(TopicalTime.MIDDAY)].mean()
    result.check_range(
        "share of services peaking at workday midday",
        float(midday_share),
        0.75,
        None,
        "almost all services show increased usage at midday",
    )
    ac_count = int(matrix[:, topicals.index(TopicalTime.AFTERNOON_COMMUTE)].sum())
    result.check_range(
        "services peaking at afternoon commute",
        ac_count,
        6,
        None,
        "large sets of services peak at the afternoon commuting time",
    )
    we_count = int(matrix[:, topicals.index(TopicalTime.WEEKEND_EVENING)].sum())
    result.check_range(
        "services peaking on weekend evenings",
        we_count,
        6,
        None,
        "large sets of services peak during weekend evenings",
    )
    mb_index = topicals.index(TopicalTime.MORNING_BREAK)
    student_hits = sum(
        matrix[row_names.index(s), mb_index] for s in _STUDENT_SERVICES
    )
    result.check_range(
        "student services with morning-break peaks",
        student_hits,
        3,
        None,
        "morning-break peaks include SnapChat, Instagram, Facebook, Twitter",
    )

    # Within-category heterogeneity: the five video-streaming services
    # should not share one pattern.
    video = ("YouTube", "iTunes", "Facebook Video", "Instagram video", "Netflix")
    video_patterns = {
        frozenset(signatures[row_names.index(v)].topical_times) for v in video
    }
    result.check_range(
        "distinct patterns among video streaming services",
        len(video_patterns),
        3,
        None,
        "video streaming behaves differently across platforms",
    )
    return result



# The headline quantities the fidelity scorecard reads off this
# figure's checks (repro.fidelity.contract declares the bands).
register_check_extractor(
    EXPERIMENT_ID,
    {
        "fig6.strong_recurring_moments": "number of strong recurring moments",
        "fig6.midday_service_share": "share of services peaking at workday midday",
    },
)

__all__ = ["EXPERIMENT_ID", "TITLE", "run"]
