"""Experiment registry: one runner per figure of the paper.

Usage::

    from repro.experiments import build_default_context, run_figure

    ctx = build_default_context(seed=7)
    result = run_figure("fig10", ctx)
    print(result.render())
"""

from typing import Callable, Dict, List

from repro import obs
from repro.experiments import (
    fig2_service_ranking,
    fig3_top_services,
    fig4_time_series,
    fig5_clustering,
    fig6_peak_times,
    fig7_peak_intensity,
    fig8_twitter_geography,
    fig9_maps,
    fig10_spatial_correlation,
    fig11_urbanization,
    text_stats,
)
from repro.experiments.base import Check, ExperimentResult
from repro.experiments.context import (
    ExperimentContext,
    build_default_context,
    build_default_dataset,
)

_MODULES = (
    fig2_service_ranking,
    fig3_top_services,
    fig4_time_series,
    fig5_clustering,
    fig6_peak_times,
    fig7_peak_intensity,
    fig8_twitter_geography,
    fig9_maps,
    fig10_spatial_correlation,
    fig11_urbanization,
    text_stats,
)

#: experiment id -> (title, runner)
REGISTRY: Dict[str, tuple] = {
    m.EXPERIMENT_ID: (m.TITLE, m.run) for m in _MODULES
}

#: experiment id -> (paper section, one-line reproduced finding), from
#: the ``PAPER_SECTION``/``FINDING`` constants each module declares next
#: to its docstring.
PAPER_NOTES: Dict[str, tuple] = {
    m.EXPERIMENT_ID: (m.PAPER_SECTION, m.FINDING) for m in _MODULES
}


def experiment_ids() -> List[str]:
    """All experiment ids, in paper order."""
    return list(REGISTRY.keys())


def run_figure(experiment_id: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one figure reproduction against a shared context."""
    try:
        _, runner = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(REGISTRY)}"
        ) from None
    with obs.span(f"experiment.{experiment_id}"):
        result = runner(ctx)
    obs.add("experiments.runs")
    return result


def run_all(ctx: ExperimentContext) -> Dict[str, ExperimentResult]:
    """Run every figure reproduction."""
    return {eid: run_figure(eid, ctx) for eid in REGISTRY}


__all__ = [
    "Check",
    "ExperimentResult",
    "ExperimentContext",
    "build_default_context",
    "build_default_dataset",
    "experiment_ids",
    "run_figure",
    "run_all",
    "REGISTRY",
    "PAPER_NOTES",
]
