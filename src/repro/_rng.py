"""Deterministic random-number handling.

Every stochastic component in the package accepts either a seed or a
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes the two,
and :func:`spawn` derives independent child generators so that subsystems
(geography, population, workload, ...) draw from decorrelated streams even
when built from a single top-level seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-seeded generator; an ``int`` yields a
    deterministic generator; an existing generator is passed through.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(
    rng: np.random.Generator, label: str, index: Optional[int] = None
) -> np.random.Generator:
    """Derive an independent child generator keyed by ``label``.

    The label is folded into the seed material so the child stream is
    stable under reordering of other ``spawn`` calls: spawning
    ``("geo", "traffic")`` or ``("traffic", "geo")`` yields the same pair
    of streams for the same parent state only if called in the same order,
    so callers should spawn all children up front in a fixed order.

    ``index`` labels one shard of a partitioned workload: spawning
    ``("shard", 0), ("shard", 1), ...`` in a fixed order yields streams
    that are decorrelated from each other *and* stable for a given shard
    count, which is what makes sharded runs reproducible regardless of
    how many workers execute the shards.
    """
    label_digest = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    entropy = rng.integers(0, 2**63 - 1)
    material = [int(entropy), *label_digest.tolist()]
    if index is not None:
        if index < 0:
            raise ValueError(f"shard index must be >= 0, got {index}")
        material.append(int(index))
    seed_seq = np.random.SeedSequence(material)
    return np.random.default_rng(seed_seq)


def spawn_many(
    seed: SeedLike, labels: Sequence[str]
) -> Dict[str, np.random.Generator]:
    """Spawn one child generator per label, in the given fixed order."""
    parent = as_generator(seed)
    return {label: spawn(parent, label) for label in labels}


def seed_material_word(material: Sequence[int]) -> int:
    """First 32-bit word of ``SeedSequence(material)`` — a stable hash.

    Used where a pure deterministic function of integer inputs is
    needed without any generator state (e.g. the resilience layer's
    backoff jitter): same material, same word, on every platform.
    """
    seq = np.random.SeedSequence([int(m) for m in material])
    return int(seq.generate_state(1)[0])


def optional_choice(
    rng: np.random.Generator, probability: float
) -> bool:
    """Bernoulli draw with validation, used by several generators."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return bool(rng.random() < probability)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Return normalized Zipf weights ``rank**-exponent`` for ranks 1..n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


__all__ = [
    "SeedLike",
    "as_generator",
    "spawn",
    "spawn_many",
    "optional_choice",
    "seed_material_word",
    "zipf_weights",
]
