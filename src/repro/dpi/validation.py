"""DPI self-validation: confusion analysis of the classification cascade.

The operator's classifier must not confuse services that share
infrastructure (Facebook vs Facebook Video on fbcdn.net, Instagram vs
Instagram video, Google Services vs Google Play): a systematic
cross-attribution would silently corrupt every per-service figure.
:func:`confusion_matrix` emits flows for every service through the
fingerprint database and classifies them back, producing the standard
validation artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dpi.classifier import DpiEngine
from repro.dpi.fingerprints import FingerprintDatabase


@dataclass(frozen=True)
class ConfusionReport:
    """Outcome of a DPI self-validation round."""

    service_names: List[str]
    #: (n, n+1) counts: row = emitted service, column = classified
    #: service, last column = unclassified.
    matrix: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.service_names)
        if self.matrix.shape != (n, n + 1):
            raise ValueError(
                f"matrix shape {self.matrix.shape}, expected ({n}, {n + 1})"
            )

    @property
    def accuracy(self) -> float:
        """Fraction of classified flows attributed to the right service."""
        classified = self.matrix[:, :-1]
        total = classified.sum()
        return float(np.trace(classified) / total) if total else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of flows classified at all."""
        total = self.matrix.sum()
        return float(self.matrix[:, :-1].sum() / total) if total else 0.0

    def misclassified_pairs(self) -> Dict[tuple, int]:
        """(emitted, classified) pairs with nonzero off-diagonal counts."""
        out = {}
        n = len(self.service_names)
        for i in range(n):
            for j in range(n):
                if i != j and self.matrix[i, j] > 0:
                    out[(self.service_names[i], self.service_names[j])] = int(
                        self.matrix[i, j]
                    )
        return out


def confusion_matrix(
    database: FingerprintDatabase,
    flows_per_service: int = 200,
    service_names: Optional[List[str]] = None,
    engine: Optional[DpiEngine] = None,
    include_obfuscated: bool = False,
) -> ConfusionReport:
    """Emit flows per service and classify them back.

    With ``include_obfuscated=False`` (the default) only clear flows are
    emitted, so any unclassified count indicates a fingerprint gap
    rather than intentional obfuscation.
    """
    if flows_per_service < 1:
        raise ValueError(
            f"flows_per_service must be >= 1, got {flows_per_service}"
        )
    engine = engine or DpiEngine(database)
    names = service_names or [
        fp.service_name for fp in database.all_fingerprints()
    ]
    index = {name: i for i, name in enumerate(names)}
    matrix = np.zeros((len(names), len(names) + 1), dtype=np.int64)
    for i, name in enumerate(names):
        for _ in range(flows_per_service):
            obfuscated = None if include_obfuscated else False
            flow = database.emit_flow(name, obfuscated=obfuscated)
            outcome = engine.classify(flow)
            if outcome is None or outcome not in index:
                matrix[i, -1] += 1
            else:
                matrix[i, index[outcome]] += 1
    return ConfusionReport(service_names=names, matrix=matrix)


__all__ = ["ConfusionReport", "confusion_matrix"]
