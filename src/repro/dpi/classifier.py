"""The DPI classification engine.

Matches :class:`~repro.network.gtp.FlowDescriptor` features against the
fingerprint database using a cascade of techniques, in decreasing order
of reliability — mirroring the "multiple fingerprinting techniques, each
tailored to a specific traffic type" of §2:

1. **SNI** — TLS server-name suffix match;
2. **HOST** — clear-text HTTP host suffix match;
3. **PAYLOAD** — stateful payload hints (QUIC tags, proprietary
   protocols);
4. **PORT** — well-known (port, protocol) signatures.

Flows matching nothing stay unclassified; with the default emitter
settings the engine classifies ≈88 % of the volume, the paper's rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dpi.fingerprints import FingerprintDatabase
from repro.network.gtp import FlowDescriptor


class Technique(enum.Enum):
    """Classification techniques, in match-priority order."""

    SNI = "sni"
    HOST = "host"
    PAYLOAD = "payload"
    PORT = "port"


@dataclass
class ClassificationReport:
    """Aggregate accounting of a classification run."""

    flows_total: int = 0
    flows_classified: int = 0
    bytes_total: float = 0.0
    bytes_classified: float = 0.0
    by_technique: Dict[Technique, int] = field(
        default_factory=lambda: {t: 0 for t in Technique}
    )

    @property
    def flow_coverage(self) -> float:
        """Fraction of flows attributed to a service."""
        return self.flows_classified / self.flows_total if self.flows_total else 0.0

    @property
    def byte_coverage(self) -> float:
        """Fraction of traffic volume attributed to a service (the 88 %)."""
        return self.bytes_classified / self.bytes_total if self.bytes_total else 0.0

    def record(
        self, technique: Optional[Technique], volume_bytes: float
    ) -> None:
        """Account one flow's outcome."""
        self.flows_total += 1
        self.bytes_total += volume_bytes
        if technique is not None:
            self.flows_classified += 1
            self.bytes_classified += volume_bytes
            self.by_technique[technique] += 1


class DpiEngine:
    """Flow-to-service classifier over a fingerprint database."""

    def __init__(self, database: FingerprintDatabase):
        self._db = database
        # Build inverted indices once; lookups are then O(#labels) for
        # suffix matches and O(1) for ports/hints.
        self._sni_index: List[Tuple[str, str]] = []
        self._host_index: List[Tuple[str, str]] = []
        self._hint_index: Dict[str, str] = {}
        self._port_index: Dict[Tuple[int, str], str] = {}
        for fp in database.all_fingerprints():
            for suffix in fp.sni_suffixes:
                self._sni_index.append((suffix, fp.service_name))
            for suffix in fp.host_suffixes:
                self._host_index.append((suffix, fp.service_name))
            for hint in fp.payload_hints:
                self._hint_index[hint] = fp.service_name
            for port, protocol in fp.port_signatures:
                self._port_index[(port, protocol)] = fp.service_name
        # Longest suffix first, so "video.xx.fbcdn.net" beats "fbcdn.net".
        self._sni_index.sort(key=lambda item: len(item[0]), reverse=True)
        self._host_index.sort(key=lambda item: len(item[0]), reverse=True)
        self.report = ClassificationReport()

    def classify(
        self, flow: FlowDescriptor, volume_bytes: float = 0.0
    ) -> Optional[str]:
        """Return the service name for a flow, or None if unclassifiable.

        ``volume_bytes`` feeds the byte-coverage accounting of
        :attr:`report`.
        """
        outcome = self._match(flow)
        technique = outcome[1] if outcome else None
        self.report.record(technique, volume_bytes)
        return outcome[0] if outcome else None

    def _match(self, flow: FlowDescriptor) -> Optional[Tuple[str, Technique]]:
        if flow.sni:
            service = _suffix_lookup(self._sni_index, flow.sni)
            if service:
                return service, Technique.SNI
        if flow.host:
            service = _suffix_lookup(self._host_index, flow.host)
            if service:
                return service, Technique.HOST
        if flow.payload_hint and flow.payload_hint in self._hint_index:
            return self._hint_index[flow.payload_hint], Technique.PAYLOAD
        key = (flow.server_port, flow.protocol)
        if key in self._port_index:
            return self._port_index[key], Technique.PORT
        return None

    def reset_report(self) -> ClassificationReport:
        """Return the current report and start a fresh one."""
        report, self.report = self.report, ClassificationReport()
        return report


def _suffix_lookup(index: List[Tuple[str, str]], name: str) -> Optional[str]:
    """Longest-suffix match of a DNS name against an index.

    Prefix-style patterns (ending with ``.``, e.g. ``"imap."``) match
    name *prefixes* instead, covering protocol-conventional hostnames.
    """
    for suffix, service in index:
        if suffix.endswith("."):
            if name.startswith(suffix):
                return service
        elif name == suffix or name.endswith("." + suffix):
            return service
    return None


__all__ = ["Technique", "ClassificationReport", "DpiEngine"]
